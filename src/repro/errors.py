"""Diagnostics and error hierarchy for the SIGNAL reproduction compiler.

Every user-facing failure raised by the toolchain derives from
:class:`SignalError`, so callers can catch a single exception type at the
compiler boundary.  Errors that can be attributed to a source location carry
a :class:`SourceLocation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position in a SIGNAL source text (1-based line and column)."""

    line: int
    column: int
    filename: str = "<signal>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class SignalError(Exception):
    """Base class of all errors raised by the SIGNAL toolchain."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexerError(SignalError):
    """Raised when the source text contains an unrecognized token."""


class ParseError(SignalError):
    """Raised when the source text does not conform to the SIGNAL grammar."""


class TypeError_(SignalError):
    """Raised when signal types cannot be reconciled across equations."""


class NameResolutionError(SignalError):
    """Raised for references to undeclared signals or duplicate definitions."""


class ClockCalculusError(SignalError):
    """Raised when the system of clock equations is inconsistent.

    This corresponds to a *temporally incorrect* program in the paper's
    terminology: an equation whose orientation induces a cycle, or an
    equality of clock formulas that cannot be proved.
    """


class ResolutionIncompleteError(ClockCalculusError):
    """Raised when the heuristic triangularization gives up.

    The paper's algorithm is deliberately incomplete (the underlying problem
    is NP-hard); programs it cannot explicitize are rejected even though a
    complete solver might accept them.
    """


class CausalityError(SignalError):
    """Raised when the conditional dependency graph has an instantaneous cycle."""


class PartitionError(SignalError):
    """Raised when a program cannot be split across its ``at`` locations.

    Covers contradictory placement annotations (a signal pinned to two
    different locations) and partitions whose locations would have to
    exchange values in both directions within one instant (a communication
    cycle the lock-step harness cannot schedule).
    """


class CodeGenerationError(SignalError):
    """Raised when code generation cannot proceed (e.g. no master clock)."""


class SimulationError(SignalError):
    """Raised by the runtime when a trace violates the program's clock constraints."""


class ResourceLimitExceeded(SignalError):
    """Raised when a resource-limited computation exceeds its budget.

    Used by the characteristic-function baseline of Figure 13 to reproduce
    the ``unable-cpu`` / ``unable-mem`` outcomes of the paper.
    """

    def __init__(self, message: str, kind: str = "cpu"):
        super().__init__(message)
        #: either ``"cpu"`` or ``"mem"``, mirroring the paper's two limits
        self.kind = kind
