"""End-to-end compilation driver.

``compile_source`` / ``compile_process`` run the full pipeline described in
the paper:

1. parse the SIGNAL source and desugar it to kernel processes;
2. infer signal types;
3. extract the system of boolean clock equations (Table 1);
4. triangularize it by arborescent resolution (Section 3), producing the
   clock hierarchy, its BDD encodings and the free clocks;
5. build the conditional dependency graph (Table 2) and check causality;
6. schedule the computations and generate executable sequential code
   (hierarchical nested style by default, flat single-loop style as the
   Figure 9 baseline).

The intermediate artifacts are all exposed on the returned
:class:`CompilationResult` so that examples, tests and benchmarks can
inspect every stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # imported lazily to avoid a circular module import
    from .service import CompilationService

from .bdd import BDDManager
from .clocks.equations import ClockSystem, extract_clock_system
from .clocks.resolution import ClockHierarchy, resolve
from .codegen.c_backend import generate_c_shared_source, generate_c_source
from .codegen.ir import GenerationStyle, StepIR, build_step_ir
from .codegen.python_backend import CompiledProcess, compile_step, generate_python_source
from .graph.dependency import ConditionalDependencyGraph, build_dependency_graph
from .graph.scheduling import Schedule, build_schedule
from .lang.ast import Process
from .lang.kernel import KernelProgram, normalize
from .lang.parser import parse_process
from .lang.types import SignalType, infer_types
from .runtime.interpreter import KernelInterpreter

__all__ = ["CompilationResult", "compile_source", "compile_process", "analyze_source"]


@dataclass
class CompilationResult:
    """All artifacts produced by compiling one SIGNAL process."""

    process: Process
    program: KernelProgram
    types: Dict[str, SignalType]
    clock_system: ClockSystem
    hierarchy: ClockHierarchy
    graph: ConditionalDependencyGraph
    schedule: Schedule
    #: compiled executable step, hierarchical (nested) style
    executable: CompiledProcess
    #: compiled executable step, flat (single-loop) style
    executable_flat: Optional[CompiledProcess] = None

    # -- convenience accessors -----------------------------------------------
    @property
    def name(self) -> str:
        return self.program.name

    def interpreter(self) -> KernelInterpreter:
        """A fresh reference interpreter for the same program."""
        return KernelInterpreter(self.program, self.types)

    def python_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        ir = build_step_ir(self.schedule, self.types, style)
        return generate_python_source(ir)

    def c_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        ir = build_step_ir(self.schedule, self.types, style)
        return generate_c_source(ir)

    def c_shared_source(
        self, style: GenerationStyle = GenerationStyle.HIERARCHICAL
    ) -> str:
        """The reentrant columnar C variant (mass-simulation ABI).

        Unlike :meth:`c_source` (static state, environment hooks), this
        variant keeps all state in an explicit struct and exposes a
        ``step_many`` entry point, so it can be built with ``cc -shared``
        and driven for whole populations by :mod:`repro.runtime.mass`.
        """
        ir = build_step_ir(self.schedule, self.types, style)
        return generate_c_shared_source(ir)

    def step_ir(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> StepIR:
        return build_step_ir(self.schedule, self.types, style)

    def tree_text(self) -> str:
        """The forest of clock trees plus the free clocks, as printed text.

        This is the default artifact of the CLI (``--emit tree``) and of the
        daemon protocol; keeping the rendering here guarantees local and
        remote compilations print identical trees.
        """
        free = [c.display_name() for c in self.hierarchy.free_classes()]
        forest = self.hierarchy.render_forest()
        return f"{forest}\n\nfree clocks: {', '.join(free) if free else '(none)'}"

    def statistics(self) -> Dict[str, int]:
        stats = dict(self.hierarchy.statistics())
        stats["signals"] = len(self.program.signals)
        stats["kernel_processes"] = len(self.program.processes)
        stats["dependency_edges"] = self.graph.edge_count()
        return stats


def analyze_source(
    source: str,
    manager: Optional[BDDManager] = None,
    check: bool = True,
):
    """Run the front half of the pipeline (through clock resolution).

    Returns ``(program, types, clock_system, hierarchy)``.  Useful when only
    the clock calculus is of interest (the Figure 13 benchmarks).
    """
    process = parse_process(source)
    return analyze_process(process, manager=manager, check=check)


def analyze_process(
    process: Process,
    manager: Optional[BDDManager] = None,
    check: bool = True,
    program: Optional[KernelProgram] = None,
):
    """Like :func:`analyze_source` for an already-parsed process.

    ``program`` optionally supplies the already-normalized kernel form (the
    compilation service normalizes first to compute the cache key).
    """
    if program is None:
        program = normalize(process)
    types = infer_types(program)
    clock_system = extract_clock_system(program, types)
    hierarchy = resolve(clock_system, manager=manager)
    if check:
        hierarchy.check()
    return program, types, clock_system, hierarchy


def compile_process(
    process: Process,
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    build_flat: bool = False,
    observable: bool = True,
    manager: Optional[BDDManager] = None,
    program: Optional[KernelProgram] = None,
    service: Optional["CompilationService"] = None,
) -> CompilationResult:
    """Compile a parsed process through the complete pipeline.

    Passing a :class:`repro.service.CompilationService` as ``service``
    routes the compilation through its pooled manager and compile cache;
    this is mutually exclusive with ``manager``/``program`` (the service
    owns both).
    """
    if service is not None:
        if manager is not None or program is not None:
            raise ValueError(
                "manager=/program= cannot be combined with service=: the "
                "compilation service supplies its own pooled manager"
            )
        return service.compile_process(
            process, style=style, build_flat=build_flat, observable=observable
        )
    program, types, clock_system, hierarchy = analyze_process(
        process, manager=manager, program=program
    )

    graph = build_dependency_graph(program)
    graph.check_causality(hierarchy)
    schedule = build_schedule(program, hierarchy, graph)

    executable = compile_step(schedule, types, style=style, observable=observable)
    executable_flat = None
    if build_flat:
        executable_flat = compile_step(
            schedule, types, style=GenerationStyle.FLAT, observable=observable
        )

    return CompilationResult(
        process=process,
        program=program,
        types=types,
        clock_system=clock_system,
        hierarchy=hierarchy,
        graph=graph,
        schedule=schedule,
        executable=executable,
        executable_flat=executable_flat,
    )


def compile_source(
    source: str,
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    build_flat: bool = False,
    observable: bool = True,
    manager: Optional[BDDManager] = None,
    service: Optional["CompilationService"] = None,
) -> CompilationResult:
    """Compile SIGNAL source text through the complete pipeline.

    Passing a :class:`repro.service.CompilationService` as ``service``
    routes the compilation through its pooled manager and compile cache
    (repeated or kernel-equivalent sources then return cached results);
    this is mutually exclusive with ``manager`` (the service owns it).
    """
    if service is not None:
        if manager is not None:
            raise ValueError(
                "manager= cannot be combined with service=: the compilation "
                "service supplies its own pooled manager"
            )
        return service.compile(
            source, style=style, build_flat=build_flat, observable=observable
        )
    process = parse_process(source)
    return compile_process(
        process,
        style=style,
        build_flat=build_flat,
        observable=observable,
        manager=manager,
    )
