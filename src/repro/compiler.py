"""End-to-end compilation driver.

``compile_source`` / ``compile_process`` run the full pipeline described in
the paper:

1. parse the SIGNAL source and desugar it to kernel processes;
2. infer signal types;
3. extract the system of boolean clock equations (Table 1);
4. triangularize it by arborescent resolution (Section 3), producing the
   clock hierarchy, its BDD encodings and the free clocks;
5. build the conditional dependency graph (Table 2) and check causality;
6. schedule the computations and generate executable sequential code
   (hierarchical nested style by default, flat single-loop style as the
   Figure 9 baseline).

The intermediate artifacts are all exposed on the returned
:class:`CompilationResult` so that examples, tests and benchmarks can
inspect every stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # imported lazily to avoid a circular module import
    from .service import CompilationService

from .bdd import BDDManager
from .clocks.algebra import CondFalse, CondTrue, SignalClock
from .clocks.equations import ClockSystem, extract_clock_system
from .clocks.resolution import ClockHierarchy, resolve
from .codegen.c_backend import generate_c_shared_source, generate_c_source
from .codegen.ir import GenerationStyle, StepIR, build_step_ir
from .codegen.linker import ir_to_payload, link_step_ir
from .codegen.python_backend import (
    CompiledProcess,
    _instantiate_step,
    compile_step,
    generate_python_source,
)
from .graph.dependency import ConditionalDependencyGraph, build_dependency_graph
from .graph.scheduling import Schedule, build_schedule
from .lang.ast import Process
from .lang.kernel import KernelProgram, normalize
from .lang.parser import parse_process
from .lang.types import SignalType, infer_types
from .lang.units import ProgramUnit, UNIT_FINGERPRINT_VERSION, rename_text, split_units
from .runtime.interpreter import KernelInterpreter

__all__ = [
    "CompilationResult",
    "LinkedCompilationResult",
    "compile_source",
    "compile_process",
    "analyze_source",
    "compile_unit_record",
    "link_units",
    "compile_modular_source",
]


@dataclass
class CompilationResult:
    """All artifacts produced by compiling one SIGNAL process."""

    process: Process
    program: KernelProgram
    types: Dict[str, SignalType]
    clock_system: ClockSystem
    hierarchy: ClockHierarchy
    graph: ConditionalDependencyGraph
    schedule: Schedule
    #: compiled executable step, hierarchical (nested) style
    executable: CompiledProcess
    #: compiled executable step, flat (single-loop) style
    executable_flat: Optional[CompiledProcess] = None

    # -- convenience accessors -----------------------------------------------
    @property
    def name(self) -> str:
        return self.program.name

    def interpreter(self) -> KernelInterpreter:
        """A fresh reference interpreter for the same program."""
        return KernelInterpreter(self.program, self.types)

    def python_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        ir = build_step_ir(self.schedule, self.types, style)
        return generate_python_source(ir)

    def c_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        ir = build_step_ir(self.schedule, self.types, style)
        return generate_c_source(ir)

    def c_shared_source(
        self, style: GenerationStyle = GenerationStyle.HIERARCHICAL
    ) -> str:
        """The reentrant columnar C variant (mass-simulation ABI).

        Unlike :meth:`c_source` (static state, environment hooks), this
        variant keeps all state in an explicit struct and exposes a
        ``step_many`` entry point, so it can be built with ``cc -shared``
        and driven for whole populations by :mod:`repro.runtime.mass`.
        """
        ir = build_step_ir(self.schedule, self.types, style)
        return generate_c_shared_source(ir)

    def step_ir(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> StepIR:
        return build_step_ir(self.schedule, self.types, style)

    def tree_text(self) -> str:
        """The forest of clock trees plus the free clocks, as printed text.

        This is the default artifact of the CLI (``--emit tree``) and of the
        daemon protocol; keeping the rendering here guarantees local and
        remote compilations print identical trees.
        """
        free = [c.display_name() for c in self.hierarchy.free_classes()]
        forest = self.hierarchy.render_forest()
        return f"{forest}\n\nfree clocks: {', '.join(free) if free else '(none)'}"

    def statistics(self) -> Dict[str, int]:
        stats = dict(self.hierarchy.statistics())
        stats["signals"] = len(self.program.signals)
        stats["kernel_processes"] = len(self.program.processes)
        stats["dependency_edges"] = self.graph.edge_count()
        return stats


def analyze_source(
    source: str,
    manager: Optional[BDDManager] = None,
    check: bool = True,
):
    """Run the front half of the pipeline (through clock resolution).

    Returns ``(program, types, clock_system, hierarchy)``.  Useful when only
    the clock calculus is of interest (the Figure 13 benchmarks).
    """
    process = parse_process(source)
    return analyze_process(process, manager=manager, check=check)


def analyze_process(
    process: Process,
    manager: Optional[BDDManager] = None,
    check: bool = True,
    program: Optional[KernelProgram] = None,
):
    """Like :func:`analyze_source` for an already-parsed process.

    ``program`` optionally supplies the already-normalized kernel form (the
    compilation service normalizes first to compute the cache key).
    """
    if program is None:
        program = normalize(process)
    types = infer_types(program)
    clock_system = extract_clock_system(program, types)
    hierarchy = resolve(clock_system, manager=manager)
    if check:
        hierarchy.check()
    return program, types, clock_system, hierarchy


def compile_process(
    process: Process,
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    build_flat: bool = False,
    observable: bool = True,
    manager: Optional[BDDManager] = None,
    program: Optional[KernelProgram] = None,
    service: Optional["CompilationService"] = None,
) -> CompilationResult:
    """Compile a parsed process through the complete pipeline.

    Passing a :class:`repro.service.CompilationService` as ``service``
    routes the compilation through its pooled manager and compile cache;
    this is mutually exclusive with ``manager``/``program`` (the service
    owns both).
    """
    if service is not None:
        if manager is not None or program is not None:
            raise ValueError(
                "manager=/program= cannot be combined with service=: the "
                "compilation service supplies its own pooled manager"
            )
        return service.compile_process(
            process, style=style, build_flat=build_flat, observable=observable
        )
    program, types, clock_system, hierarchy = analyze_process(
        process, manager=manager, program=program
    )

    graph = build_dependency_graph(program)
    graph.check_causality(hierarchy)
    schedule = build_schedule(program, hierarchy, graph)

    executable = compile_step(schedule, types, style=style, observable=observable)
    executable_flat = None
    if build_flat:
        executable_flat = compile_step(
            schedule, types, style=GenerationStyle.FLAT, observable=observable
        )

    return CompilationResult(
        process=process,
        program=program,
        types=types,
        clock_system=clock_system,
        hierarchy=hierarchy,
        graph=graph,
        schedule=schedule,
        executable=executable,
        executable_flat=executable_flat,
    )


def compile_source(
    source: str,
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    build_flat: bool = False,
    observable: bool = True,
    manager: Optional[BDDManager] = None,
    service: Optional["CompilationService"] = None,
) -> CompilationResult:
    """Compile SIGNAL source text through the complete pipeline.

    Passing a :class:`repro.service.CompilationService` as ``service``
    routes the compilation through its pooled manager and compile cache
    (repeated or kernel-equivalent sources then return cached results);
    this is mutually exclusive with ``manager`` (the service owns it).
    """
    if service is not None:
        if manager is not None:
            raise ValueError(
                "manager= cannot be combined with service=: the compilation "
                "service supplies its own pooled manager"
            )
        return service.compile(
            source, style=style, build_flat=build_flat, observable=observable
        )
    process = parse_process(source)
    return compile_process(
        process,
        style=style,
        build_flat=build_flat,
        observable=observable,
        manager=manager,
    )


# ---------------------------------------------------------------------------
# Modular compilation: per-unit artifacts and the link stage
# ---------------------------------------------------------------------------

def _serialize_atoms(atoms) -> list:
    """Clock atoms of a free class as JSON-safe ``[kind, signal]`` pairs."""
    serialized = []
    for atom in atoms:
        if isinstance(atom, SignalClock):
            serialized.append(["signal", atom.signal])
        elif isinstance(atom, CondTrue):
            serialized.append(["cond_true", atom.signal])
        elif isinstance(atom, CondFalse):
            serialized.append(["cond_false", atom.signal])
        else:  # pragma: no cover - free classes only hold the three atom kinds
            raise TypeError(f"unsupported clock atom {atom!r} on a free class")
    return sorted(serialized)


def compile_unit_record(unit: ProgramUnit, manager: Optional[BDDManager] = None) -> dict:
    """Compile one canonical unit through the full pipeline into a record.

    The unit is compiled under its *canonical* names (so the record is
    shareable across every program embedding the module) and the record
    captures everything the link stage needs: the step IR of both
    generation styles, the signal -> clock-class map, the free classes with
    their structural atoms (presence keys are recomputed per program at
    link time), the inferred types and the rendered per-unit artifacts.
    The record is JSON-safe and is what the in-memory unit LRU and the
    on-disk :class:`~repro.service.store.CompileStore` cache.
    """
    from .service.store import STORE_FORMAT, UNIT_STYLE  # deferred: service imports us

    canonical = unit.canonical
    types = infer_types(canonical)
    clock_system = extract_clock_system(canonical, types)
    hierarchy = resolve(clock_system, manager=manager)
    hierarchy.check()
    graph = build_dependency_graph(canonical)
    graph.check_causality(hierarchy)
    schedule = build_schedule(canonical, hierarchy, graph)

    ir_by_style = {
        style.value: ir_to_payload(build_step_ir(schedule, types, style))
        for style in (GenerationStyle.HIERARCHICAL, GenerationStyle.FLAT)
    }
    class_ids = sorted(c.id for c in hierarchy.classes if not c.is_null)
    all_ids = [c.id for c in hierarchy.classes]
    for payload in ir_by_style.values():
        all_ids.extend(payload["referenced_class_ids"])
    free = [c for c in hierarchy.free_classes() if not c.is_null]

    statistics = dict(hierarchy.statistics())
    statistics["signals"] = len(canonical.signals)
    statistics["kernel_processes"] = len(canonical.processes)
    statistics["dependency_edges"] = graph.edge_count()

    return {
        "format": STORE_FORMAT,
        "kind": "unit",
        "fingerprint": unit.fingerprint(),
        "style": UNIT_STYLE,
        "build_flat": False,
        "observable": True,
        "unit_version": UNIT_FINGERPRINT_VERSION,
        "name": canonical.name,
        "types": {name: type_.value for name, type_ in types.items()},
        "class_ids": class_ids,
        "max_class_id": max(all_ids, default=-1),
        "signal_class": {
            signal: clock_class.id for signal, clock_class in schedule.signal_class.items()
        },
        "free_classes": [
            {"id": c.id, "atoms": _serialize_atoms(c.atoms)} for c in free
        ],
        "ir": ir_by_style,
        "artifacts": {
            "forest": hierarchy.render_forest(),
            "free": [c.display_name() for c in free],
            "clocks": str(clock_system),
            "kernel": str(canonical),
        },
        "statistics": statistics,
    }


class _LinkedClockSystemText:
    """Stand-in for :class:`ClockSystem` on linked results (text only)."""

    __slots__ = ("_text",)

    def __init__(self, text: str):
        self._text = text

    def __str__(self) -> str:
        return self._text


#: statistics keys summed across units by :meth:`LinkedCompilationResult.statistics`
_ADDITIVE_STATS = (
    "classes",
    "variables",
    "bdd_nodes",
    "bdd_nodes_total",
    "trees",
    "forest_nodes",
    "free_clocks",
    "unresolved",
    "dependency_edges",
)


@dataclass
class LinkedCompilationResult:
    """The artifacts of a modular (unit-wise) compilation, after linking.

    Surface-compatible with :class:`CompilationResult` everywhere the
    service, store and daemon layers look (``program``, ``types``,
    ``executable``/``executable_flat``, the source/tree/statistics
    accessors), but built purely from cached unit records -- no BDD
    operations happen at link time.  The clock hierarchy and dependency
    graph of the whole program are never materialized; their statistics
    and rendered texts are composed from the per-unit artifacts.
    """

    program: KernelProgram
    types: Dict[str, SignalType]
    units: list
    unit_records: list
    observable: bool = True
    process: Optional[Process] = None
    executable: Optional[CompiledProcess] = None
    executable_flat: Optional[CompiledProcess] = None
    _linked_irs: Dict[GenerationStyle, StepIR] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def name(self) -> str:
        return self.program.name

    def unit_fingerprints(self) -> list:
        return [unit.fingerprint() for unit in self.units]

    def interpreter(self) -> KernelInterpreter:
        """A fresh reference interpreter for the same (whole) program."""
        return KernelInterpreter(self.program, self.types)

    # -- linked IR and generated sources -------------------------------------
    def _part(self, unit: ProgramUnit, record: dict, style: GenerationStyle) -> dict:
        rename = unit.from_canonical
        return {
            "ir": record["ir"][style.value],
            "rename": rename,
            "class_ids": record["class_ids"],
            "max_class_id": record["max_class_id"],
            "signal_class": record["signal_class"],
            "free_classes": record["free_classes"],
            "types": {
                rename.get(name, name): SignalType(value)
                for name, value in record["types"].items()
            },
        }

    def step_ir(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> StepIR:
        ir = self._linked_irs.get(style)
        if ir is None:
            parts = [
                self._part(unit, record, style)
                for unit, record in zip(self.units, self.unit_records)
            ]
            ir = link_step_ir(
                self.program.name, style, parts, self.program.inputs, self.program.outputs
            )
            self._linked_irs[style] = ir
        return ir

    def python_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        return generate_python_source(self.step_ir(style))

    def c_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        return generate_c_source(self.step_ir(style))

    def c_shared_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        return generate_c_shared_source(self.step_ir(style))

    # -- composed artifacts ---------------------------------------------------
    def tree_text(self) -> str:
        forests = []
        free_names = []
        for unit, record in zip(self.units, self.unit_records):
            rename = unit.from_canonical
            forest = rename_text(record["artifacts"]["forest"], rename)
            if forest.strip():
                forests.append(forest)
            free_names.extend(
                rename_text(name, rename) for name in record["artifacts"]["free"]
            )
        forest = "\n".join(forests)
        free = ", ".join(free_names) if free_names else "(none)"
        return f"{forest}\n\nfree clocks: {free}"

    @property
    def clock_system(self) -> _LinkedClockSystemText:
        sections = []
        for unit, record in zip(self.units, self.unit_records):
            sections.append(
                rename_text(record["artifacts"]["clocks"], unit.from_canonical)
            )
        return _LinkedClockSystemText("\n\n".join(sections))

    def statistics(self) -> Dict[str, int]:
        stats: Dict[str, int] = {key: 0 for key in _ADDITIVE_STATS}
        forest_height = 0
        for record in self.unit_records:
            unit_stats = record["statistics"]
            for key in _ADDITIVE_STATS:
                stats[key] += unit_stats.get(key, 0)
            forest_height = max(forest_height, unit_stats.get("forest_height", 0))
        stats["forest_height"] = forest_height
        stats["signals"] = len(self.program.signals)
        stats["kernel_processes"] = len(self.program.processes)
        stats["units"] = len(self.units)
        return stats


def _linked_executable(
    result: LinkedCompilationResult, style: GenerationStyle, observable: bool
) -> CompiledProcess:
    ir = result.step_ir(style)
    source = generate_python_source(ir, observable=observable)
    instance = _instantiate_step(source, ir.name, observable)
    return CompiledProcess(
        name=ir.name,
        style=style,
        source=source,
        ir=ir,
        step_instance=instance,
        inputs=list(ir.inputs),
        outputs=list(ir.outputs),
        root_flags=list(ir.root_flags),
        types=dict(result.types),
        observable=observable,
    )


def link_units(
    program: KernelProgram,
    units: list,
    records: list,
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    build_flat: bool = False,
    observable: bool = True,
    process: Optional[Process] = None,
) -> LinkedCompilationResult:
    """Compose cached unit records into an executable compilation result.

    ``units`` and ``records`` are parallel lists (one record per unit, in
    program order).  Linking renames every unit artifact from canonical to
    actual names, shifts clock-class ids into disjoint ranges, recomputes
    the root presence keys and defaults for the merged clock forest, and
    instantiates the merged step exactly like a monolithic compile --
    trace-equivalence of the two paths is what the differential fuzz suite
    proves.
    """
    if len(units) != len(records):
        raise ValueError(
            f"link stage got {len(units)} units but {len(records)} records"
        )
    types: Dict[str, SignalType] = {}
    for unit, record in zip(units, records):
        rename = unit.from_canonical
        for name, value in record["types"].items():
            types[rename.get(name, name)] = SignalType(value)

    result = LinkedCompilationResult(
        program=program,
        types=types,
        units=list(units),
        unit_records=list(records),
        observable=observable,
        process=process,
    )
    result.executable = _linked_executable(result, style, observable)
    if build_flat:
        result.executable_flat = _linked_executable(
            result, GenerationStyle.FLAT, observable
        )
    return result


def compile_modular_source(
    source: str,
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    build_flat: bool = False,
    observable: bool = True,
    manager: Optional[BDDManager] = None,
) -> LinkedCompilationResult:
    """Compile SIGNAL source unit-by-unit and link (no caching involved).

    The uncached counterpart of
    :meth:`repro.service.CompilationService.compile_modular`, useful for
    tests and one-off comparisons: split, compile every unit, link.
    """
    process = parse_process(source)
    program = normalize(process)
    units = split_units(program)
    records = [compile_unit_record(unit, manager=manager) for unit in units]
    return link_units(
        program,
        units,
        records,
        style=style,
        build_flat=build_flat,
        observable=observable,
        process=process,
    )
