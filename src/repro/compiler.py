"""End-to-end compilation driver.

``compile_source`` / ``compile_process`` run the full pipeline described in
the paper:

1. parse the SIGNAL source and desugar it to kernel processes;
2. infer signal types;
3. extract the system of boolean clock equations (Table 1);
4. triangularize it by arborescent resolution (Section 3), producing the
   clock hierarchy, its BDD encodings and the free clocks;
5. build the conditional dependency graph (Table 2) and check causality;
6. schedule the computations and generate executable sequential code
   (hierarchical nested style by default, flat single-loop style as the
   Figure 9 baseline).

The intermediate artifacts are all exposed on the returned
:class:`CompilationResult` so that examples, tests and benchmarks can
inspect every stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # imported lazily to avoid a circular module import
    from .service import CompilationService

from .bdd import BDDManager
from .clocks.algebra import CondFalse, CondTrue, SignalClock
from .clocks.equations import ClockSystem, extract_clock_system
from .clocks.resolution import ClockHierarchy, resolve
from .codegen.c_backend import (
    emit_shared_statement_lines,
    emit_statement_lines as emit_c_statement_lines,
    generate_c_shared_source,
    generate_c_source,
    scan_statement_arithmetic,
    scan_statement_io,
)
from .codegen.ir import GenerationStyle, StepIR, build_step_ir
from .codegen.linker import (
    ir_to_payload,
    link_c_shared_source,
    link_c_source,
    link_interface,
    link_python_source,
    link_step_ir,
    root_placeholder_line,
)
from .codegen.python_backend import (
    CompiledProcess,
    _instantiate_step,
    compile_step,
    emit_statement_lines as emit_python_statement_lines,
    generate_python_source,
)
from .graph.dependency import ConditionalDependencyGraph, build_dependency_graph
from .graph.scheduling import Schedule, build_schedule
from .lang.ast import Process
from .lang.kernel import KernelProgram, normalize
from .lang.parser import parse_process
from .lang.types import SignalType, infer_types
from .lang.units import ProgramUnit, UNIT_FINGERPRINT_VERSION, rename_text, split_units
from .runtime.interpreter import KernelInterpreter

__all__ = [
    "CompilationResult",
    "LinkedCompilationResult",
    "compile_source",
    "compile_process",
    "analyze_source",
    "compile_unit_record",
    "link_units",
    "linked_result_from_record",
    "compile_modular_source",
]


@dataclass
class CompilationResult:
    """All artifacts produced by compiling one SIGNAL process."""

    process: Process
    program: KernelProgram
    types: Dict[str, SignalType]
    clock_system: ClockSystem
    hierarchy: ClockHierarchy
    graph: ConditionalDependencyGraph
    schedule: Schedule
    #: compiled executable step, hierarchical (nested) style
    executable: CompiledProcess
    #: compiled executable step, flat (single-loop) style
    executable_flat: Optional[CompiledProcess] = None

    # -- convenience accessors -----------------------------------------------
    @property
    def name(self) -> str:
        return self.program.name

    def interpreter(self) -> KernelInterpreter:
        """A fresh reference interpreter for the same program."""
        return KernelInterpreter(self.program, self.types)

    def python_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        ir = build_step_ir(self.schedule, self.types, style)
        return generate_python_source(ir)

    def c_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        ir = build_step_ir(self.schedule, self.types, style)
        return generate_c_source(ir)

    def c_shared_source(
        self, style: GenerationStyle = GenerationStyle.HIERARCHICAL
    ) -> str:
        """The reentrant columnar C variant (mass-simulation ABI).

        Unlike :meth:`c_source` (static state, environment hooks), this
        variant keeps all state in an explicit struct and exposes a
        ``step_many`` entry point, so it can be built with ``cc -shared``
        and driven for whole populations by :mod:`repro.runtime.mass`.
        """
        ir = build_step_ir(self.schedule, self.types, style)
        return generate_c_shared_source(ir)

    def step_ir(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> StepIR:
        return build_step_ir(self.schedule, self.types, style)

    def tree_text(self) -> str:
        """The forest of clock trees plus the free clocks, as printed text.

        This is the default artifact of the CLI (``--emit tree``) and of the
        daemon protocol; keeping the rendering here guarantees local and
        remote compilations print identical trees.
        """
        free = [c.display_name() for c in self.hierarchy.free_classes()]
        forest = self.hierarchy.render_forest()
        return f"{forest}\n\nfree clocks: {', '.join(free) if free else '(none)'}"

    def statistics(self) -> Dict[str, int]:
        stats = dict(self.hierarchy.statistics())
        stats["signals"] = len(self.program.signals)
        stats["kernel_processes"] = len(self.program.processes)
        stats["dependency_edges"] = self.graph.edge_count()
        return stats


def analyze_source(
    source: str,
    manager: Optional[BDDManager] = None,
    check: bool = True,
):
    """Run the front half of the pipeline (through clock resolution).

    Returns ``(program, types, clock_system, hierarchy)``.  Useful when only
    the clock calculus is of interest (the Figure 13 benchmarks).
    """
    process = parse_process(source)
    return analyze_process(process, manager=manager, check=check)


def analyze_process(
    process: Process,
    manager: Optional[BDDManager] = None,
    check: bool = True,
    program: Optional[KernelProgram] = None,
):
    """Like :func:`analyze_source` for an already-parsed process.

    ``program`` optionally supplies the already-normalized kernel form (the
    compilation service normalizes first to compute the cache key).
    """
    if program is None:
        program = normalize(process)
    types = infer_types(program)
    clock_system = extract_clock_system(program, types)
    hierarchy = resolve(clock_system, manager=manager)
    if check:
        hierarchy.check()
    return program, types, clock_system, hierarchy


def compile_process(
    process: Process,
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    build_flat: bool = False,
    observable: bool = True,
    manager: Optional[BDDManager] = None,
    program: Optional[KernelProgram] = None,
    service: Optional["CompilationService"] = None,
) -> CompilationResult:
    """Compile a parsed process through the complete pipeline.

    Passing a :class:`repro.service.CompilationService` as ``service``
    routes the compilation through its pooled manager and compile cache;
    this is mutually exclusive with ``manager``/``program`` (the service
    owns both).
    """
    if service is not None:
        if manager is not None or program is not None:
            raise ValueError(
                "manager=/program= cannot be combined with service=: the "
                "compilation service supplies its own pooled manager"
            )
        return service.compile_process(
            process, style=style, build_flat=build_flat, observable=observable
        )
    program, types, clock_system, hierarchy = analyze_process(
        process, manager=manager, program=program
    )

    graph = build_dependency_graph(program)
    graph.check_causality(hierarchy)
    schedule = build_schedule(program, hierarchy, graph)

    executable = compile_step(schedule, types, style=style, observable=observable)
    executable_flat = None
    if build_flat:
        executable_flat = compile_step(
            schedule, types, style=GenerationStyle.FLAT, observable=observable
        )

    return CompilationResult(
        process=process,
        program=program,
        types=types,
        clock_system=clock_system,
        hierarchy=hierarchy,
        graph=graph,
        schedule=schedule,
        executable=executable,
        executable_flat=executable_flat,
    )


def compile_source(
    source: str,
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    build_flat: bool = False,
    observable: bool = True,
    manager: Optional[BDDManager] = None,
    service: Optional["CompilationService"] = None,
) -> CompilationResult:
    """Compile SIGNAL source text through the complete pipeline.

    Passing a :class:`repro.service.CompilationService` as ``service``
    routes the compilation through its pooled manager and compile cache
    (repeated or kernel-equivalent sources then return cached results);
    this is mutually exclusive with ``manager`` (the service owns it).
    """
    if service is not None:
        if manager is not None:
            raise ValueError(
                "manager= cannot be combined with service=: the compilation "
                "service supplies its own pooled manager"
            )
        return service.compile(
            source, style=style, build_flat=build_flat, observable=observable
        )
    process = parse_process(source)
    return compile_process(
        process,
        style=style,
        build_flat=build_flat,
        observable=observable,
        manager=manager,
    )


# ---------------------------------------------------------------------------
# Modular compilation: per-unit artifacts and the link stage
# ---------------------------------------------------------------------------

def _serialize_atoms(atoms) -> list:
    """Clock atoms of a free class as JSON-safe ``[kind, signal]`` pairs."""
    serialized = []
    for atom in atoms:
        if isinstance(atom, SignalClock):
            serialized.append(["signal", atom.signal])
        elif isinstance(atom, CondTrue):
            serialized.append(["cond_true", atom.signal])
        elif isinstance(atom, CondFalse):
            serialized.append(["cond_false", atom.signal])
        else:  # pragma: no cover - free classes only hold the three atom kinds
            raise TypeError(f"unsupported clock atom {atom!r} on a free class")
    return sorted(serialized)


def compile_unit_record(unit: ProgramUnit, manager: Optional[BDDManager] = None) -> dict:
    """Compile one canonical unit through the full pipeline into a record.

    The unit is compiled under its *canonical* names (so the record is
    shareable across every program embedding the module) and the record
    captures everything the link stage needs: the step IR of both
    generation styles, the signal -> clock-class map, the free classes with
    their structural atoms (presence keys are recomputed per program at
    link time), the inferred types and the rendered per-unit artifacts.
    The record is JSON-safe and is what the in-memory unit LRU and the
    on-disk :class:`~repro.service.store.CompileStore` cache.
    """
    from .service.store import STORE_FORMAT, UNIT_STYLE  # deferred: service imports us

    canonical = unit.canonical
    types = infer_types(canonical)
    clock_system = extract_clock_system(canonical, types)
    hierarchy = resolve(clock_system, manager=manager)
    hierarchy.check()
    graph = build_dependency_graph(canonical)
    graph.check_causality(hierarchy)
    schedule = build_schedule(canonical, hierarchy, graph)

    irs = {
        style: build_step_ir(schedule, types, style)
        for style in (GenerationStyle.HIERARCHICAL, GenerationStyle.FLAT)
    }
    ir_by_style = {style.value: ir_to_payload(ir) for style, ir in irs.items()}
    # Per-unit generated statement bodies, emitted once here and reused by
    # every link of this unit: the linker only offsets flag ids, renames
    # canonical signals and fills the @@ROOT@@ placeholders (presence keys,
    # defaults and columnar root positions exist only for the linked
    # program), then frames the concatenated bodies -- whole-program code
    # is never re-emitted statement by statement on the modular path.
    emit_by_style = {}
    for style, ir in irs.items():
        helpers, nonfinite = scan_statement_arithmetic(ir.statements)
        reads, writes, uses_clock_input = scan_statement_io(ir.statements)
        emit_by_style[style.value] = {
            "python": emit_python_statement_lines(
                ir.statements, indent=2, observable=True,
                root_line=root_placeholder_line,
            ),
            "c": emit_c_statement_lines(
                ir.statements, indent=1, root_line=root_placeholder_line
            ),
            "c_shared": emit_shared_statement_lines(
                ir.statements, {}, indent=2, root_line=root_placeholder_line
            ),
            "helpers": sorted(helpers),
            "nonfinite": nonfinite,
            "reads": reads,
            "writes": writes,
            "uses_clock_input": uses_clock_input,
        }
    class_ids = sorted(c.id for c in hierarchy.classes if not c.is_null)
    all_ids = [c.id for c in hierarchy.classes]
    for payload in ir_by_style.values():
        all_ids.extend(payload["referenced_class_ids"])
    free = [c for c in hierarchy.free_classes() if not c.is_null]

    statistics = dict(hierarchy.statistics())
    statistics["signals"] = len(canonical.signals)
    statistics["kernel_processes"] = len(canonical.processes)
    statistics["dependency_edges"] = graph.edge_count()

    return {
        "format": STORE_FORMAT,
        "kind": "unit",
        "fingerprint": unit.fingerprint(),
        "style": UNIT_STYLE,
        "build_flat": False,
        "observable": True,
        "unit_version": UNIT_FINGERPRINT_VERSION,
        "name": canonical.name,
        "types": {name: type_.value for name, type_ in types.items()},
        "class_ids": class_ids,
        "max_class_id": max(all_ids, default=-1),
        "signal_class": {
            signal: clock_class.id for signal, clock_class in schedule.signal_class.items()
        },
        "free_classes": [
            {"id": c.id, "atoms": _serialize_atoms(c.atoms)} for c in free
        ],
        "ir": ir_by_style,
        "emit": emit_by_style,
        "artifacts": {
            "forest": hierarchy.render_forest(),
            "free": [c.display_name() for c in free],
            "clocks": str(clock_system),
            "kernel": str(canonical),
        },
        "statistics": statistics,
    }


class _LinkedClockSystemText:
    """Stand-in for :class:`ClockSystem` on linked results (text only)."""

    __slots__ = ("_text",)

    def __init__(self, text: str):
        self._text = text

    def __str__(self) -> str:
        return self._text


#: statistics keys summed across units by :meth:`LinkedCompilationResult.statistics`
_ADDITIVE_STATS = (
    "classes",
    "variables",
    "bdd_nodes",
    "bdd_nodes_total",
    "trees",
    "forest_nodes",
    "free_clocks",
    "unresolved",
    "dependency_edges",
)


@dataclass
class LinkedCompilationResult:
    """The artifacts of a modular (unit-wise) compilation, after linking.

    Surface-compatible with :class:`CompilationResult` everywhere the
    service, store and daemon layers look (``program``, ``types``,
    ``executable``/``executable_flat``, the source/tree/statistics
    accessors), but built purely from cached unit records -- no BDD
    operations happen at link time.  The clock hierarchy and dependency
    graph of the whole program are never materialized; their statistics
    and rendered texts are composed from the per-unit artifacts.
    """

    program: KernelProgram
    types: Dict[str, SignalType]
    units: list
    unit_records: list
    observable: bool = True
    process: Optional[Process] = None
    executable: Optional[CompiledProcess] = None
    executable_flat: Optional[CompiledProcess] = None
    #: the persisted linked record this result was rehydrated from, if any;
    #: record-backed results serve artifacts from the record (the unit
    #: records are deliberately not loaded -- that is the point of the
    #: linked tier) and can only render the style the record was built for
    record: Optional[dict] = None
    _linked_irs: Dict[GenerationStyle, StepIR] = field(
        default_factory=dict, repr=False, compare=False
    )
    _linked_sources: Dict[tuple, str] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def name(self) -> str:
        return self.program.name

    def unit_fingerprints(self) -> list:
        if self.record is not None and not self.units:
            return list(self.record["unit_fingerprints"])
        return [unit.fingerprint() for unit in self.units]

    def interpreter(self) -> KernelInterpreter:
        """A fresh reference interpreter for the same (whole) program."""
        return KernelInterpreter(self.program, self.types)

    # -- linked IR and generated sources -------------------------------------
    def _part(self, unit: ProgramUnit, record: dict, style: GenerationStyle) -> dict:
        rename = unit.from_canonical
        return {
            "ir": record["ir"][style.value],
            "rename": rename,
            "class_ids": record["class_ids"],
            "max_class_id": record["max_class_id"],
            "signal_class": record["signal_class"],
            "free_classes": record["free_classes"],
            "emit": (record.get("emit") or {}).get(style.value),
            "types": {
                rename.get(name, name): SignalType(value)
                for name, value in record["types"].items()
            },
        }

    def _parts(self, style: GenerationStyle) -> list:
        return [
            self._part(unit, record, style)
            for unit, record in zip(self.units, self.unit_records)
        ]

    def _require_unit_records(self) -> None:
        if self.record is not None and not self.unit_records:
            raise ValueError(
                "linked result was rehydrated from a store record rendered "
                f"for style {self.record['options']['style']!r}; other "
                "artifacts require a re-link from unit records"
            )

    def _record_artifact(
        self, key: str, style: Optional[GenerationStyle] = None
    ) -> Optional[str]:
        """The stored artifact of a record-backed result, or ``None``."""
        if self.record is None:
            return None
        if style is not None and style.value != self.record["options"]["style"]:
            return None
        return self.record["artifacts"][key]

    def step_ir(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> StepIR:
        ir = self._linked_irs.get(style)
        if ir is None:
            self._require_unit_records()
            ir = link_step_ir(
                self.program.name,
                style,
                self._parts(style),
                self.program.inputs,
                self.program.outputs,
            )
            self._linked_irs[style] = ir
        return ir

    def _linked_source(self, backend: str, style: GenerationStyle) -> str:
        """Generated source via the incremental path, with full-IR fallback.

        Composes the cached per-unit bodies when every unit record carries
        an emit cache; unit records written before per-unit emission fall
        back to emitting from the fully linked IR.  Both paths produce
        byte-identical text (the fuzz suite asserts it), so the composed
        source is memoized under the same key either way.
        """
        cached = self._linked_sources.get((backend, style.value))
        if cached is not None:
            return cached
        self._require_unit_records()
        parts = self._parts(style)
        arguments = (self.program.name, style, parts, self.program.inputs, self.program.outputs)
        if backend == "python":
            source = link_python_source(*arguments)
            if source is None:
                source = generate_python_source(self.step_ir(style))
        elif backend == "c":
            source = link_c_source(*arguments)
            if source is None:
                source = generate_c_source(self.step_ir(style))
        else:
            source = link_c_shared_source(*arguments)
            if source is None:
                source = generate_c_shared_source(self.step_ir(style))
        self._linked_sources[(backend, style.value)] = source
        return source

    def python_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        stored = self._record_artifact("python", style)
        if stored is not None:
            return stored
        return self._linked_source("python", style)

    def c_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        stored = self._record_artifact("c", style)
        if stored is not None:
            return stored
        return self._linked_source("c", style)

    def c_shared_source(self, style: GenerationStyle = GenerationStyle.HIERARCHICAL) -> str:
        stored = self._record_artifact("c_shared", style)
        if stored is not None:
            return stored
        return self._linked_source("c_shared", style)

    # -- composed artifacts ---------------------------------------------------
    def tree_text(self) -> str:
        stored = self._record_artifact("tree")
        if stored is not None:
            return stored
        forests = []
        free_names = []
        for unit, record in zip(self.units, self.unit_records):
            rename = unit.from_canonical
            forest = rename_text(record["artifacts"]["forest"], rename)
            if forest.strip():
                forests.append(forest)
            free_names.extend(
                rename_text(name, rename) for name in record["artifacts"]["free"]
            )
        forest = "\n".join(forests)
        free = ", ".join(free_names) if free_names else "(none)"
        return f"{forest}\n\nfree clocks: {free}"

    @property
    def clock_system(self) -> _LinkedClockSystemText:
        stored = self._record_artifact("clocks")
        if stored is not None:
            return _LinkedClockSystemText(stored)
        sections = []
        for unit, record in zip(self.units, self.unit_records):
            sections.append(
                rename_text(record["artifacts"]["clocks"], unit.from_canonical)
            )
        return _LinkedClockSystemText("\n\n".join(sections))

    def statistics(self) -> Dict[str, int]:
        if self.record is not None and not self.unit_records:
            return dict(self.record["statistics"])
        stats: Dict[str, int] = {key: 0 for key in _ADDITIVE_STATS}
        forest_height = 0
        for record in self.unit_records:
            unit_stats = record["statistics"]
            for key in _ADDITIVE_STATS:
                stats[key] += unit_stats.get(key, 0)
            forest_height = max(forest_height, unit_stats.get("forest_height", 0))
        stats["forest_height"] = forest_height
        stats["signals"] = len(self.program.signals)
        stats["kernel_processes"] = len(self.program.processes)
        stats["units"] = len(self.units)
        return stats


def _linked_executable(
    result: LinkedCompilationResult, style: GenerationStyle, observable: bool
) -> CompiledProcess:
    name = result.program.name
    if observable:
        # Incremental path: concatenate the cached per-unit python bodies
        # instead of linking a full StepIR first.  The interface (inputs,
        # outputs, root flags) is recomputed from the unit payloads alone.
        parts = result._parts(style)
        source = link_python_source(
            name, style, parts, result.program.inputs, result.program.outputs
        )
        if source is not None:
            result._linked_sources.setdefault(("python", style.value), source)
            interface = link_interface(
                parts, result.program.inputs, result.program.outputs
            )
            instance = _instantiate_step(source, name, observable)
            return CompiledProcess(
                name=name,
                style=style,
                source=source,
                ir=None,
                step_instance=instance,
                inputs=list(interface["inputs"]),
                outputs=list(interface["outputs"]),
                root_flags=list(interface["root_flags"]),
                types=dict(result.types),
                observable=observable,
            )
    ir = result.step_ir(style)
    source = generate_python_source(ir, observable=observable)
    instance = _instantiate_step(source, ir.name, observable)
    return CompiledProcess(
        name=ir.name,
        style=style,
        source=source,
        ir=ir,
        step_instance=instance,
        inputs=list(ir.inputs),
        outputs=list(ir.outputs),
        root_flags=list(ir.root_flags),
        types=dict(result.types),
        observable=observable,
    )


def link_units(
    program: KernelProgram,
    units: list,
    records: list,
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    build_flat: bool = False,
    observable: bool = True,
    process: Optional[Process] = None,
) -> LinkedCompilationResult:
    """Compose cached unit records into an executable compilation result.

    ``units`` and ``records`` are parallel lists (one record per unit, in
    program order).  Linking renames every unit artifact from canonical to
    actual names, shifts clock-class ids into disjoint ranges, recomputes
    the root presence keys and defaults for the merged clock forest, and
    instantiates the merged step exactly like a monolithic compile --
    trace-equivalence of the two paths is what the differential fuzz suite
    proves.
    """
    if len(units) != len(records):
        raise ValueError(
            f"link stage got {len(units)} units but {len(records)} records"
        )
    types: Dict[str, SignalType] = {}
    for unit, record in zip(units, records):
        rename = unit.from_canonical
        for name, value in record["types"].items():
            types[rename.get(name, name)] = SignalType(value)

    result = LinkedCompilationResult(
        program=program,
        types=types,
        units=list(units),
        unit_records=list(records),
        observable=observable,
        process=process,
    )
    result.executable = _linked_executable(result, style, observable)
    if build_flat:
        result.executable_flat = _linked_executable(
            result, GenerationStyle.FLAT, observable
        )
    return result


def compile_modular_source(
    source: str,
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    build_flat: bool = False,
    observable: bool = True,
    manager: Optional[BDDManager] = None,
) -> LinkedCompilationResult:
    """Compile SIGNAL source unit-by-unit and link (no caching involved).

    The uncached counterpart of
    :meth:`repro.service.CompilationService.compile_modular`, useful for
    tests and one-off comparisons: split, compile every unit, link.
    """
    process = parse_process(source)
    program = normalize(process)
    units = split_units(program)
    records = [compile_unit_record(unit, manager=manager) for unit in units]
    return link_units(
        program,
        units,
        records,
        style=style,
        build_flat=build_flat,
        observable=observable,
        process=process,
    )


def linked_result_from_record(
    record: dict,
    program: KernelProgram,
    units: list,
    process: Optional[Process] = None,
) -> LinkedCompilationResult:
    """Rehydrate a linked result from a persisted ``kind: "linked"`` record.

    No unit records are loaded: artifacts and statistics come straight from
    the record and the executables are re-executed from their stored step
    sources, so a pruned unit record never forces a recompile as long as
    the linked record survives.
    """
    from .service.store import executable_from_record, types_from_record

    options = record["options"]
    executable = executable_from_record(record, flat=False)
    executable_flat = None
    if options["build_flat"] and record.get("executable_flat") is not None:
        executable_flat = executable_from_record(record, flat=True)
    return LinkedCompilationResult(
        program=program,
        types=types_from_record(record),
        units=list(units),
        unit_records=[],
        observable=options["observable"],
        process=process,
        executable=executable,
        executable_flat=executable_flat,
        record=record,
    )
