"""Command-line interface of the reproduction compiler.

``python -m repro <file.sig>`` compiles a SIGNAL process and prints the
requested artifact::

    python -m repro program.sig --emit tree      # forest of clock trees
    python -m repro program.sig --emit clocks    # the clock equations (Table 1)
    python -m repro program.sig --emit python    # generated Python step
    python -m repro program.sig --emit c         # generated C step
    python -m repro program.sig --emit stats     # size statistics
    python -m repro program.sig --flat ...       # flat (single-loop) style
    python -m repro program.sig --simulate 10    # run 10 reactions with random inputs

``python -m repro batch <files...>`` compiles many processes through one
:class:`~repro.service.CompilationService` (shared BDD pool + compile
cache), optionally in parallel::

    python -m repro batch a.sig b.sig c.sig      # sequential, pooled manager
    python -m repro batch *.sig --jobs 4         # 4 worker threads
    python -m repro batch *.sig --repeat 3       # demonstrate cache hits
    python -m repro batch *.sig --cache-stats    # print service statistics

The single-file mode is a thin layer over
:func:`repro.compiler.compile_source`; it exists so the compiler can be used
like the original batch SIGNAL compiler.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .codegen.ir import GenerationStyle
from .compiler import compile_source
from .errors import SignalError
from .runtime import ReactiveExecutor, random_oracle, timing_diagram
from .service import CompilationService

__all__ = ["main", "run_batch", "build_argument_parser", "build_batch_argument_parser"]


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"must be an integer (got {text!r})") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1 (got {value})")
    return value


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the PLDI'95 SIGNAL compiler",
        epilog=(
            "Subcommand: 'repro batch <files...>' compiles many processes "
            "through one compilation service (see 'repro batch --help'); a "
            "source file literally named 'batch' must be passed as './batch'."
        ),
    )
    parser.add_argument("source", help="path to a SIGNAL source file, or - for stdin")
    parser.add_argument(
        "--emit",
        choices=["tree", "clocks", "python", "c", "stats", "kernel"],
        default="tree",
        help="artifact to print (default: the forest of clock trees)",
    )
    parser.add_argument(
        "--flat",
        action="store_true",
        help="generate flat single-loop code instead of nested code",
    )
    parser.add_argument(
        "--simulate",
        type=int,
        metavar="N",
        default=0,
        help="additionally run N reactions with random inputs and print a timing diagram",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for the --simulate random inputs"
    )
    return parser


def build_batch_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Compile many SIGNAL processes through one CompilationService",
    )
    parser.add_argument("sources", nargs="+", help="paths to SIGNAL source files")
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="number of worker threads (default 1: sequential on the pooled manager)",
    )
    parser.add_argument(
        "--repeat",
        type=_positive_int,
        default=1,
        metavar="R",
        help="compile the whole batch R times (later rounds hit the compile cache)",
    )
    parser.add_argument(
        "--flat",
        action="store_true",
        help="generate flat single-loop code instead of nested code",
    )
    parser.add_argument(
        "--max-entries",
        type=_positive_int,
        default=128,
        help="capacity of the LRU compile cache (default 128, minimum 1)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print the service statistics (JSON) after compiling",
    )
    return parser


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def run_batch(argv: List[str]) -> int:
    """The ``batch`` subcommand: compile many files on one service."""
    parser = build_batch_argument_parser()
    arguments = parser.parse_args(argv)

    sources = []
    for path in arguments.sources:
        try:
            sources.append(_read_source(path))
        except OSError as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2

    style = GenerationStyle.FLAT if arguments.flat else GenerationStyle.HIERARCHICAL
    service = CompilationService(max_entries=arguments.max_entries)
    for round_index in range(arguments.repeat):
        started = time.perf_counter()
        hits_before = service.statistics()["cache_hits"]
        try:
            results = service.compile_batch(sources, jobs=arguments.jobs, style=style)
        except SignalError as batch_error:
            # Identify the culprit: recompile sequentially (sources that
            # already compiled are served from the cache, so this is cheap)
            # and report the first failing path.
            for path, source in zip(arguments.sources, sources):
                try:
                    service.compile(source, style=style)
                except SignalError as error:
                    print(f"error: {path}: {error}", file=sys.stderr)
                    return 1
            print(f"error: batch compilation failed: {batch_error}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        hits = service.statistics()["cache_hits"] - hits_before
        print(
            f"round {round_index + 1}: compiled {len(results)} program(s) "
            f"in {elapsed * 1000.0:.1f} ms ({hits} cache hit(s))"
        )
        for path, result in zip(arguments.sources, results):
            stats = result.statistics()
            print(
                f"  {path}: process {result.name}, {stats['classes']} classes, "
                f"{stats['free_clocks']} free clock(s), {stats['unresolved']} unresolved"
            )
    if arguments.cache_stats:
        print(json.dumps(service.statistics(), indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "batch":
        return run_batch(list(argv[1:]))
    parser = build_argument_parser()
    arguments = parser.parse_args(argv)

    try:
        source = _read_source(arguments.source)
    except OSError as error:
        print(f"error: cannot read {arguments.source}: {error}", file=sys.stderr)
        return 2

    style = GenerationStyle.FLAT if arguments.flat else GenerationStyle.HIERARCHICAL
    try:
        result = compile_source(source, style=style)
    except SignalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if arguments.emit == "tree":
        print(result.hierarchy.render_forest())
        free = [c.display_name() for c in result.hierarchy.free_classes()]
        print()
        print("free clocks:", ", ".join(free) if free else "(none)")
    elif arguments.emit == "clocks":
        print(result.clock_system)
    elif arguments.emit == "kernel":
        print(result.program)
    elif arguments.emit == "python":
        print(result.python_source(style))
    elif arguments.emit == "c":
        print(result.c_source(style))
    elif arguments.emit == "stats":
        print(json.dumps(result.statistics(), indent=2, sort_keys=True))

    if arguments.simulate > 0:
        executor = ReactiveExecutor(result.executable)
        oracle = random_oracle(result.types, seed=arguments.seed)
        trace = executor.run(arguments.simulate, oracle)
        print()
        print(f"simulation ({arguments.simulate} reactions, seed {arguments.seed}):")
        print(timing_diagram(trace.observations()))

    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
