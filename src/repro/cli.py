"""Command-line interface of the reproduction compiler.

``python -m repro <file.sig>`` compiles a SIGNAL process and prints the
requested artifact::

    python -m repro program.sig --emit tree      # forest of clock trees
    python -m repro program.sig --emit clocks    # the clock equations (Table 1)
    python -m repro program.sig --emit python    # generated Python step
    python -m repro program.sig --emit c         # generated C step
    python -m repro program.sig --emit stats     # size statistics
    python -m repro program.sig --flat ...       # flat (single-loop) style
    python -m repro program.sig --simulate 10    # run 10 reactions with random inputs

``python -m repro simulate`` runs a *population* of instances of one
compiled process -- through the mass-simulation runtime, which builds the
reentrant C with ``cc -shared`` and steps all instances per tick inside the
loaded library (falling back to per-instance Python stepping when no C
toolchain is installed)::

    python -m repro simulate program.sig --instances 64 --ticks 100
    python -m repro simulate program.sig --backend c        # require the C runtime
    python -m repro simulate program.sig --backend python   # force the fallback
    python -m repro simulate --record artifact.json         # from a stored record
    python -m repro simulate program.sig --json             # machine-readable summary

``python -m repro batch <files...>`` compiles many processes through one
:class:`~repro.service.CompilationService` (shared BDD pool + compile
cache), optionally in parallel::

    python -m repro batch a.sig b.sig c.sig      # sequential, pooled manager
    python -m repro batch *.sig --jobs 4         # 4 worker threads
    python -m repro batch *.sig --jobs 4 --workers processes   # 4 worker processes
    python -m repro batch *.sig --shards 4       # shard the pooled manager
    python -m repro batch *.sig --repeat 3       # demonstrate cache hits
    python -m repro batch *.sig --cache-stats    # print service statistics
    python -m repro batch *.sig --max-pool-nodes 200000   # recycle watermark

``python -m repro serve`` keeps one service alive behind a JSON-line socket
protocol so many OS processes share its pool and caches, and
``python -m repro remote-compile`` is the matching client::

    python -m repro serve --port 7420 --store .repro-cache
    python -m repro remote-compile a.sig --port 7420 --emit python
    python -m repro remote-compile a.sig --port 7420 --simulate 10 --stats

``python -m repro gateway`` federates several daemons behind one address:
compiles are routed by consistent hashing of the kernel fingerprint, dead
backends are failed over, and the gateway compiles locally when the whole
fleet is down::

    python -m repro gateway --port 7400 --backend 127.0.0.1:7420 \\
        --backend 127.0.0.1:7421 --store .repro-cache
    python -m repro remote-compile a.sig --port 7400 --emit python

``python -m repro partition`` splits a location-annotated process into one
compiled program per ``at`` location plus typed channels, and can run the
fragments lock-step (optionally one OS process each) against the unsplit
reference; ``simulate --distributed`` steps a population of such composite
instances::

    python -m repro partition program.sig
    python -m repro partition program.sig --run 64 --processes
    python -m repro simulate program.sig --distributed --ticks 100

The single-file mode is a thin layer over
:func:`repro.compiler.compile_source`; it exists so the compiler can be used
like the original batch SIGNAL compiler.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import List, Optional

from .codegen.ir import GenerationStyle
from .compiler import compile_source
from .errors import SignalError
from .runtime import (
    MassSimulation,
    ReactiveExecutor,
    random_input_schedule,
    random_oracle,
    timing_diagram,
)
from .service import (
    CompilationDaemon,
    CompilationService,
    CompileGateway,
    RemoteCompiler,
    RemoteError,
)
from .service.store import types_from_record

__all__ = [
    "main",
    "run_batch",
    "run_serve",
    "run_gateway",
    "run_remote_compile",
    "run_simulate",
    "run_partition",
    "build_argument_parser",
    "build_batch_argument_parser",
    "build_serve_argument_parser",
    "build_gateway_argument_parser",
    "build_remote_argument_parser",
    "build_simulate_argument_parser",
    "build_partition_argument_parser",
    "resolve_serve_workers",
]


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"must be an integer (got {text!r})") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1 (got {value})")
    return value


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the PLDI'95 SIGNAL compiler",
        epilog=(
            "Subcommands: 'repro batch <files...>' compiles many processes "
            "through one compilation service, 'repro serve' starts the "
            "compilation daemon, 'repro gateway' federates several daemons "
            "behind one address, 'repro remote-compile <files...>' compiles "
            "on a running daemon or gateway, 'repro partition' splits a "
            "location-annotated process into per-location programs (see "
            "'repro <subcommand> --help'); a source file literally named "
            "like a subcommand must be passed as './batch', './serve', ..."
        ),
    )
    parser.add_argument("source", help="path to a SIGNAL source file, or - for stdin")
    parser.add_argument(
        "--emit",
        choices=["tree", "clocks", "python", "c", "c_shared", "stats", "kernel"],
        default="tree",
        help="artifact to print (default: the forest of clock trees)",
    )
    parser.add_argument(
        "--flat",
        action="store_true",
        help="generate flat single-loop code instead of nested code",
    )
    parser.add_argument(
        "--simulate",
        type=int,
        metavar="N",
        default=0,
        help="additionally run N reactions with random inputs and print a timing diagram",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for the --simulate random inputs"
    )
    return parser


def build_batch_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Compile many SIGNAL processes through one CompilationService",
    )
    parser.add_argument("sources", nargs="+", help="paths to SIGNAL source files")
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="number of workers (default 1: sequential on the pooled manager)",
    )
    parser.add_argument(
        "--workers",
        choices=["threads", "processes"],
        default="threads",
        help=(
            "worker backend for --jobs: 'threads' (GIL-bound, returns live "
            "results) or 'processes' (true multi-core; workers return "
            "artifact records)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        metavar="K",
        help=(
            "shard the pooled BDD manager across K managers routed by "
            "kernel-fingerprint hash (default 1)"
        ),
    )
    parser.add_argument(
        "--repeat",
        type=_positive_int,
        default=1,
        metavar="R",
        help="compile the whole batch R times (later rounds hit the compile cache)",
    )
    parser.add_argument(
        "--flat",
        action="store_true",
        help="generate flat single-loop code instead of nested code",
    )
    parser.add_argument(
        "--max-entries",
        type=_positive_int,
        default=128,
        help="capacity of the LRU compile cache (default 128, minimum 1)",
    )
    parser.add_argument(
        "--max-pool-nodes",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "pool-hygiene watermark: recycle the pooled BDD manager when it "
            "exceeds N nodes (default: never)"
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "compile-store directory consulted by '--workers processes' "
            "workers before compiling (e.g. a daemon's --store), so "
            "cross-process batches start warm"
        ),
    )
    parser.add_argument(
        "--modular",
        action="store_true",
        help=(
            "compile each program per kernel unit (connected component) and "
            "link the cached unit artifacts; programs sharing modules reuse "
            "each other's unit compiles"
        ),
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print the service statistics (JSON) after compiling",
    )
    return parser


def build_serve_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the compilation daemon: one long-lived CompilationService "
            "behind a JSON-line TCP or unix-socket protocol"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="N",
        help="TCP port (default 0: pick a free port and print it)",
    )
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="serve on a unix domain socket instead of TCP",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "directory of the persistent compile store; the daemon starts "
            "warm from it and spills new compilations into it"
        ),
    )
    parser.add_argument(
        "--max-entries",
        type=_positive_int,
        default=128,
        help="capacity of the in-memory caches (default 128, minimum 1)",
    )
    parser.add_argument(
        "--max-pool-nodes",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "pool-hygiene watermark: recycle the pooled BDD manager when it "
            "exceeds N nodes (default: never)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        metavar="K",
        help=(
            "shard the pooled BDD manager across K managers routed by "
            "kernel-fingerprint hash (default 1)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="number of concurrent request workers (default 1: serialized)",
    )
    parser.add_argument(
        "--workers",
        choices=["threads", "processes"],
        default=None,
        help=(
            "how cache misses compile when --jobs > 1: 'processes' on a "
            "worker-process pool (true multi-core; the default whenever "
            "--jobs > 1) or 'threads' on the sharded pool (GIL-bound; the "
            "default for --jobs 1, explicit opt-in otherwise)"
        ),
    )
    parser.add_argument(
        "--log-requests",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help=(
            "append one JSON line per request (op, outcome, origin, "
            "duration) to PATH, or to stdout when PATH is omitted"
        ),
    )
    parser.add_argument(
        "--store-max-bytes",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "disk-store budget: after each spill, prune least-recently-used "
            "entries until the store is at most N bytes (requires --store)"
        ),
    )
    return parser


def resolve_serve_workers(workers: Optional[str], jobs: int) -> str:
    """The ``serve``/``gateway`` --workers default: processes when parallel.

    Threads are GIL-bound across shards, so a daemon asked for ``--jobs >
    1`` wants worker processes unless the operator explicitly opts into
    threads; a single-job daemon keeps the cheaper in-process path.
    """
    if workers is not None:
        return workers
    return "processes" if jobs > 1 else "threads"


def build_gateway_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro gateway",
        description=(
            "Run the compile gateway: one protocol-compatible front-end "
            "routing compiles across a fleet of compilation daemons by "
            "consistent hashing of the kernel fingerprint, with health "
            "checks, failover and local graceful degradation"
        ),
    )
    parser.add_argument(
        "--backend",
        action="append",
        default=[],
        metavar="HOST:PORT|SOCKET",
        help=(
            "a backend daemon address (repeatable); HOST:PORT for TCP, a "
            "path for a unix socket"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="N",
        help="TCP port (default 0: pick a free port and print it)",
    )
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="serve on a unix domain socket instead of TCP",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "shared compile-store directory (point the backends at the same "
            "directory to make it a fleet-wide artifact tier); also warms "
            "the gateway's local-fallback engine"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=8,
        metavar="N",
        help=(
            "concurrent request workers (default 8; forwarding threads "
            "mostly wait on backend I/O, so more than one core's worth is "
            "fine)"
        ),
    )
    parser.add_argument(
        "--backend-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-request timeout towards a backend (default 60)",
    )
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="backend connection-establishment timeout (default 5)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between background backend health sweeps (default 2)",
    )
    parser.add_argument(
        "--no-local-fallback",
        action="store_true",
        help=(
            "answer 'no-backend' errors instead of compiling locally when "
            "every backend is down"
        ),
    )
    parser.add_argument(
        "--max-entries",
        type=_positive_int,
        default=128,
        help="capacity of the gateway's in-memory caches (default 128)",
    )
    parser.add_argument(
        "--log-requests",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help=(
            "append one JSON line per request (op, outcome, origin, "
            "duration) to PATH, or to stdout when PATH is omitted"
        ),
    )
    return parser


def build_remote_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro remote-compile",
        description="Compile SIGNAL sources on a running compilation daemon",
    )
    parser.add_argument("sources", nargs="+", help="paths to SIGNAL source files")
    parser.add_argument("--host", default="127.0.0.1", help="daemon host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None, metavar="N", help="daemon TCP port")
    parser.add_argument(
        "--socket", default=None, metavar="PATH", help="daemon unix socket path"
    )
    parser.add_argument(
        "--emit",
        choices=["tree", "clocks", "python", "c", "c_shared", "stats", "kernel"],
        default="tree",
        help="artifact to print per file (default: the forest of clock trees)",
    )
    parser.add_argument(
        "--flat",
        action="store_true",
        help="generate flat single-loop code instead of nested code",
    )
    parser.add_argument(
        "--simulate",
        type=int,
        metavar="N",
        default=0,
        help="additionally run N reactions on the daemon and print the timing diagram",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for the --simulate random inputs"
    )
    parser.add_argument(
        "--modular",
        action="store_true",
        help=(
            "compile misses unit-by-unit on the daemon (shared modules hit "
            "its unit cache, repeated compositions its linked-result cache)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the daemon's cache statistics (JSON) after compiling",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="connect/request timeout per round-trip (default 60)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "reconnect and resend up to N times after a transport failure "
            "(timeouts, resets; daemon-reported errors are never retried)"
        ),
    )
    return parser


def build_simulate_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro simulate",
        description=(
            "Run a population of instances of one compiled process through "
            "the mass-simulation runtime (loaded C when a compiler is "
            "available, per-instance Python otherwise)"
        ),
    )
    parser.add_argument(
        "source",
        nargs="?",
        default=None,
        help="path to a SIGNAL source file, or - for stdin (omit with --record)",
    )
    parser.add_argument(
        "--record",
        default=None,
        metavar="PATH",
        help=(
            "simulate a persisted artifact record (JSON, as written by the "
            "compile store or 'batch --workers processes') instead of "
            "compiling a source file"
        ),
    )
    parser.add_argument(
        "--instances",
        type=_positive_int,
        default=16,
        metavar="N",
        help="population size (default 16)",
    )
    parser.add_argument(
        "--ticks",
        type=_positive_int,
        default=32,
        metavar="N",
        help="reactions to run per instance (default 32)",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "c", "python"],
        default="auto",
        help=(
            "execution engine: 'c' builds the reentrant C with cc -shared "
            "and steps the whole population in the loaded library, 'python' "
            "steps independent generated-Python instances, 'auto' (default) "
            "picks 'c' when a compiler is found"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the per-instance random input schedules (default 0)",
    )
    parser.add_argument(
        "--flat",
        action="store_true",
        help="simulate the flat single-loop style instead of nested code",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable JSON summary instead of text",
    )
    parser.add_argument(
        "--distributed",
        action="store_true",
        help=(
            "partition the program at its 'at' location annotations and "
            "step each instance as the lock-step composite of the "
            "per-location fragments (see 'repro partition')"
        ),
    )
    return parser


def run_simulate(argv: List[str]) -> int:
    """The ``simulate`` subcommand: mass-simulate one compiled process."""
    parser = build_simulate_argument_parser()
    arguments = parser.parse_args(argv)
    if (arguments.source is None) == (arguments.record is None):
        print("error: exactly one of a source file or --record is required", file=sys.stderr)
        return 2
    if arguments.record is not None and arguments.flat:
        print("error: --flat cannot be combined with --record", file=sys.stderr)
        return 2
    if arguments.distributed:
        if arguments.record is not None:
            print("error: --distributed requires a source file", file=sys.stderr)
            return 2
        return _run_simulate_distributed(arguments)

    style = GenerationStyle.FLAT if arguments.flat else GenerationStyle.HIERARCHICAL
    try:
        if arguments.record is not None:
            with open(arguments.record, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            simulation = MassSimulation.from_record(
                record, arguments.instances, backend=arguments.backend
            )
            entry = record["executable"]
            name = entry["name"]
            types = types_from_record(record)
            inputs = list(entry["inputs"])
            root_flags = [tuple(flag) for flag in entry["root_flags"]]
        else:
            source = _read_source(arguments.source)
            result = compile_source(source, style=style, build_flat=arguments.flat)
            simulation = MassSimulation.from_result(
                result, arguments.instances, backend=arguments.backend, style=style
            )
            executable = result.executable_flat if arguments.flat else result.executable
            name = result.name
            types = result.types
            inputs = list(executable.inputs)
            root_flags = list(executable.root_flags)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SignalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if arguments.backend == "auto" and simulation.backend == "python":
        print(
            "note: no C compiler found; stepping the population in Python "
            "(set REPRO_CC or install cc to use the C runtime)",
            file=sys.stderr,
        )

    schedules = [
        random_input_schedule(
            types,
            inputs,
            root_flags,
            steps=arguments.ticks,
            seed=random.Random(f"{arguments.seed}:{index}"),
        )
        for index in range(arguments.instances)
    ]
    presence = {}
    started = time.perf_counter()
    for tick in range(arguments.ticks):
        record_tick = simulation.step(
            [schedules[index][tick] for index in range(arguments.instances)]
        )
        for outputs in record_tick:
            for signal in outputs:
                presence[signal] = presence.get(signal, 0) + 1
    elapsed = time.perf_counter() - started

    instance_steps = arguments.instances * arguments.ticks
    if arguments.json:
        print(
            json.dumps(
                {
                    "name": name,
                    "backend": simulation.backend,
                    "instances": arguments.instances,
                    "ticks": arguments.ticks,
                    "instance_steps": instance_steps,
                    "seed": arguments.seed,
                    "outputs": {
                        signal: presence.get(signal, 0) for signal in sorted(presence)
                    },
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        rate = instance_steps / elapsed if elapsed > 0 else float("inf")
        print(
            f"process {name}: {arguments.instances} instance(s) x "
            f"{arguments.ticks} tick(s), backend {simulation.backend}"
        )
        print(
            f"  {instance_steps} instance-steps in {elapsed * 1000.0:.1f} ms "
            f"({rate:,.0f}/s)"
        )
        for signal in sorted(presence):
            print(f"  {signal}: present {presence[signal]}/{instance_steps}")
        if not presence:
            print("  (no output was ever present)")
    return 0


def _run_simulate_distributed(arguments) -> int:
    """``simulate --distributed``: step a population of composite instances."""
    from .runtime.distributed import build_distributed

    style = GenerationStyle.FLAT if arguments.flat else GenerationStyle.HIERARCHICAL
    try:
        source = _read_source(arguments.source)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        distributed = build_distributed(source=source, style=style)
    except SignalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    reference = distributed.reference
    executable = reference.executable_flat if arguments.flat else reference.executable
    presence = {}
    started = time.perf_counter()
    for index in range(arguments.instances):
        schedule = random_input_schedule(
            reference.types,
            list(executable.inputs),
            list(executable.root_flags),
            steps=arguments.ticks,
            seed=random.Random(f"{arguments.seed}:{index}"),
        )
        for outputs in distributed.run(schedule):
            for signal in outputs:
                presence[signal] = presence.get(signal, 0) + 1
    elapsed = time.perf_counter() - started

    instance_steps = arguments.instances * arguments.ticks
    if arguments.json:
        print(
            json.dumps(
                {
                    "name": reference.name,
                    "backend": "distributed",
                    "locations": distributed.locations,
                    "channels": len(distributed.partitioned.channels),
                    "instances": arguments.instances,
                    "ticks": arguments.ticks,
                    "instance_steps": instance_steps,
                    "seed": arguments.seed,
                    "outputs": {
                        signal: presence.get(signal, 0) for signal in sorted(presence)
                    },
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        rate = instance_steps / elapsed if elapsed > 0 else float("inf")
        print(
            f"process {reference.name}: {arguments.instances} instance(s) x "
            f"{arguments.ticks} tick(s), backend distributed "
            f"({len(distributed.locations)} location(s): "
            f"{', '.join(distributed.locations)})"
        )
        print(
            f"  {instance_steps} instance-steps in {elapsed * 1000.0:.1f} ms "
            f"({rate:,.0f}/s)"
        )
        for signal in sorted(presence):
            print(f"  {signal}: present {presence[signal]}/{instance_steps}")
        if not presence:
            print("  (no output was ever present)")
    return 0


def build_partition_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro partition",
        description=(
            "Partition a location-annotated SIGNAL process into one "
            "compiled program per 'at' location plus typed channels, and "
            "optionally run the fragments lock-step against the monolithic "
            "reference"
        ),
    )
    parser.add_argument("source", help="path to a SIGNAL source file, or - for stdin")
    parser.add_argument(
        "--run",
        type=int,
        metavar="N",
        default=0,
        help=(
            "additionally run N instants with random inputs and check the "
            "composite trace against the unsplit reference"
        ),
    )
    parser.add_argument(
        "--processes",
        action="store_true",
        help=(
            "with --run: execute each fragment in its own OS process, "
            "channels as multiprocessing pipes (default: in-process lock-step)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for the --run random inputs"
    )
    parser.add_argument(
        "--monolithic",
        action="store_true",
        help=(
            "compile fragments through the monolithic service path instead "
            "of the modular (unit-cached) one"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable JSON summary instead of text",
    )
    return parser


def run_partition(argv: List[str]) -> int:
    """The ``partition`` subcommand: split a program at its 'at' annotations."""
    from .runtime.distributed import build_distributed

    parser = build_partition_argument_parser()
    arguments = parser.parse_args(argv)
    try:
        source = _read_source(arguments.source)
    except OSError as error:
        print(f"error: cannot read {arguments.source}: {error}", file=sys.stderr)
        return 2
    try:
        distributed = build_distributed(
            source=source, modular=not arguments.monolithic
        )
    except SignalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    partitioned = distributed.partitioned
    summary = {
        "name": partitioned.program.name,
        "locations": distributed.locations,
        "fragments": [
            {
                "location": runtime.location,
                "processes": len(runtime.fragment.program.processes),
                "inputs": list(runtime.fragment.program.inputs),
                "outputs": list(runtime.fragment.program.outputs),
                "external_inputs": list(runtime.fragment.external_inputs),
                "channel_inputs": list(runtime.fragment.channel_inputs),
                "channel_outputs": list(runtime.fragment.channel_outputs),
            }
            for runtime in distributed.runtimes
        ],
        "channels": [
            {
                "producer": channel.producer,
                "consumer": channel.consumer,
                "signals": [
                    {"name": s.name, "type": s.type_name} for s in channel.signals
                ],
            }
            for channel in partitioned.channels
        ],
    }

    check: Optional[bool] = None
    if arguments.run > 0:
        reference = distributed.reference
        schedule = random_input_schedule(
            reference.types,
            list(reference.executable.inputs),
            list(reference.executable.root_flags),
            steps=arguments.run,
            seed=arguments.seed,
        )
        outputs = set(partitioned.program.outputs)
        monolithic = [
            {name: value for name, value in step.items() if name in outputs}
            for step in reference.executable.fresh().run(list(schedule))
        ]
        if arguments.processes:
            composite = distributed.run_multiprocess(schedule)
        else:
            composite = distributed.run(schedule)
        check = composite == monolithic
        summary["run"] = {
            "instants": arguments.run,
            "seed": arguments.seed,
            "mode": "processes" if arguments.processes else "in-process",
            "matches_monolithic": check,
        }

    if arguments.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(partitioned.describe())
        if check is not None:
            mode = "OS processes" if arguments.processes else "in-process lock-step"
            verdict = "matches" if check else "DIVERGES FROM"
            print(
                f"ran {arguments.run} instant(s) ({mode}): composite trace "
                f"{verdict} the monolithic reference"
            )
    return 0 if check is not False else 1


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def run_batch(argv: List[str]) -> int:
    """The ``batch`` subcommand: compile many files on one service."""
    parser = build_batch_argument_parser()
    arguments = parser.parse_args(argv)

    sources = []
    for path in arguments.sources:
        try:
            sources.append(_read_source(path))
        except OSError as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2

    style = GenerationStyle.FLAT if arguments.flat else GenerationStyle.HIERARCHICAL
    service = CompilationService(
        max_entries=arguments.max_entries,
        max_pool_nodes=arguments.max_pool_nodes,
        shards=arguments.shards,
        store=arguments.store,
    )
    with service:  # shuts the worker-process pool down on exit
        for round_index in range(arguments.repeat):
            started = time.perf_counter()
            hits_before = service.statistics()["cache_hits"]
            try:
                results = service.compile_batch(
                    sources,
                    jobs=arguments.jobs,
                    style=style,
                    workers=arguments.workers,
                    modular=arguments.modular,
                )
            except SignalError as batch_error:
                # Identify the culprit.  Process batches annotate the error
                # with the failing source's index (the parent compiled
                # nothing, so recompiling to find it would redo the whole
                # batch); thread batches recompile sequentially instead --
                # already-compiled sources are cache hits, so that is cheap.
                culprit = getattr(batch_error, "batch_index", None)
                if culprit is not None:
                    print(
                        f"error: {arguments.sources[culprit]}: {batch_error}",
                        file=sys.stderr,
                    )
                    return 1
                for path, source in zip(arguments.sources, sources):
                    try:
                        service.compile(source, style=style)
                    except SignalError as error:
                        print(f"error: {path}: {error}", file=sys.stderr)
                        return 1
                print(f"error: batch compilation failed: {batch_error}", file=sys.stderr)
                return 1
            elapsed = time.perf_counter() - started
            if arguments.workers == "processes":
                # Worker-process caches are not the service's; hit counts
                # would be misleading here.
                summary = f"{arguments.jobs} process worker(s)"
            else:
                hits = service.statistics()["cache_hits"] - hits_before
                summary = f"{hits} cache hit(s)"
                if arguments.modular:
                    stats = service.statistics()
                    summary += (
                        f", {stats['unit_hits']} unit hit(s), "
                        f"{stats['unit_misses']} unit compile(s), "
                        f"{stats['links']} link(s)"
                    )
            print(
                f"round {round_index + 1}: compiled {len(results)} program(s) "
                f"in {elapsed * 1000.0:.1f} ms ({summary})"
            )
            for path, result in zip(arguments.sources, results):
                # Thread batches yield live results, process batches yield
                # artifact records; both carry the same statistics.
                if isinstance(result, dict):
                    name, stats = result["name"], result["statistics"]
                else:
                    name, stats = result.name, result.statistics()
                print(
                    f"  {path}: process {name}, {stats['classes']} classes, "
                    f"{stats['free_clocks']} free clock(s), {stats['unresolved']} unresolved"
                )
        if arguments.cache_stats:
            print(json.dumps(service.statistics(), indent=2, sort_keys=True))
    return 0


def run_serve(argv: List[str]) -> int:
    """The ``serve`` subcommand: run the compilation daemon until killed."""
    parser = build_serve_argument_parser()
    arguments = parser.parse_args(argv)
    if arguments.store_max_bytes is not None and arguments.store is None:
        print("error: --store-max-bytes requires --store", file=sys.stderr)
        return 2

    daemon = CompilationDaemon(
        store=arguments.store,
        max_entries=arguments.max_entries,
        max_pool_nodes=arguments.max_pool_nodes,
        shards=arguments.shards,
        workers=resolve_serve_workers(arguments.workers, arguments.jobs),
        jobs=arguments.jobs,
        request_log=arguments.log_requests,
        store_max_bytes=arguments.store_max_bytes,
    )

    def announce() -> None:
        if arguments.socket is not None:
            print(f"repro daemon listening on unix socket {arguments.socket}", flush=True)
        else:
            host, port = daemon.address
            print(f"repro daemon listening on {host}:{port}", flush=True)
        if arguments.store is not None:
            store_stats = daemon.store.statistics()
            print(
                f"compile store: {arguments.store} "
                f"({store_stats['entries']} entr{'y' if store_stats['entries'] == 1 else 'ies'} "
                f"on disk)",
                flush=True,
            )

    try:
        daemon.run(
            host=arguments.host,
            port=arguments.port,
            socket_path=arguments.socket,
            on_ready=announce,
        )
    except OSError as error:
        print(f"error: cannot bind: {error}", file=sys.stderr)
        return 2
    return 0


def run_gateway(argv: List[str]) -> int:
    """The ``gateway`` subcommand: front a fleet of compilation daemons."""
    parser = build_gateway_argument_parser()
    arguments = parser.parse_args(argv)

    try:
        gateway = CompileGateway(
            backends=arguments.backend,
            local_fallback=not arguments.no_local_fallback,
            backend_timeout=arguments.backend_timeout,
            connect_timeout=arguments.connect_timeout,
            health_interval=arguments.health_interval,
            store=arguments.store,
            max_entries=arguments.max_entries,
            jobs=arguments.jobs,
            request_log=arguments.log_requests,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def announce() -> None:
        if arguments.socket is not None:
            print(f"repro gateway listening on unix socket {arguments.socket}", flush=True)
        else:
            host, port = gateway.address
            print(f"repro gateway listening on {host}:{port}", flush=True)
        specs = gateway.backends
        if specs:
            print(f"routing over {len(specs)} backend(s): {', '.join(specs)}", flush=True)
        else:
            print("no backends registered; compiling locally", flush=True)

    try:
        gateway.run(
            host=arguments.host,
            port=arguments.port,
            socket_path=arguments.socket,
            on_ready=announce,
        )
    except OSError as error:
        print(f"error: cannot bind: {error}", file=sys.stderr)
        return 2
    return 0


def run_remote_compile(argv: List[str]) -> int:
    """The ``remote-compile`` subcommand: compile on a running daemon."""
    parser = build_remote_argument_parser()
    arguments = parser.parse_args(argv)
    if (arguments.port is None) == (arguments.socket is None):
        print("error: exactly one of --port or --socket is required", file=sys.stderr)
        return 2

    style = GenerationStyle.FLAT if arguments.flat else GenerationStyle.HIERARCHICAL
    if arguments.retries < 0:
        print("error: --retries must be non-negative", file=sys.stderr)
        return 2
    try:
        client = RemoteCompiler(
            host=arguments.host,
            port=arguments.port,
            socket_path=arguments.socket,
            timeout=arguments.timeout,
            retries=arguments.retries,
        )
    except OSError as error:
        print(f"error: cannot connect to the daemon: {error}", file=sys.stderr)
        return 2

    status = 0
    with client:
        for path in arguments.sources:
            try:
                source = _read_source(path)
            except OSError as error:
                print(f"error: cannot read {path}: {error}", file=sys.stderr)
                return 2
            try:
                result = client.compile(
                    source,
                    style=style,
                    emit=[arguments.emit],
                    simulate=arguments.simulate,
                    seed=arguments.seed,
                    modular=arguments.modular,
                )
            except RemoteError as error:
                print(f"error: {path}: {error}", file=sys.stderr)
                status = 1
                continue
            if len(arguments.sources) > 1:
                print(f"== {path}: process {result.name} [{result.origin}]")
            artifact = result.artifacts[arguments.emit]
            if arguments.emit == "stats":
                print(json.dumps(artifact, indent=2, sort_keys=True))
            else:
                print(artifact)
            if result.simulation is not None:
                print()
                print(
                    f"simulation ({result.simulation['reactions']} reactions, "
                    f"seed {result.simulation['seed']}):"
                )
                print(result.simulation["diagram"])
        if arguments.stats:
            try:
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
            except RemoteError as error:
                print(f"error: {error}", file=sys.stderr)
                status = 1
    return status


#: names reserved by ``main`` and their runners (a source file with one of
#: these names must be passed as ``./<name>``)
SUBCOMMANDS = {
    "batch": run_batch,
    "serve": run_serve,
    "gateway": run_gateway,
    "remote-compile": run_remote_compile,
    "simulate": run_simulate,
    "partition": run_partition,
}


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](list(argv[1:]))
    parser = build_argument_parser()
    arguments = parser.parse_args(argv)

    try:
        source = _read_source(arguments.source)
    except OSError as error:
        print(f"error: cannot read {arguments.source}: {error}", file=sys.stderr)
        return 2

    style = GenerationStyle.FLAT if arguments.flat else GenerationStyle.HIERARCHICAL
    try:
        result = compile_source(source, style=style)
    except SignalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if arguments.emit == "tree":
        print(result.tree_text())
    elif arguments.emit == "clocks":
        print(result.clock_system)
    elif arguments.emit == "kernel":
        print(result.program)
    elif arguments.emit == "python":
        print(result.python_source(style))
    elif arguments.emit == "c":
        print(result.c_source(style))
    elif arguments.emit == "c_shared":
        print(result.c_shared_source(style))
    elif arguments.emit == "stats":
        print(json.dumps(result.statistics(), indent=2, sort_keys=True))

    if arguments.simulate > 0:
        executor = ReactiveExecutor(result.executable)
        oracle = random_oracle(result.types, seed=arguments.seed)
        trace = executor.run(arguments.simulate, oracle)
        print()
        print(f"simulation ({arguments.simulate} reactions, seed {arguments.seed}):")
        print(timing_diagram(trace.observations()))

    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
