"""Command-line interface of the reproduction compiler.

``python -m repro <file.sig>`` compiles a SIGNAL process and prints the
requested artifact::

    python -m repro program.sig --emit tree      # forest of clock trees
    python -m repro program.sig --emit clocks    # the clock equations (Table 1)
    python -m repro program.sig --emit python    # generated Python step
    python -m repro program.sig --emit c         # generated C step
    python -m repro program.sig --emit stats     # size statistics
    python -m repro program.sig --flat ...       # flat (single-loop) style
    python -m repro program.sig --simulate 10    # run 10 reactions with random inputs

The CLI is a thin layer over :func:`repro.compiler.compile_source`; it exists
so the compiler can be used like the original batch SIGNAL compiler.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .codegen.ir import GenerationStyle
from .compiler import compile_source
from .errors import SignalError
from .runtime import ReactiveExecutor, random_oracle, timing_diagram

__all__ = ["main", "build_argument_parser"]


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the PLDI'95 SIGNAL compiler",
    )
    parser.add_argument("source", help="path to a SIGNAL source file, or - for stdin")
    parser.add_argument(
        "--emit",
        choices=["tree", "clocks", "python", "c", "stats", "kernel"],
        default="tree",
        help="artifact to print (default: the forest of clock trees)",
    )
    parser.add_argument(
        "--flat",
        action="store_true",
        help="generate flat single-loop code instead of nested code",
    )
    parser.add_argument(
        "--simulate",
        type=int,
        metavar="N",
        default=0,
        help="additionally run N reactions with random inputs and print a timing diagram",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for the --simulate random inputs"
    )
    return parser


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_argument_parser()
    arguments = parser.parse_args(argv)

    try:
        source = _read_source(arguments.source)
    except OSError as error:
        print(f"error: cannot read {arguments.source}: {error}", file=sys.stderr)
        return 2

    style = GenerationStyle.FLAT if arguments.flat else GenerationStyle.HIERARCHICAL
    try:
        result = compile_source(source, style=style)
    except SignalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if arguments.emit == "tree":
        print(result.hierarchy.render_forest())
        free = [c.display_name() for c in result.hierarchy.free_classes()]
        print()
        print("free clocks:", ", ".join(free) if free else "(none)")
    elif arguments.emit == "clocks":
        print(result.clock_system)
    elif arguments.emit == "kernel":
        print(result.program)
    elif arguments.emit == "python":
        print(result.python_source(style))
    elif arguments.emit == "c":
        print(result.c_source(style))
    elif arguments.emit == "stats":
        print(json.dumps(result.statistics(), indent=2, sort_keys=True))

    if arguments.simulate > 0:
        executor = ReactiveExecutor(result.executable)
        oracle = random_oracle(result.types, seed=arguments.seed)
        trace = executor.run(arguments.simulate, oracle)
        print()
        print(f"simulation ({arguments.simulate} reactions, seed {arguments.seed}):")
        print(timing_diagram(trace.observations()))

    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
