"""Clock trees and the forest of clocks (Section 3.4 of the paper).

A *partition tree* has a clock at its root and, for every boolean signal
``C`` whose clock is a node of the tree, the two samplings ``[C]`` and
``[¬C]`` as children of that node.  Fusion of trees inserts clocks defined
by a formula under the *branching* of their operands, producing general
*clock trees*.  The set of all trees is the *forest of clocks*.

The tree encodes the inclusion relation: every node is included (as a set
of instants) in its parent, hence in all its ancestors.  This property is
what makes the nested if-then-else code generation of Figure 9 valid.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .resolution import ClockClass

__all__ = ["ClockNode", "ClockForest"]


class ClockNode:
    """A node of a clock tree, owning one clock (equivalence) class."""

    def __init__(self, clock_class: "ClockClass"):
        self.clock_class = clock_class
        self.parent: Optional[ClockNode] = None
        self.children: List[ClockNode] = []

    # -- structure ----------------------------------------------------------
    @property
    def depth(self) -> int:
        """Distance to the root of the tree (the root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    @property
    def root(self) -> "ClockNode":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def add_child(self, child: "ClockNode") -> None:
        if child.parent is not None:
            raise ValueError("clock node already has a parent")
        child.parent = self
        self.children.append(child)

    def is_ancestor_of(self, other: "ClockNode") -> bool:
        """Whether ``self`` is ``other`` or an ancestor of ``other``."""
        node: Optional[ClockNode] = other
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def ancestors(self) -> Iterator["ClockNode"]:
        """This node, its parent, ..., up to the root."""
        node: Optional[ClockNode] = self
        while node is not None:
            yield node
            node = node.parent

    def iter_subtree(self) -> Iterator["ClockNode"]:
        """Depth-first, left-to-right traversal of the subtree rooted here.

        A left-to-right depth-first search visits the operands of an inserted
        formula before the formula itself, which is how the tree embodies the
        triangular ordering of the system of equations.
        """
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def size(self) -> int:
        return sum(1 for _ in self.iter_subtree())

    def height(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.height() for child in self.children)

    # -- display --------------------------------------------------------------
    def render(self, label: Optional[Callable[["ClockNode"], str]] = None) -> str:
        """ASCII rendering of the subtree (used by examples and diagnostics)."""
        label = label or (lambda node: node.clock_class.display_name())
        lines: List[str] = []

        def walk(node: "ClockNode", prefix: str, is_last: bool, is_root: bool) -> None:
            if is_root:
                lines.append(label(node))
                child_prefix = ""
            else:
                connector = "`-- " if is_last else "|-- "
                lines.append(prefix + connector + label(node))
                child_prefix = prefix + ("    " if is_last else "|   ")
            for index, child in enumerate(node.children):
                walk(child, child_prefix, index == len(node.children) - 1, False)

        walk(self, "", True, True)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClockNode({self.clock_class.display_name()}, children={len(self.children)})"


class ClockForest:
    """The forest of clock trees of a program."""

    def __init__(self) -> None:
        self.roots: List[ClockNode] = []

    def add_root(self, node: ClockNode) -> None:
        if node.parent is not None:
            raise ValueError("a root node cannot have a parent")
        self.roots.append(node)

    def iter_nodes(self) -> Iterator[ClockNode]:
        for root in self.roots:
            yield from root.iter_subtree()

    def node_count(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def tree_count(self) -> int:
        return len(self.roots)

    def height(self) -> int:
        if not self.roots:
            return 0
        return max(root.height() for root in self.roots)

    def find(self, predicate: Callable[[ClockNode], bool]) -> Optional[ClockNode]:
        for node in self.iter_nodes():
            if predicate(node):
                return node
        return None

    def render(self) -> str:
        return "\n".join(root.render() for root in self.roots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClockForest(trees={self.tree_count()}, nodes={self.node_count()})"
