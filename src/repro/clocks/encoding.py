"""BDD encoding of clocks and of boolean signal values.

The arborescent resolution gives every clock class a BDD over two kinds of
variables:

* one *presence* variable per free (root) clock class, and
* one *value* variable per boolean signal whose value cannot be expressed
  structurally from other boolean signals.

A sampled clock ``[C]`` is encoded as ``enc(ĉ) ∧ value(C)`` and ``[¬C]`` as
``enc(ĉ) ∧ ¬value(C)``: the partition constraints of Table 1 then hold *by
construction* in the encoding, which is what lets BDD canonicity perform the
inclusion-based rewriting of Section 3.3 (e.g. ``[C1] ∨ ĉ`` reduces to
``ĉ`` because ``enc([C1])`` implies ``enc(ĉ)``).

Value variables are shared structurally: a boolean signal defined by
``not X`` reuses (the negation of) ``X``'s value function, ``X and Y``
reuses the conjunction, ``event X`` is constantly true, and so on.  This
mirrors the boolean reasoning the SIGNAL compiler performs on condition
values and is what identifies ``when (not C)`` with ``[¬C]``.

Scope-lifetime and fingerprint invariants
-----------------------------------------

When the manager is a :class:`~repro.bdd.ScopedBDDManager` (the compilation
service), the encoder persists its memo on the scope's ``encoding_cache``
so recompilations skip re-deriving value functions.  Three invariants keep
that sharing sound:

* **Keyed by kernel fingerprint.**  Entries are bucketed under the
  program's normalized-kernel fingerprint, the same identity the compile
  cache uses.  Even a scope (mis)used for two different programs can share
  variable *names* but never serve one program's value encodings -- or the
  opacity classification of a signal -- to the other.
* **Memo state is all-or-nothing per signal.**  Restoring an entry restores
  both the value BDD and whether the signal was *opaque* (received a fresh
  variable) on the cold run, so a warm encoder's observable state is
  indistinguishable from the cold encoder's final state.
* **Lifetime bounded by the scope.**  The memo lives exactly as long as the
  scope: when the service releases a scope (last cached result evicted,
  failed compilation, or manager recycled past its node watermark) the memo
  is cleared with it.  BDD handles inside the memo are only valid on the
  scope's base manager, so a scope must never migrate between managers.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..bdd import BDD, BDDManager
from ..lang.kernel import (
    KernelDefault,
    KernelDelay,
    KernelFunction,
    KernelProgram,
    KernelSynchro,
    KernelWhen,
    Literal,
)
from ..lang.types import SignalType

__all__ = ["ValueEncoder"]

#: Boolean operators whose value can be encoded structurally.
_STRUCTURAL_OPERATORS = {"not", "and", "or", "xor", "id", "event"}


class ValueEncoder:
    """Computes the BDD encoding of boolean signal *values*.

    ``value_of(C)`` is the boolean function that is true exactly at the
    instants (of ``ĉ``) where ``C`` carries ``true``.  The function is only
    meaningful in conjunction with the presence encoding of ``ĉ``.
    """

    def __init__(
        self,
        manager: BDDManager,
        program: KernelProgram,
        types: Dict[str, SignalType],
    ):
        self.manager = manager
        self.program = program
        self.types = types
        self._cache: Dict[str, BDD] = {}
        self._in_progress: Set[str] = set()
        #: names of signals that received a fresh (opaque) value variable
        self.opaque_signals: Set[str] = set()
        # A scope-persistent memo (signal -> (value BDD, is_opaque)) so that
        # recompiling the same program on a pooled manager does not re-derive
        # the value functions.  When the manager is a scoped view of a shared
        # manager (the compilation service), its per-scope cache is picked up
        # here.  Entries are bucketed by the program's kernel fingerprint, so
        # even a scope (mis)used for two different programs can never serve
        # one program's encodings to the other.
        shared = getattr(manager, "encoding_cache", None)
        if shared is not None:
            shared = shared.setdefault(program.fingerprint(), {})
            # Restore the whole memo eagerly so warm state (including the
            # opacity of signals derived transitively on the cold run) is
            # indistinguishable from a cold encoder's final state.
            for signal, (value, opaque) in shared.items():
                self._cache[signal] = value
                if opaque:
                    self.opaque_signals.add(signal)
        self._shared_cache: Optional[Dict[str, Tuple[BDD, bool]]] = shared

    # -- public API -------------------------------------------------------
    def value_of(self, signal: str) -> BDD:
        """The value function of a boolean signal (fresh variable if opaque)."""
        cached = self._cache.get(signal)
        if cached is not None:
            return cached
        if self._shared_cache is not None:
            shared = self._shared_cache.get(signal)
            if shared is not None:
                value, opaque = shared
                self._cache[signal] = value
                if opaque:
                    self.opaque_signals.add(signal)
                return value
        if signal in self._in_progress:
            # A combinational cycle through boolean operators; the dependency
            # graph will reject the program later.  Fall back to an opaque
            # variable so the clock calculus can still proceed.
            return self._fresh(signal)
        self._in_progress.add(signal)
        try:
            value = self._compute(signal)
        finally:
            self._in_progress.discard(signal)
        self._cache[signal] = value
        if self._shared_cache is not None:
            self._shared_cache[signal] = (value, signal in self.opaque_signals)
        return value

    def is_opaque(self, signal: str) -> bool:
        return signal in self.opaque_signals

    # -- internals -----------------------------------------------------------
    def _fresh(self, signal: str) -> BDD:
        variable = self.manager.declare(f"v_{signal}")
        self._cache[signal] = variable
        self.opaque_signals.add(signal)
        return variable

    def _literal(self, literal: Literal) -> BDD:
        if not isinstance(literal.value, bool):
            raise ValueError(f"literal {literal} is not boolean")
        return self.manager.true if literal.value else self.manager.false

    def _compute(self, signal: str) -> BDD:
        signal_type = self.types.get(signal)
        if signal_type is None or not signal_type.is_boolean_like:
            raise ValueError(f"signal {signal!r} is not boolean")

        definition = self.program.definition_of(signal)

        if definition is None:
            # Input signal (or otherwise externally defined): opaque value.
            return self._fresh(signal)

        if isinstance(definition, KernelFunction):
            operator = definition.operator
            if operator not in _STRUCTURAL_OPERATORS:
                # Relational/arithmetic results are boolean but their value is
                # not a boolean function of other boolean signals.
                return self._fresh(signal)
            if operator == "event":
                return self.manager.true
            operands = []
            for operand in definition.operands:
                if isinstance(operand, Literal):
                    operands.append(self._literal(operand))
                else:
                    operands.append(self.value_of(operand))
            if operator == "id":
                return operands[0]
            if operator == "not":
                return ~operands[0]
            if operator == "and":
                result = operands[0]
                for operand in operands[1:]:
                    result = result & operand
                return result
            if operator == "or":
                result = operands[0]
                for operand in operands[1:]:
                    result = result | operand
                return result
            if operator == "xor":
                result = operands[0]
                for operand in operands[1:]:
                    result = result ^ operand
                return result

        if isinstance(definition, KernelWhen):
            # The value of ``U when C`` at its instants is the value of U.
            if isinstance(definition.source, Literal):
                return self._literal(definition.source)
            return self.value_of(definition.source)

        if isinstance(definition, (KernelDelay, KernelDefault)):
            # Delayed or merged values depend on run-time history/priority and
            # are treated as opaque by the static calculus.
            return self._fresh(signal)

        if isinstance(definition, KernelSynchro):  # pragma: no cover - synchro has no target
            return self._fresh(signal)

        return self._fresh(signal)
