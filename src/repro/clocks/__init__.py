"""The clock calculus: the paper's core contribution.

Every SIGNAL program is abstractly interpreted as a system of boolean
equations over *clocks* (sets of instants).  This package provides:

* :mod:`repro.clocks.algebra` -- the clock term language (signal clocks
  ``x̂``, condition samplings ``[C]`` / ``[¬C]``, meet/join/difference and
  the null clock);
* :mod:`repro.clocks.equations` -- extraction of the equation system from a
  kernel program (Table 1 of the paper);
* :mod:`repro.clocks.encoding` -- the BDD encoding of clock formulas;
* :mod:`repro.clocks.tree` -- partition trees, clock trees and the forest of
  clocks (Section 3.4);
* :mod:`repro.clocks.resolution` -- triangularization by arborescent
  resolution: equivalence classes, orientation, fusion and canonical
  (deepest-parent) insertion, free-variable discovery;
* :mod:`repro.clocks.characteristic` -- the characteristic-function
  baseline used in the Figure 13 comparison.
"""

from .algebra import (
    ClockExpr,
    CondFalse,
    CondTrue,
    Diff,
    Join,
    Meet,
    NullClock,
    SignalClock,
    clock_atoms,
)
from .equations import ClockEquation, ClockSystem, extract_clock_system
from .resolution import ClockClass, ClockHierarchy, resolve
from .tree import ClockNode, ClockForest

__all__ = [
    "ClockExpr",
    "CondFalse",
    "CondTrue",
    "Diff",
    "Join",
    "Meet",
    "NullClock",
    "SignalClock",
    "clock_atoms",
    "ClockEquation",
    "ClockSystem",
    "extract_clock_system",
    "ClockClass",
    "ClockHierarchy",
    "resolve",
    "ClockNode",
    "ClockForest",
]
