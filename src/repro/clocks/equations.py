"""Extraction of the system of boolean clock equations (Table 1 of the paper).

Each kernel process contributes an equation over clocks:

=====================================  =============================================
kernel process                         clock equations
=====================================  =============================================
``Y := f(X1, ..., Xn)``                ``ŷ = x̂1 = ... = x̂n``
``ZX := X $ 1``                        ``ẑx = x̂``
``X := U when C``                      ``x̂ = û ∧ [C]``
``X := U default V``                   ``x̂ = û ∨ v̂``
``synchro {X1, ..., Xn}``              ``x̂1 = ... = x̂n``
=====================================  =============================================

plus, for every boolean signal ``C``, the partition constraints::

    [C] ∨ [¬C] = ĉ          [C] ∧ [¬C] = Ô

Constants appearing as kernel operands are clock-neutral and contribute no
constraint (``X := true when C`` yields ``x̂ = [C]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.kernel import (
    KernelDefault,
    KernelDelay,
    KernelFunction,
    KernelProcess,
    KernelProgram,
    KernelSynchro,
    KernelWhen,
    Literal,
    Operand,
)
from ..lang.types import SignalType
from .algebra import (
    ClockExpr,
    CondFalse,
    CondTrue,
    Join,
    Meet,
    NULL_CLOCK,
    SignalClock,
)

__all__ = ["ClockEquation", "ClockSystem", "extract_clock_system"]


@dataclass(frozen=True)
class ClockEquation:
    """An (unoriented) equation ``left = right`` between clock formulas.

    ``origin`` records the kernel process (or the string ``"partition"``)
    the equation was extracted from; it is used for diagnostics only.
    """

    left: ClockExpr
    right: ClockExpr
    origin: str = ""

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass
class ClockSystem:
    """The system of boolean equations underlying a kernel program."""

    program: KernelProgram
    types: Dict[str, SignalType]
    equations: List[ClockEquation] = field(default_factory=list)
    #: boolean signals, i.e. signals for which ``[C]`` / ``[¬C]`` exist
    boolean_signals: List[str] = field(default_factory=list)
    #: signals actually used as a ``when`` condition
    condition_signals: List[str] = field(default_factory=list)

    @property
    def signals(self) -> List[str]:
        return self.program.signals

    def partition_constraints(self) -> List[ClockEquation]:
        """The ``[C] ∨ [¬C] = ĉ`` and ``[C] ∧ [¬C] = Ô`` constraints."""
        return [e for e in self.equations if e.origin == "partition"]

    def operator_equations(self) -> List[ClockEquation]:
        """The equations contributed by the kernel processes themselves."""
        return [e for e in self.equations if e.origin != "partition"]

    def variable_count(self) -> int:
        """Number of boolean variables in the system.

        This is the figure reported in the "number of variables" column of
        Figure 13: one variable per signal clock, plus two per boolean
        signal (its ``[C]`` and ``[¬C]`` samplings).
        """
        return len(self.signals) + 2 * len(self.boolean_signals)

    def __str__(self) -> str:
        lines = [f"clock system of {self.program.name} ({len(self.equations)} equations)"]
        for equation in self.equations:
            lines.append(f"  {equation}")
        return "\n".join(lines)


def _operand_clock(operand: Operand) -> Optional[ClockExpr]:
    """The clock of a kernel operand, or ``None`` for clock-neutral literals."""
    if isinstance(operand, Literal):
        return None
    return SignalClock(operand)


def extract_clock_system(
    program: KernelProgram, types: Dict[str, SignalType]
) -> ClockSystem:
    """Build the system of clock equations for ``program`` (Table 1)."""
    system = ClockSystem(program=program, types=types)

    for name in program.signals:
        if types[name].is_boolean_like and name not in system.boolean_signals:
            system.boolean_signals.append(name)

    def add(left: ClockExpr, right: ClockExpr, origin: str) -> None:
        system.equations.append(ClockEquation(left, right, origin))

    for process in program.processes:
        origin = str(process)
        if isinstance(process, KernelFunction):
            target_clock = SignalClock(process.target)
            for operand in process.operands:
                operand_clock = _operand_clock(operand)
                if operand_clock is not None:
                    add(target_clock, operand_clock, origin)
        elif isinstance(process, KernelDelay):
            add(SignalClock(process.target), SignalClock(process.source), origin)
        elif isinstance(process, KernelWhen):
            if process.condition not in system.condition_signals:
                system.condition_signals.append(process.condition)
            source_clock = _operand_clock(process.source)
            sampling = CondTrue(process.condition)
            if source_clock is None:
                add(SignalClock(process.target), sampling, origin)
            else:
                add(SignalClock(process.target), Meet(source_clock, sampling), origin)
        elif isinstance(process, KernelDefault):
            left_clock = _operand_clock(process.left)
            right_clock = _operand_clock(process.right)
            if left_clock is None or right_clock is None:
                # A constant branch is clock-neutral; the merge clock is then
                # simply the other branch's clock (the desugarer rejects the
                # two-constant case).
                only = left_clock if left_clock is not None else right_clock
                assert only is not None
                add(SignalClock(process.target), only, origin)
            else:
                add(SignalClock(process.target), Join(left_clock, right_clock), origin)
        elif isinstance(process, KernelSynchro):
            if len(process.signals) >= 2:
                first = SignalClock(process.signals[0])
                for other in process.signals[1:]:
                    add(first, SignalClock(other), origin)
        else:  # pragma: no cover - exhaustive over kernel constructors
            raise TypeError(f"unknown kernel process {process!r}")

    # Partition constraints for every boolean signal (Figure 7 partitions all
    # boolean signals of the program, not only the ones used as conditions).
    for name in system.boolean_signals:
        add(
            Join(CondTrue(name), CondFalse(name)),
            SignalClock(name),
            "partition",
        )
        add(
            Meet(CondTrue(name), CondFalse(name)),
            NULL_CLOCK,
            "partition",
        )

    return system
