"""Arborescent resolution of the system of clock equations (Section 3).

The resolution *triangularizes* the system: every clock is either a **free
variable** (the environment must provide its instants) or receives an
oriented definition ``k := k1 <op> k2`` / ``k := partition of its parent``,
such that the clock-to-clock dependency graph is acyclic.  The result is a
:class:`ClockHierarchy` containing

* the clock *equivalence classes* (clocks proved equal are merged),
* a BDD encoding of every class (the canonical form used for rewriting),
* the *forest of clock trees*, where each defined clock sits under its
  deepest admissible parent (the canonical factorization of [1]),
* the list of free classes, and
* the verification obligations that could not be discharged (a non-empty
  list means the program is rejected as temporally incorrect, or at least
  beyond the heuristic, exactly as in the paper).

The algorithm follows the strategy of Section 3.2:

1. equations between two clock variables merge their classes;
2. definitional equations ``k = formula`` are oriented when all the
   operands of ``formula`` are already defined;
3. when no equation can be oriented (a cycle), one class is *assumed free*
   -- this is the rewriting step of Section 3.3 in disguise: the deferred
   equations are then checked for equivalence against the BDD encoding,
   which performs the ``[C1] ∨ ĉ → ĉ``-style inclusion rewriting
   automatically because sampled clocks are encoded as restrictions of
   their parent's encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..bdd import BDD, BDDManager
from ..errors import ClockCalculusError
from .algebra import (
    ClockAtom,
    ClockExpr,
    CondFalse,
    CondTrue,
    Diff,
    Join,
    Meet,
    NullClock,
    SignalClock,
    clock_atoms,
)
from .encoding import ValueEncoder
from .equations import ClockEquation, ClockSystem
from .tree import ClockForest, ClockNode

__all__ = [
    "FreeDefinition",
    "NullDefinition",
    "PartitionDefinition",
    "FormulaDefinition",
    "ClockClass",
    "ClockHierarchy",
    "ArborescentResolver",
    "resolve",
]


# ---------------------------------------------------------------------------
# Definitions attached to clock classes by the triangularization
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FreeDefinition:
    """The class is a free variable: the environment provides its instants."""

    reason: str = "no defining equation"


@dataclass(frozen=True)
class NullDefinition:
    """The class is the null clock ``Ô`` (never present)."""


@dataclass(frozen=True)
class PartitionDefinition:
    """The class is ``[C]`` or ``[¬C]``: its parent's instants where C is true/false."""

    parent_id: int
    condition: str
    polarity: bool


@dataclass(frozen=True)
class FormulaDefinition:
    """The class is defined by a formula over other (already defined) classes."""

    formula: ClockExpr


ClassDefinition = Union[FreeDefinition, NullDefinition, PartitionDefinition, FormulaDefinition]


# ---------------------------------------------------------------------------
# Clock classes
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class ClockClass:
    """An equivalence class of clocks proved equal by the calculus.

    Instances have identity semantics (two distinct objects are never equal),
    which is what the resolution and the backends rely on.
    """

    id: int
    atoms: List[ClockAtom] = field(default_factory=list)
    is_null: bool = False
    definition: Optional[ClassDefinition] = None
    bdd: Optional[BDD] = None
    node: Optional[ClockNode] = None
    assumed_free: bool = False
    #: id of the canonical class this one was merged into (proved equal), if any
    merged_into: Optional[int] = None

    # Definitions gathered from the equations, before orientation.
    partition_candidates: List[Tuple[str, bool]] = field(default_factory=list)
    formula_candidates: List[ClockExpr] = field(default_factory=list)
    #: index of the candidate actually used for placement ("p", i) or ("f", i)
    used_candidate: Optional[Tuple[str, int]] = None

    @property
    def signals(self) -> List[str]:
        """Signals whose clock is this class."""
        return [atom.signal for atom in self.atoms if isinstance(atom, SignalClock)]

    @property
    def is_free(self) -> bool:
        return isinstance(self.definition, FreeDefinition)

    def display_name(self) -> str:
        """A short, stable, human-readable name for the class."""
        if self.is_null:
            return "O"
        signal_atoms = sorted(str(a) for a in self.atoms if isinstance(a, SignalClock))
        if signal_atoms:
            return signal_atoms[0]
        sampled = sorted(str(a) for a in self.atoms)
        if sampled:
            return sampled[0]
        return f"k{self.id}"

    def presence_name(self) -> str:
        """The name of the boolean presence flag used by generated code."""
        base = self.display_name()
        cleaned = (
            base.replace("^", "C_")
            .replace("[~", "NOT_")
            .replace("[", "AT_")
            .replace("]", "")
        )
        return f"h_{cleaned}"

    def __str__(self) -> str:
        members = ", ".join(sorted(str(a) for a in self.atoms))
        return f"{{{members}}}"


# ---------------------------------------------------------------------------
# The result of the resolution
# ---------------------------------------------------------------------------


@dataclass
class UnresolvedConstraint:
    """A constraint the heuristic could not prove."""

    clock_class: ClockClass
    description: str

    def __str__(self) -> str:
        return f"{self.clock_class.display_name()}: {self.description}"


class ClockHierarchy:
    """Triangularized clock system: classes, BDD encodings and the clock forest."""

    def __init__(
        self,
        system: ClockSystem,
        manager: BDDManager,
        classes: List[ClockClass],
        atom_to_class: Dict[ClockAtom, ClockClass],
        forest: ClockForest,
        value_encoder: ValueEncoder,
        placement_order: List[ClockClass],
        unresolved: List[UnresolvedConstraint],
    ):
        self.system = system
        self.manager = manager
        self.classes = classes
        self.forest = forest
        self.value_encoder = value_encoder
        self.placement_order = placement_order
        self.unresolved = unresolved
        self._atom_to_class = atom_to_class

    # -- lookups ------------------------------------------------------------
    def class_of_atom(self, atom: ClockAtom) -> ClockClass:
        try:
            return self._atom_to_class[atom]
        except KeyError:
            raise ClockCalculusError(f"unknown clock {atom}") from None

    def class_of_signal(self, name: str) -> ClockClass:
        return self.class_of_atom(SignalClock(name))

    @property
    def null_class(self) -> Optional[ClockClass]:
        for clock_class in self.classes:
            if clock_class.is_null:
                return clock_class
        return None

    def free_classes(self) -> List[ClockClass]:
        """The free variables exhibited by the triangularization."""
        return [c for c in self.classes if c.is_free]

    def master_class(self) -> Optional[ClockClass]:
        """The unique free class, when there is exactly one (the master clock)."""
        free = [c for c in self.free_classes() if not c.is_null]
        if len(free) == 1:
            return free[0]
        return None

    # -- semantic queries ---------------------------------------------------------
    def encode(self, expression: ClockExpr) -> BDD:
        """Encode an arbitrary clock formula against the resolved classes."""
        if isinstance(expression, NullClock):
            return self.manager.false
        if isinstance(expression, (SignalClock, CondTrue, CondFalse)):
            clock_class = self.class_of_atom(expression)
            if clock_class.bdd is None:
                raise ClockCalculusError(
                    f"clock {expression} was not resolved", None
                )
            return clock_class.bdd
        if isinstance(expression, Meet):
            return self.encode(expression.left) & self.encode(expression.right)
        if isinstance(expression, Join):
            return self.encode(expression.left) | self.encode(expression.right)
        if isinstance(expression, Diff):
            return self.encode(expression.left) - self.encode(expression.right)
        raise ClockCalculusError(f"not a clock expression: {expression!r}")

    def are_synchronous(self, first: str, second: str) -> bool:
        """Whether two signals were proved to have the same clock."""
        return self.encode(SignalClock(first)) == self.encode(SignalClock(second))

    def is_subclock(self, smaller: ClockExpr, larger: ClockExpr) -> bool:
        """Whether ``smaller ⊆ larger`` holds in the resolved system."""
        return self.encode(smaller).implies(self.encode(larger))

    def is_empty(self, expression: ClockExpr) -> bool:
        return self.encode(expression).is_false

    # -- reporting -----------------------------------------------------------------
    @property
    def is_resolved(self) -> bool:
        return not self.unresolved

    def check(self) -> None:
        """Raise if the program is temporally incorrect / beyond the heuristic."""
        if self.unresolved:
            details = "; ".join(str(u) for u in self.unresolved)
            raise ClockCalculusError(
                f"clock calculus could not resolve {len(self.unresolved)} constraint(s): {details}"
            )

    def statistics(self) -> Dict[str, int]:
        """Structural statistics used by the benchmarks (Figure 13 columns).

        ``bdd_nodes`` counts the nodes reachable from this hierarchy's own
        classes and is always per-program; ``bdd_nodes_total`` is the
        manager-wide table size, so on a pooled (service) manager it covers
        every program compiled on the pool.
        """
        bdd_nodes = 0
        seen_refs: Set[int] = set()
        for clock_class in self.classes:
            if clock_class.bdd is not None:
                for ref, _level, _low, _high in self.manager.iter_nodes(clock_class.bdd):
                    seen_refs.add(ref)
        bdd_nodes = len(seen_refs)
        return {
            "classes": len(self.classes),
            "variables": self.system.variable_count(),
            "bdd_nodes": bdd_nodes,
            "bdd_nodes_total": self.manager.num_nodes,
            "trees": self.forest.tree_count(),
            "forest_nodes": self.forest.node_count(),
            "forest_height": self.forest.height(),
            "free_clocks": len(self.free_classes()),
            "unresolved": len(self.unresolved),
        }

    def render_forest(self) -> str:
        return self.forest.render()


# ---------------------------------------------------------------------------
# The resolver
# ---------------------------------------------------------------------------


class _UnionFind:
    """Union-find over hashable keys with deterministic representative choice."""

    def __init__(self) -> None:
        self._parent: Dict[object, object] = {}

    def add(self, key: object) -> None:
        self._parent.setdefault(key, key)

    def find(self, key: object) -> object:
        self.add(key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[key] != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, first: object, second: object) -> None:
        root_first = self.find(first)
        root_second = self.find(second)
        if root_first != root_second:
            self._parent[root_second] = root_first

    def keys(self) -> List[object]:
        return list(self._parent.keys())


class ArborescentResolver:
    """Performs the arborescent resolution of a clock system.

    ``deepest_insertion`` selects the canonical factorization of Figure 12
    (formulas inserted under their *deepest* admissible parent, with fusion
    of trees).  Setting it to ``False`` falls back to a naive insertion
    directly under a root; this is only meant for the insertion-depth
    ablation benchmark.
    """

    def __init__(
        self,
        system: ClockSystem,
        manager: Optional[BDDManager] = None,
        deepest_insertion: bool = True,
    ):
        self.system = system
        self.deepest_insertion = deepest_insertion
        self.manager = manager if manager is not None else BDDManager()
        self.value_encoder = ValueEncoder(self.manager, system.program, system.types)
        self._union = _UnionFind()
        self._classes: List[ClockClass] = []
        self._atom_to_class: Dict[ClockAtom, ClockClass] = {}
        self._placement_order: List[ClockClass] = []
        self._unresolved: List[UnresolvedConstraint] = []

    # -- public entry point ----------------------------------------------------
    def resolve(self) -> ClockHierarchy:
        self._build_classes()
        self._place_classes()
        self._merge_equivalent_classes()
        self._verify_obligations()
        forest = self._build_forest()
        canonical_classes = [c for c in self._classes if c.merged_into is None]
        canonical_order = [c for c in self._placement_order if c.merged_into is None]
        return ClockHierarchy(
            system=self.system,
            manager=self.manager,
            classes=canonical_classes,
            atom_to_class=self._atom_to_class,
            forest=forest,
            value_encoder=self.value_encoder,
            placement_order=canonical_order,
            unresolved=self._unresolved,
        )

    # -- step 1: equivalence classes ----------------------------------------------
    def _is_atom(self, expression: ClockExpr) -> bool:
        return isinstance(expression, (SignalClock, CondTrue, CondFalse, NullClock))

    def _build_classes(self) -> None:
        program = self.system.program

        # Seed the union-find with every clock variable of the system.
        self._union.add(NullClock())
        for name in program.signals:
            self._union.add(SignalClock(name))
        for name in self.system.boolean_signals:
            self._union.add(CondTrue(name))
            self._union.add(CondFalse(name))

        definitional: List[Tuple[ClockAtom, ClockExpr]] = []

        for equation in self.system.equations:
            if equation.origin == "partition":
                # Partition constraints are represented structurally by the
                # encoding ([C] = ĉ ∧ value, [¬C] = ĉ ∧ ¬value).
                continue
            left, right = equation.left, equation.right
            if self._is_atom(left) and self._is_atom(right):
                self._union.union(left, right)
            elif self._is_atom(left):
                definitional.append((left, right))
            elif self._is_atom(right):
                definitional.append((right, left))
            else:  # pragma: no cover - Table 1 never produces this shape
                raise ClockCalculusError(
                    f"unsupported clock equation shape: {equation}"
                )

        # Group atoms into classes.
        representative_to_class: Dict[object, ClockClass] = {}
        for key in self._union.keys():
            representative = self._union.find(key)
            clock_class = representative_to_class.get(representative)
            if clock_class is None:
                clock_class = ClockClass(id=len(self._classes))
                representative_to_class[representative] = clock_class
                self._classes.append(clock_class)
            if isinstance(key, NullClock):
                clock_class.is_null = True
            else:
                clock_class.atoms.append(key)  # type: ignore[arg-type]
                self._atom_to_class[key] = clock_class  # type: ignore[index]

        # Attach candidate definitions to classes.
        for clock_class in self._classes:
            for atom in clock_class.atoms:
                if isinstance(atom, CondTrue):
                    clock_class.partition_candidates.append((atom.signal, True))
                elif isinstance(atom, CondFalse):
                    clock_class.partition_candidates.append((atom.signal, False))

        for atom, formula in definitional:
            clock_class = self._atom_to_class[atom]
            clock_class.formula_candidates.append(formula)

    # -- step 2: placement (orientation of the equations) -----------------------------
    def _class_of_expr_atoms(self, formula: ClockExpr) -> List[ClockClass]:
        return [self._atom_to_class[a] for a in clock_atoms(formula)]

    def _encode_formula(self, formula: ClockExpr) -> BDD:
        if isinstance(formula, NullClock):
            return self.manager.false
        if isinstance(formula, (SignalClock, CondTrue, CondFalse)):
            clock_class = self._atom_to_class[formula]
            assert clock_class.bdd is not None
            return clock_class.bdd
        if isinstance(formula, Meet):
            return self._encode_formula(formula.left) & self._encode_formula(formula.right)
        if isinstance(formula, Join):
            return self._encode_formula(formula.left) | self._encode_formula(formula.right)
        if isinstance(formula, Diff):
            return self._encode_formula(formula.left) - self._encode_formula(formula.right)
        raise ClockCalculusError(f"not a clock formula: {formula!r}")

    def _try_place(self, clock_class: ClockClass) -> bool:
        """Attempt to orient one definition of the class; return True on success."""
        if clock_class.is_null:
            clock_class.definition = NullDefinition()
            clock_class.bdd = self.manager.false
            return True

        # Prefer a partition definition: it yields the natural tree structure.
        for index, (condition, polarity) in enumerate(clock_class.partition_candidates):
            parent_class = self._atom_to_class.get(SignalClock(condition))
            if parent_class is None or parent_class is clock_class:
                continue
            if parent_class.bdd is None:
                continue
            value = self.value_encoder.value_of(condition)
            clock_class.bdd = parent_class.bdd & (value if polarity else ~value)
            clock_class.definition = PartitionDefinition(
                parent_class.id, condition, polarity
            )
            clock_class.used_candidate = ("p", index)
            return True

        for index, formula in enumerate(clock_class.formula_candidates):
            operand_classes = self._class_of_expr_atoms(formula)
            if any(c is clock_class for c in operand_classes):
                continue  # self-referential: cannot be oriented directly
            if any(c.bdd is None for c in operand_classes):
                continue
            clock_class.bdd = self._encode_formula(formula)
            clock_class.definition = FormulaDefinition(formula)
            clock_class.used_candidate = ("f", index)
            return True

        if not clock_class.partition_candidates and not clock_class.formula_candidates:
            # No constraint at all: a free clock (typically an input's clock).
            clock_class.definition = FreeDefinition("no defining equation")
            clock_class.bdd = self.manager.declare(
                f"h_{clock_class.id}_{clock_class.display_name()}"
            )
            return True

        return False

    def _choose_victim(self, unplaced: List[ClockClass]) -> ClockClass:
        """Pick the class to assume free when orientation is stuck on a cycle.

        The preferred victim is a class that can *never* be oriented: all of
        its candidate definitions refer back to the class itself (the
        ``ĉ = [D] ∨ [C1] ∨ ĉ`` situation of Section 3.3 -- typically the
        clock of a state variable).  Assuming it free and then proving the
        deferred equation via the BDD encoding is exactly the paper's
        cycle-breaking rewrite.  Classes that still have a definition merely
        *waiting* on other classes are not picked unless nothing better
        exists (a genuine mutual cycle between distinct clocks).
        """

        def formula_is_self_referential(clock_class: ClockClass, formula) -> bool:
            return any(c is clock_class for c in self._class_of_expr_atoms(formula))

        def partition_is_self_referential(clock_class: ClockClass, condition: str) -> bool:
            parent = self._atom_to_class.get(SignalClock(condition))
            return parent is None or parent is clock_class

        def only_self_referential(clock_class: ClockClass) -> bool:
            has_candidate = False
            for condition, _polarity in clock_class.partition_candidates:
                has_candidate = True
                if not partition_is_self_referential(clock_class, condition):
                    return False
            for formula in clock_class.formula_candidates:
                has_candidate = True
                if not formula_is_self_referential(clock_class, formula):
                    return False
            return has_candidate

        def has_self_referential_formula(clock_class: ClockClass) -> bool:
            return any(
                formula_is_self_referential(clock_class, formula)
                for formula in clock_class.formula_candidates
            )

        ordered = sorted(unplaced, key=lambda c: (c.display_name(), c.id))
        for clock_class in ordered:
            if only_self_referential(clock_class):
                return clock_class
        for clock_class in ordered:
            if has_self_referential_formula(clock_class):
                return clock_class
        for clock_class in ordered:
            if clock_class.formula_candidates:
                return clock_class
        return ordered[0]

    def _place_classes(self) -> None:
        unplaced = [c for c in self._classes]
        # Deterministic processing order keeps the construction canonical.
        unplaced.sort(key=lambda c: (c.display_name(), c.id))

        while unplaced:
            progress = False
            for clock_class in list(unplaced):
                if self._try_place(clock_class):
                    unplaced.remove(clock_class)
                    self._placement_order.append(clock_class)
                    progress = True
            if progress:
                continue
            victim = self._choose_victim(unplaced)
            victim.definition = FreeDefinition("assumed free to break a clock cycle")
            victim.assumed_free = True
            victim.bdd = self.manager.declare(
                f"h_{victim.id}_{victim.display_name()}"
            )
            unplaced.remove(victim)
            self._placement_order.append(victim)

    # -- step 2b: elimination of equivalent variables -----------------------------------
    def _canonical(self, clock_class: ClockClass) -> ClockClass:
        while clock_class.merged_into is not None:
            clock_class = self._classes[clock_class.merged_into]
        return clock_class

    def _merge_equivalent_classes(self) -> None:
        """Merge classes whose encodings are provably equal.

        The paper notes that the triangularized system "has less variables"
        because "some variables may be (and very often are) eliminated due to
        their equivalence with other variables".  With the BDD encoding, two
        clocks are provably equal exactly when their BDDs are the same node,
        so the elimination is a grouping by BDD reference.  The canonical
        representative of a group is its *earliest placed* member: its
        definition can only reference classes placed before it, which are by
        construction outside the group, so the triangular ordering survives
        the merge.
        """
        canonical_by_ref: Dict[int, ClockClass] = {}
        for clock_class in self._placement_order:
            assert clock_class.bdd is not None
            canonical = canonical_by_ref.get(clock_class.bdd.ref)
            if canonical is None:
                canonical_by_ref[clock_class.bdd.ref] = clock_class
                continue
            clock_class.merged_into = canonical.id
            canonical.atoms.extend(clock_class.atoms)
            if clock_class.is_null:
                canonical.is_null = True
            for atom in clock_class.atoms:
                self._atom_to_class[atom] = canonical

    # -- step 3: verification of the deferred equations ---------------------------------
    def _verify_obligations(self) -> None:
        for clock_class in self._classes:
            assert clock_class.bdd is not None
            for index, (condition, polarity) in enumerate(clock_class.partition_candidates):
                if clock_class.used_candidate == ("p", index):
                    continue
                parent_class = self._atom_to_class.get(SignalClock(condition))
                if parent_class is None or parent_class.bdd is None:
                    continue
                value = self.value_encoder.value_of(condition)
                expected = parent_class.bdd & (value if polarity else ~value)
                if expected != clock_class.bdd:
                    sampling = f"[{condition}]" if polarity else f"[~{condition}]"
                    self._unresolved.append(
                        UnresolvedConstraint(
                            clock_class,
                            f"cannot prove {clock_class.display_name()} = {sampling}",
                        )
                    )
            for index, formula in enumerate(clock_class.formula_candidates):
                if clock_class.used_candidate == ("f", index):
                    continue
                operand_classes = self._class_of_expr_atoms(formula)
                if any(c.bdd is None for c in operand_classes):  # pragma: no cover
                    continue
                expected = self._encode_formula(formula)
                if expected != clock_class.bdd:
                    self._unresolved.append(
                        UnresolvedConstraint(
                            clock_class,
                            f"cannot prove {clock_class.display_name()} = {formula}",
                        )
                    )

    # -- step 4: the forest of clock trees -------------------------------------------------
    def _build_forest(self) -> ClockForest:
        forest = ClockForest()

        # Skeleton: free roots and partition children, in placement order so
        # that a partition's parent always has a node already.
        for clock_class in self._placement_order:
            if clock_class.is_null or clock_class.merged_into is not None:
                continue
            definition = clock_class.definition
            if isinstance(definition, FreeDefinition):
                node = ClockNode(clock_class)
                clock_class.node = node
                forest.add_root(node)
            elif isinstance(definition, PartitionDefinition):
                parent_class = self._canonical(self._classes[definition.parent_id])
                node = ClockNode(clock_class)
                clock_class.node = node
                if parent_class.node is None:
                    # The parent is formula-defined and not yet in the forest;
                    # create its node lazily as a provisional root.  It will be
                    # re-attached by the fusion pass below if possible.
                    parent_node = ClockNode(parent_class)
                    parent_class.node = parent_node
                    forest.add_root(parent_node)
                parent_class.node.add_child(node)

        # Formula-defined classes: insert under the deepest admissible parent.
        for clock_class in self._placement_order:
            if (
                clock_class.node is not None
                or clock_class.is_null
                or clock_class.merged_into is not None
            ):
                continue
            if not isinstance(clock_class.definition, FormulaDefinition):
                continue
            node = ClockNode(clock_class)
            clock_class.node = node
            if self.deepest_insertion:
                parent = self._deepest_admissible_parent(forest, clock_class, exclude=node)
            else:
                parent = self._shallowest_admissible_parent(forest, clock_class)
            if parent is None:
                forest.add_root(node)
            else:
                parent.add_child(node)

        if self.deepest_insertion:
            self._fusion_pass(forest)
        else:
            self._naive_attach_pass(forest)
        return forest

    def _shallowest_admissible_parent(
        self, forest: ClockForest, clock_class: ClockClass
    ) -> Optional[ClockNode]:
        """Naive insertion: attach the formula under an including free root."""
        assert clock_class.bdd is not None
        for root in forest.roots:
            if not isinstance(root.clock_class.definition, FreeDefinition):
                continue
            other = root.clock_class.bdd
            if other is not None and clock_class.bdd.implies(other):
                return root
        return None

    def _naive_attach_pass(self, forest: ClockForest) -> None:
        """Hook formula-defined provisional roots directly under a free root.

        This is the non-canonical counterpart of the fusion pass, used only
        by the insertion-depth ablation: subtrees are attached as shallow as
        possible (directly under an including free root) instead of under
        their deepest admissible parent.
        """
        for node in list(forest.roots):
            if not isinstance(node.clock_class.definition, FormulaDefinition):
                continue
            parent = self._shallowest_admissible_parent(forest, node.clock_class)
            if parent is not None and parent is not node:
                forest.roots.remove(node)
                parent.add_child(node)

    def _deepest_admissible_parent(
        self,
        forest: ClockForest,
        clock_class: ClockClass,
        exclude: Optional[ClockNode] = None,
    ) -> Optional[ClockNode]:
        """The deepest node whose clock includes ``clock_class`` (Figure 12)."""
        assert clock_class.bdd is not None
        best: Optional[ClockNode] = None
        best_depth = -1
        for node in forest.iter_nodes():
            if exclude is not None and exclude.is_ancestor_of(node):
                continue
            if node.clock_class is clock_class:
                continue
            other = node.clock_class.bdd
            if other is None:
                continue
            if clock_class.bdd.implies(other):
                depth = node.depth
                if depth > best_depth:
                    best = node
                    best_depth = depth
        return best

    def _fusion_pass(self, forest: ClockForest) -> None:
        """Re-attach formula-defined subtrees under deeper admissible parents.

        This realizes the *fusion of clock trees* (Figure 8) together with the
        canonical deepest-parent insertion (Figure 12): the loop runs until no
        subtree can be moved any deeper, which terminates because every move
        strictly increases the depth of the moved node.
        """
        moved = True
        guard = 0
        while moved:
            moved = False
            guard += 1
            if guard > 10 * max(1, forest.node_count()):  # pragma: no cover - safety net
                break
            for node in list(forest.iter_nodes()):
                if not isinstance(node.clock_class.definition, FormulaDefinition):
                    continue
                best = self._deepest_admissible_parent(
                    forest, node.clock_class, exclude=node
                )
                if best is None:
                    continue
                current_depth = node.parent.depth if node.parent is not None else -1
                if best.depth > current_depth and not node.is_ancestor_of(best):
                    # Detach and re-attach (the subtree moves with the node).
                    if node.parent is not None:
                        node.parent.children.remove(node)
                        node.parent = None
                    else:
                        forest.roots.remove(node)
                    best.add_child(node)
                    moved = True


def resolve(
    system: ClockSystem,
    manager: Optional[BDDManager] = None,
    deepest_insertion: bool = True,
) -> ClockHierarchy:
    """Triangularize ``system`` and build its clock hierarchy."""
    return ArborescentResolver(
        system, manager, deepest_insertion=deepest_insertion
    ).resolve()
