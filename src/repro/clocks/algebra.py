"""The clock term language.

Clocks are sets of instants.  Following the paper's notation:

* ``x̂`` (written :class:`SignalClock`) is the clock of signal ``X`` -- the
  set of instants at which ``X`` is present;
* ``[C]`` (:class:`CondTrue`) is the set of instants at which the boolean
  signal ``C`` is present *and* carries ``true``;
* ``[¬C]`` (:class:`CondFalse`) is the set of instants at which ``C`` is
  present and carries ``false``;
* ``Ô`` (:class:`NullClock`) is the empty set of instants;
* clocks are combined with ``∧`` (:class:`Meet`, set intersection),
  ``∨`` (:class:`Join`, union) and ``\\`` (:class:`Diff`, difference).

The pair ``([C], [¬C])`` is always a partition of ``ĉ``::

    [C] ∨ [¬C] = ĉ          [C] ∧ [¬C] = Ô
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Tuple, Union

__all__ = [
    "ClockExpr",
    "SignalClock",
    "CondTrue",
    "CondFalse",
    "NullClock",
    "NULL_CLOCK",
    "Meet",
    "Join",
    "Diff",
    "ClockAtom",
    "clock_atoms",
    "clock_signals",
    "meet_all",
    "join_all",
]


class ClockExpr:
    """Base class of clock expressions."""

    def __and__(self, other: "ClockExpr") -> "ClockExpr":
        return Meet(self, other)

    def __or__(self, other: "ClockExpr") -> "ClockExpr":
        return Join(self, other)

    def __sub__(self, other: "ClockExpr") -> "ClockExpr":
        return Diff(self, other)


@dataclass(frozen=True)
class SignalClock(ClockExpr):
    """``x̂`` -- the clock of the signal named ``signal``."""

    signal: str

    def __str__(self) -> str:
        return f"^{self.signal}"


@dataclass(frozen=True)
class CondTrue(ClockExpr):
    """``[C]`` -- instants where the boolean signal ``C`` is present and true."""

    signal: str

    def __str__(self) -> str:
        return f"[{self.signal}]"


@dataclass(frozen=True)
class CondFalse(ClockExpr):
    """``[¬C]`` -- instants where the boolean signal ``C`` is present and false."""

    signal: str

    def __str__(self) -> str:
        return f"[~{self.signal}]"


@dataclass(frozen=True)
class NullClock(ClockExpr):
    """``Ô`` -- the empty set of instants."""

    def __str__(self) -> str:
        return "O"


#: The unique null clock value (the class is a frozen dataclass, so all
#: instances compare equal; this constant is provided for readability).
NULL_CLOCK = NullClock()


@dataclass(frozen=True)
class Meet(ClockExpr):
    """Intersection of two clocks (``∧`` in the paper)."""

    left: ClockExpr
    right: ClockExpr

    def __str__(self) -> str:
        return f"({self.left} ^ {self.right})"


@dataclass(frozen=True)
class Join(ClockExpr):
    """Union of two clocks (``∨`` in the paper)."""

    left: ClockExpr
    right: ClockExpr

    def __str__(self) -> str:
        return f"({self.left} v {self.right})"


@dataclass(frozen=True)
class Diff(ClockExpr):
    """Set difference of two clocks (``\\`` in the paper)."""

    left: ClockExpr
    right: ClockExpr

    def __str__(self) -> str:
        return f"({self.left} \\ {self.right})"


#: The atomic (variable-like) clock expressions.
ClockAtom = Union[SignalClock, CondTrue, CondFalse]


def clock_atoms(expression: ClockExpr) -> Tuple[ClockAtom, ...]:
    """All atomic sub-clocks of ``expression``, left to right, with duplicates removed."""
    atoms = []
    seen = set()

    def walk(expr: ClockExpr) -> None:
        if isinstance(expr, (SignalClock, CondTrue, CondFalse)):
            if expr not in seen:
                seen.add(expr)
                atoms.append(expr)
        elif isinstance(expr, (Meet, Join, Diff)):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, NullClock):
            return
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a clock expression: {expr!r}")

    walk(expression)
    return tuple(atoms)


def clock_signals(expression: ClockExpr) -> FrozenSet[str]:
    """The names of all signals mentioned by ``expression``."""
    return frozenset(atom.signal for atom in clock_atoms(expression))


def meet_all(clocks: Tuple[ClockExpr, ...]) -> ClockExpr:
    """Left-associated intersection of a non-empty tuple of clocks."""
    if not clocks:
        raise ValueError("meet_all requires at least one clock")
    result = clocks[0]
    for clock in clocks[1:]:
        result = Meet(result, clock)
    return result


def join_all(clocks: Tuple[ClockExpr, ...]) -> ClockExpr:
    """Left-associated union of a non-empty tuple of clocks."""
    if not clocks:
        raise ValueError("join_all requires at least one clock")
    result = clocks[0]
    for clock in clocks[1:]:
        result = Join(result, clock)
    return result
