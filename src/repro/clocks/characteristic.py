"""Characteristic-function representations of the clock equation system.

Figure 13 of the paper compares three ways of handling the system of boolean
equations:

1. **T&BDD** -- the arborescent resolution of :mod:`repro.clocks.resolution`
   (a tree of clocks whose formulas are kept in BDD canonical form);
2. **BDD characteristic function** -- the whole system of equations over the
   ``n`` clock variables is viewed as a subset of ``{0,1}^n`` and
   represented by a single BDD (the conjunction of ``lhs <-> rhs`` over all
   equations);
3. **BDD characteristic function after T&BDD** -- the characteristic
   function of the *triangularized* system, in which equivalent variables
   have been eliminated.

The paper's point is that representation 2 blows up (``unable-cpu`` /
``unable-mem`` within the 40 min / 200 MB limits of their SPARC 10) while
1 and 3 stay small.  This module provides resource-limited builders for
representations 2 and 3 so the comparison can be regenerated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bdd import BDD, BDDManager
from ..errors import ResourceLimitExceeded
from .algebra import (
    ClockExpr,
    CondFalse,
    CondTrue,
    Diff,
    Join,
    Meet,
    NullClock,
    SignalClock,
)
from .equations import ClockSystem
from .resolution import (
    ClockHierarchy,
    FormulaDefinition,
    FreeDefinition,
    NullDefinition,
    PartitionDefinition,
)

__all__ = [
    "CharacteristicResult",
    "build_characteristic_function",
    "build_characteristic_after_tree",
    "solution_count",
]


@dataclass
class CharacteristicResult:
    """Outcome of building a characteristic function under resource limits.

    ``status`` is ``"ok"`` when the construction completed, ``"unable-mem"``
    when the BDD node budget was exhausted and ``"unable-cpu"`` when the time
    limit was exceeded -- mirroring the ``unable-mem`` / ``unable-cpu``
    entries of Figure 13.
    """

    status: str
    variables: int
    nodes: int
    elapsed_seconds: float
    bdd: Optional[BDD] = None
    manager: Optional[BDDManager] = None

    @property
    def completed(self) -> bool:
        return self.status == "ok"

    def cell(self) -> str:
        """The pair of cells (nodes, time) as printed in Figure 13."""
        if not self.completed:
            return self.status
        return f"{self.nodes} nodes / {self.elapsed_seconds:.2f}s"


class _Deadline:
    """Cooperative time limit checked between BDD operations."""

    def __init__(self, limit_seconds: Optional[float]):
        self.limit = limit_seconds
        self.start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self.start

    def check(self) -> None:
        if self.limit is not None and self.elapsed() > self.limit:
            raise ResourceLimitExceeded(
                f"time limit of {self.limit}s exceeded", kind="cpu"
            )


def _atom_variable(manager: BDDManager, atom) -> BDD:
    return manager.declare(f"x_{atom}")


def _encode_flat(manager: BDDManager, expression: ClockExpr) -> BDD:
    """Encode a clock formula with one independent variable per clock atom."""
    if isinstance(expression, NullClock):
        return manager.false
    if isinstance(expression, (SignalClock, CondTrue, CondFalse)):
        return _atom_variable(manager, expression)
    if isinstance(expression, Meet):
        return _encode_flat(manager, expression.left) & _encode_flat(manager, expression.right)
    if isinstance(expression, Join):
        return _encode_flat(manager, expression.left) | _encode_flat(manager, expression.right)
    if isinstance(expression, Diff):
        return _encode_flat(manager, expression.left) - _encode_flat(manager, expression.right)
    raise TypeError(f"not a clock expression: {expression!r}")


def build_characteristic_function(
    system: ClockSystem,
    max_nodes: Optional[int] = None,
    time_limit: Optional[float] = None,
    manager: Optional[BDDManager] = None,
) -> CharacteristicResult:
    """Representation 2: one BDD for the whole (untriangularized) system.

    Every clock atom (``x̂``, ``[C]``, ``[¬C]``) becomes an independent BDD
    variable; the characteristic function is the conjunction of
    ``lhs <-> rhs`` over all equations, including the partition constraints.
    """
    manager = manager if manager is not None else BDDManager(max_nodes=max_nodes)
    if max_nodes is not None:
        manager.max_nodes = max_nodes
    deadline = _Deadline(time_limit)

    characteristic = manager.true
    try:
        # Declare variables in a deterministic order, keeping each signal's
        # clock adjacent to its two samplings (a reasonable static ordering --
        # the kind of care the original experiments would have taken with the
        # Berkeley package, which the comparison should not be biased against).
        boolean_signals = set(system.boolean_signals)
        for name in system.program.signals:
            _atom_variable(manager, SignalClock(name))
            if name in boolean_signals:
                _atom_variable(manager, CondTrue(name))
                _atom_variable(manager, CondFalse(name))
        for equation in system.equations:
            deadline.check()
            left = _encode_flat(manager, equation.left)
            right = _encode_flat(manager, equation.right)
            characteristic = characteristic & left.equiv(right)
    except ResourceLimitExceeded as limit_error:
        status = "unable-mem" if limit_error.kind == "mem" else "unable-cpu"
        return CharacteristicResult(
            status=status,
            variables=manager.num_vars,
            nodes=manager.num_nodes,
            elapsed_seconds=deadline.elapsed(),
            bdd=None,
            manager=manager,
        )

    return CharacteristicResult(
        status="ok",
        variables=manager.num_vars,
        nodes=characteristic.node_count(),
        elapsed_seconds=deadline.elapsed(),
        bdd=characteristic,
        manager=manager,
    )


def build_characteristic_after_tree(
    hierarchy: ClockHierarchy,
    max_nodes: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> CharacteristicResult:
    """Representation 3: characteristic function of the triangularized system.

    The variables are the *canonical clock classes* (equivalent clocks have
    been eliminated by the resolution) plus one variable per opaque condition
    value; the equations are the oriented definitions carried by the clock
    tree (partition children and formula nodes).
    """
    manager = BDDManager(max_nodes=max_nodes)
    deadline = _Deadline(time_limit)

    value_variable: Dict[str, BDD] = {}

    def value_of(signal: str) -> BDD:
        if signal not in value_variable:
            value_variable[signal] = manager.declare(f"v_{signal}")
        return value_variable[signal]

    # Declare the class variables along a depth-first traversal of the clock
    # forest, interleaving each partition's condition-value variable just
    # before its children: the constraints ``k_child <-> k_parent & v_cond``
    # then only relate adjacent variables, which keeps the BDD of the
    # triangularized system small (this is the representation the paper
    # reports as tractable for the smaller programs).
    class_variable: Dict[int, BDD] = {}
    ordered_classes = []
    for node in hierarchy.forest.iter_nodes():
        ordered_classes.append(node.clock_class)
    for clock_class in hierarchy.classes:
        if clock_class not in ordered_classes:
            ordered_classes.append(clock_class)

    def encode_formula(expression: ClockExpr) -> BDD:
        if isinstance(expression, NullClock):
            return manager.false
        if isinstance(expression, (SignalClock, CondTrue, CondFalse)):
            return class_variable[hierarchy.class_of_atom(expression).id]
        if isinstance(expression, Meet):
            return encode_formula(expression.left) & encode_formula(expression.right)
        if isinstance(expression, Join):
            return encode_formula(expression.left) | encode_formula(expression.right)
        if isinstance(expression, Diff):
            return encode_formula(expression.left) - encode_formula(expression.right)
        raise TypeError(f"not a clock expression: {expression!r}")

    characteristic = manager.true
    try:
        for clock_class in ordered_classes:
            class_variable.setdefault(
                clock_class.id, manager.declare(f"k_{clock_class.id}")
            )
            definition = clock_class.definition
            if isinstance(definition, PartitionDefinition):
                value_of(definition.condition)
        for clock_class in ordered_classes:
            deadline.check()
            variable = class_variable[clock_class.id]
            definition = clock_class.definition
            if isinstance(definition, NullDefinition):
                characteristic = characteristic & variable.equiv(manager.false)
            elif isinstance(definition, FreeDefinition):
                continue  # free variables are unconstrained
            elif isinstance(definition, PartitionDefinition):
                parent = class_variable.get(definition.parent_id)
                if parent is None:
                    parent = class_variable[
                        hierarchy.class_of_signal(definition.condition).id
                    ]
                value = value_of(definition.condition)
                sampled = parent & (value if definition.polarity else ~value)
                characteristic = characteristic & variable.equiv(sampled)
            elif isinstance(definition, FormulaDefinition):
                characteristic = characteristic & variable.equiv(
                    encode_formula(definition.formula)
                )
    except ResourceLimitExceeded as limit_error:
        status = "unable-mem" if limit_error.kind == "mem" else "unable-cpu"
        return CharacteristicResult(
            status=status,
            variables=manager.num_vars,
            nodes=manager.num_nodes,
            elapsed_seconds=deadline.elapsed(),
            bdd=None,
            manager=manager,
        )

    return CharacteristicResult(
        status="ok",
        variables=manager.num_vars,
        nodes=characteristic.node_count(),
        elapsed_seconds=deadline.elapsed(),
        bdd=characteristic,
        manager=manager,
    )


def solution_count(result: CharacteristicResult) -> int:
    """Number of clock configurations allowed by a characteristic function.

    This is the complete-resolution query the paper alludes to ("a complete
    algorithm which runs polynomially in the size of this BDD"): counting or
    enumerating the admissible presence/absence combinations.
    """
    if not result.completed or result.bdd is None or result.manager is None:
        raise ValueError("the characteristic function was not completed")
    return result.bdd.satisfy_count(result.manager.num_vars)
