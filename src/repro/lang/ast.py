"""Abstract syntax of the SIGNAL surface language.

The surface language implemented here is the subset used throughout the
paper: typed signal declarations, equations built from functional operators,
the delay operator ``$ ... init``, ``when``, ``default``, the derived
operators ``event``, unary ``when``, ``cell`` and the ``synchro`` constraint,
composed with ``(| ... |)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import SourceLocation

__all__ = [
    "Expression",
    "Constant",
    "SignalRef",
    "UnaryOp",
    "BinaryOp",
    "When",
    "UnaryWhen",
    "Default",
    "Delay",
    "EventOf",
    "Cell",
    "Equation",
    "Synchro",
    "Statement",
    "SignalDeclaration",
    "Process",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expression:
    """Base class of SIGNAL expressions."""

    def free_signals(self) -> Tuple[str, ...]:
        """Names of the signals referenced by this expression, in order."""
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(Expression):
    """A literal constant (boolean, integer or real).

    Constants are clock-neutral: they adapt to the clock of the expression
    they appear in, so they contribute no clock constraint.
    """

    value: Union[bool, int, float]
    location: Optional[SourceLocation] = field(default=None, compare=False)

    def free_signals(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


@dataclass(frozen=True)
class SignalRef(Expression):
    """A reference to a declared signal."""

    name: str
    location: Optional[SourceLocation] = field(default=None, compare=False)

    def free_signals(self) -> Tuple[str, ...]:
        return (self.name,)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary functional operator: ``not`` or arithmetic negation."""

    operator: str
    operand: Expression
    location: Optional[SourceLocation] = field(default=None, compare=False)

    def free_signals(self) -> Tuple[str, ...]:
        return self.operand.free_signals()

    def __str__(self) -> str:
        return f"({self.operator} {self.operand})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary functional operator (arithmetic, relational or boolean)."""

    operator: str
    left: Expression
    right: Expression
    location: Optional[SourceLocation] = field(default=None, compare=False)

    def free_signals(self) -> Tuple[str, ...]:
        return self.left.free_signals() + self.right.free_signals()

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


@dataclass(frozen=True)
class When(Expression):
    """Downsampling: ``expr when condition``."""

    expression: Expression
    condition: Expression
    location: Optional[SourceLocation] = field(default=None, compare=False)

    def free_signals(self) -> Tuple[str, ...]:
        return self.expression.free_signals() + self.condition.free_signals()

    def __str__(self) -> str:
        return f"({self.expression} when {self.condition})"


@dataclass(frozen=True)
class UnaryWhen(Expression):
    """The derived unary ``when C``, shorthand for ``C when C``."""

    condition: Expression
    location: Optional[SourceLocation] = field(default=None, compare=False)

    def free_signals(self) -> Tuple[str, ...]:
        return self.condition.free_signals()

    def __str__(self) -> str:
        return f"(when {self.condition})"


@dataclass(frozen=True)
class Default(Expression):
    """Deterministic merge: ``left default right`` (priority to ``left``)."""

    left: Expression
    right: Expression
    location: Optional[SourceLocation] = field(default=None, compare=False)

    def free_signals(self) -> Tuple[str, ...]:
        return self.left.free_signals() + self.right.free_signals()

    def __str__(self) -> str:
        return f"({self.left} default {self.right})"


@dataclass(frozen=True)
class Delay(Expression):
    """Reference to past values: ``expr $ depth init value``."""

    expression: Expression
    depth: int = 1
    initial: Optional[Constant] = None
    location: Optional[SourceLocation] = field(default=None, compare=False)

    def free_signals(self) -> Tuple[str, ...]:
        return self.expression.free_signals()

    def __str__(self) -> str:
        init = f" init {self.initial}" if self.initial is not None else ""
        return f"({self.expression} $ {self.depth}{init})"


@dataclass(frozen=True)
class EventOf(Expression):
    """The derived operator ``event X``: true whenever X is present."""

    expression: Expression
    location: Optional[SourceLocation] = field(default=None, compare=False)

    def free_signals(self) -> Tuple[str, ...]:
        return self.expression.free_signals()

    def __str__(self) -> str:
        return f"(event {self.expression})"


@dataclass(frozen=True)
class Cell(Expression):
    """The derived operator ``X cell C init v``.

    The result is present whenever ``X`` is present or ``C`` is true, and
    holds the last value of ``X`` (or ``v`` before the first occurrence).
    It desugars to a delay/default/when combination.
    """

    expression: Expression
    condition: Expression
    initial: Constant
    location: Optional[SourceLocation] = field(default=None, compare=False)

    def free_signals(self) -> Tuple[str, ...]:
        return self.expression.free_signals() + self.condition.free_signals()

    def __str__(self) -> str:
        return f"({self.expression} cell {self.condition} init {self.initial})"


# ---------------------------------------------------------------------------
# Statements (elementary processes)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Equation:
    """A defining equation ``target := expression [at location]``."""

    target: str
    expression: Expression
    location: Optional[SourceLocation] = field(default=None, compare=False)
    #: optional distribution annotation: the location this equation (and its
    #: target signal) is pinned to, e.g. ``X := E at edge``
    at_location: Optional[str] = None

    def __str__(self) -> str:
        suffix = f" at {self.at_location}" if self.at_location else ""
        return f"{self.target} := {self.expression}{suffix}"


@dataclass(frozen=True)
class Synchro:
    """The clock constraint ``synchro {e1, ..., en}``."""

    expressions: Tuple[Expression, ...]
    location: Optional[SourceLocation] = field(default=None, compare=False)

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.expressions)
        return f"synchro {{{inner}}}"


Statement = Union[Equation, Synchro]


# ---------------------------------------------------------------------------
# Declarations and processes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SignalDeclaration:
    """A typed signal declaration, e.g. ``boolean BRAKE`` or ``boolean BRAKE at edge``."""

    name: str
    type_name: str
    location: Optional[SourceLocation] = field(default=None, compare=False)
    #: optional distribution annotation: the location this signal is pinned to
    at_location: Optional[str] = None

    def __str__(self) -> str:
        suffix = f" at {self.at_location}" if self.at_location else ""
        return f"{self.type_name} {self.name}{suffix}"


@dataclass
class Process:
    """A SIGNAL process: interface, body and local declarations."""

    name: str
    inputs: List[SignalDeclaration] = field(default_factory=list)
    outputs: List[SignalDeclaration] = field(default_factory=list)
    locals: List[SignalDeclaration] = field(default_factory=list)
    statements: List[Statement] = field(default_factory=list)

    def declared_signals(self) -> List[SignalDeclaration]:
        """All declarations, inputs then outputs then locals."""
        return list(self.inputs) + list(self.outputs) + list(self.locals)

    def declaration_of(self, name: str) -> Optional[SignalDeclaration]:
        for declaration in self.declared_signals():
            if declaration.name == name:
                return declaration
        return None

    def input_names(self) -> List[str]:
        return [d.name for d in self.inputs]

    def output_names(self) -> List[str]:
        return [d.name for d in self.outputs]

    def local_names(self) -> List[str]:
        return [d.name for d in self.locals]

    def __str__(self) -> str:
        lines = [f"process {self.name} ="]
        lines.append("  ( ? " + "; ".join(str(d) for d in self.inputs) + ";")
        lines.append("    ! " + "; ".join(str(d) for d in self.outputs) + "; )")
        lines.append("  (| " + "\n   | ".join(str(s) for s in self.statements) + "\n   |)")
        if self.locals:
            lines.append("  where " + "; ".join(str(d) for d in self.locals) + ";")
        lines.append("end;")
        return "\n".join(lines)
