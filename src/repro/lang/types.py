"""Signal types and type inference over kernel programs.

SIGNAL signals are typed streams.  The reproduction supports the types used
by the paper's examples: ``event`` (pure clock signals, always carrying
``true``), ``boolean``, ``integer`` and ``real``.  Type inference runs on the
kernel form (after desugaring) and propagates declared types through the
kernel operators to the compiler-introduced intermediate signals.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Optional, Union

from ..errors import TypeError_

__all__ = ["SignalType", "infer_types", "unify", "type_of_constant", "default_value"]


class SignalType(enum.Enum):
    """The scalar type of a signal's values."""

    EVENT = "event"
    BOOLEAN = "boolean"
    INTEGER = "integer"
    REAL = "real"

    def __str__(self) -> str:
        return self.value

    @property
    def is_boolean_like(self) -> bool:
        return self in (SignalType.EVENT, SignalType.BOOLEAN)

    @property
    def is_numeric(self) -> bool:
        return self in (SignalType.INTEGER, SignalType.REAL)


_NAME_TO_TYPE = {t.value: t for t in SignalType}


def parse_type_name(name: str) -> SignalType:
    """Map a declaration keyword (``boolean``, ``integer``, ...) to a type."""
    try:
        return _NAME_TO_TYPE[name]
    except KeyError:
        raise TypeError_(f"unknown type name {name!r}") from None


def type_of_constant(value: Union[bool, int, float]) -> SignalType:
    """The intrinsic type of a literal constant."""
    if isinstance(value, bool):
        return SignalType.BOOLEAN
    if isinstance(value, int):
        return SignalType.INTEGER
    if isinstance(value, float):
        return SignalType.REAL
    raise TypeError_(f"unsupported constant {value!r}")


def default_value(signal_type: SignalType) -> Union[bool, int, float]:
    """The value used to initialize an uninitialized delay of the given type."""
    if signal_type.is_boolean_like:
        return False
    if signal_type is SignalType.INTEGER:
        return 0
    return 0.0


def unify(left: Optional[SignalType], right: Optional[SignalType]) -> Optional[SignalType]:
    """Least upper bound of two (possibly unknown) types.

    ``event`` is treated as a boolean that is constantly true, and integers
    promote to reals, following the SIGNAL reference semantics.  Returns
    ``None`` when both inputs are unknown; raises when the types clash.
    """
    if left is None:
        return right
    if right is None:
        return left
    if left == right:
        return left
    boolean_like = {SignalType.EVENT, SignalType.BOOLEAN}
    if left in boolean_like and right in boolean_like:
        return SignalType.BOOLEAN
    numeric = {SignalType.INTEGER, SignalType.REAL}
    if left in numeric and right in numeric:
        return SignalType.REAL
    raise TypeError_(f"cannot unify types {left} and {right}")


_BOOLEAN_OPERATORS = {"and", "or", "xor", "not"}
_RELATIONAL_OPERATORS = {"=", "/=", "<", "<=", ">", ">="}
_ARITHMETIC_OPERATORS = {"+", "-", "*", "/", "modulo"}


def infer_types(program: "KernelProgram") -> Dict[str, SignalType]:  # noqa: F821
    """Infer a type for every signal of a kernel program.

    Declared types seed the analysis; the kernel equations propagate them to
    the intermediate signals introduced by desugaring.  The result maps every
    signal name to its type.  Signals whose type cannot be determined (e.g. a
    completely unconstrained local) are rejected.
    """
    # Imported here to avoid a circular module dependency: kernel.py imports
    # nothing from this module at import time.
    from .kernel import (
        KernelDefault,
        KernelDelay,
        KernelFunction,
        KernelSynchro,
        KernelWhen,
        Literal,
    )

    types: Dict[str, Optional[SignalType]] = {
        name: parse_type_name(type_name) if type_name else None
        for name, type_name in program.declared_types.items()
    }

    def get(name: str) -> Optional[SignalType]:
        return types.get(name)

    def put(name: str, new_type: Optional[SignalType]) -> bool:
        if new_type is None:
            return False
        merged = unify(types.get(name), new_type)
        if merged != types.get(name):
            types[name] = merged
            return True
        return False

    def operand_type(operand) -> Optional[SignalType]:
        if isinstance(operand, Literal):
            return type_of_constant(operand.value)
        return get(operand)

    changed = True
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > 10 * (len(types) + len(program.processes) + 1):
            raise TypeError_("type inference did not converge")
        for process in program.processes:
            if isinstance(process, KernelFunction):
                operator = process.operator
                argument_types = [operand_type(op) for op in process.operands]
                if operator in _BOOLEAN_OPERATORS:
                    changed |= put(process.target, SignalType.BOOLEAN)
                    for operand in process.operands:
                        if not isinstance(operand, Literal):
                            changed |= put(operand, SignalType.BOOLEAN)
                elif operator in _RELATIONAL_OPERATORS:
                    changed |= put(process.target, SignalType.BOOLEAN)
                elif operator in _ARITHMETIC_OPERATORS:
                    known = [t for t in argument_types if t is not None]
                    merged: Optional[SignalType] = None
                    for t in known:
                        merged = unify(merged, t)
                    changed |= put(process.target, merged)
                    for operand in process.operands:
                        if not isinstance(operand, Literal) and merged is not None:
                            changed |= put(operand, merged)
                elif operator == "event":
                    changed |= put(process.target, SignalType.EVENT)
                elif operator == "id":
                    changed |= put(process.target, argument_types[0])
                    source = process.operands[0]
                    if not isinstance(source, Literal):
                        changed |= put(source, get(process.target))
                else:
                    raise TypeError_(f"unknown kernel operator {operator!r}")
            elif isinstance(process, KernelDelay):
                changed |= put(process.target, get(process.source))
                changed |= put(process.source, get(process.target))
            elif isinstance(process, KernelWhen):
                changed |= put(process.condition, SignalType.BOOLEAN)
                changed |= put(process.target, operand_type(process.source))
                if not isinstance(process.source, Literal):
                    changed |= put(process.source, get(process.target))
            elif isinstance(process, KernelDefault):
                merged = unify(
                    unify(get(process.target), operand_type(process.left)),
                    operand_type(process.right),
                )
                changed |= put(process.target, merged)
                if not isinstance(process.left, Literal):
                    changed |= put(process.left, merged)
                if not isinstance(process.right, Literal):
                    changed |= put(process.right, merged)
            elif isinstance(process, KernelSynchro):
                # synchro constrains clocks only, not value types.
                continue

    resolved: Dict[str, SignalType] = {}
    for name, signal_type in types.items():
        if signal_type is None:
            raise TypeError_(f"could not infer a type for signal {name!r}")
        resolved[name] = signal_type
    return resolved
