"""Tokenizer for the SIGNAL surface syntax.

The token stream is deliberately simple: keywords, identifiers, numeric and
boolean literals, operators and punctuation.  Comments follow the SIGNAL
convention of ``%`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

from ..errors import LexerError, SourceLocation

__all__ = ["Token", "tokenize", "KEYWORDS"]


KEYWORDS = frozenset(
    {
        "process",
        "end",
        "where",
        "when",
        "default",
        "init",
        "event",
        "cell",
        "synchro",
        "not",
        "and",
        "or",
        "xor",
        "modulo",
        "true",
        "false",
        "boolean",
        "integer",
        "real",
        "at",
    }
)

# Multi-character operators must be listed before their prefixes.
_OPERATORS = [
    ":=",
    "/=",
    "<=",
    ">=",
    "(|",
    "|)",
    "(",
    ")",
    "{",
    "}",
    "|",
    ";",
    ",",
    "?",
    "!",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "$",
]


@dataclass(frozen=True)
class Token:
    """A lexical token with its kind, text, literal value and position."""

    kind: str  # "keyword" | "identifier" | "integer" | "real" | "operator" | "eof"
    text: str
    location: SourceLocation
    value: Optional[Union[int, float, bool]] = None

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_operator(self, symbol: str) -> bool:
        return self.kind == "operator" and self.text == symbol

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize(source: str, filename: str = "<signal>") -> List[Token]:
    """Tokenize ``source`` into a list of tokens terminated by an EOF token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def location() -> SourceLocation:
        return SourceLocation(line=line, column=column, filename=filename)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = source[index]

        # Whitespace.
        if char in " \t\r\n":
            advance(1)
            continue

        # Comments: '%' to end of line.
        if char == "%":
            while index < length and source[index] != "\n":
                advance(1)
            continue

        start_location = location()

        # Identifiers and keywords.
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                advance(1)
            text = source[start:index]
            lowered = text.lower()
            if lowered in KEYWORDS:
                if lowered in ("true", "false"):
                    tokens.append(
                        Token("keyword", lowered, start_location, value=(lowered == "true"))
                    )
                else:
                    tokens.append(Token("keyword", lowered, start_location))
            else:
                tokens.append(Token("identifier", text, start_location))
            continue

        # Numeric literals (integer or real).
        if char.isdigit():
            start = index
            is_real = False
            while index < length and source[index].isdigit():
                advance(1)
            if (
                index + 1 < length
                and source[index] == "."
                and source[index + 1].isdigit()
            ):
                is_real = True
                advance(1)
                while index < length and source[index].isdigit():
                    advance(1)
            text = source[start:index]
            if is_real:
                tokens.append(Token("real", text, start_location, value=float(text)))
            else:
                tokens.append(Token("integer", text, start_location, value=int(text)))
            continue

        # Operators and punctuation.
        matched = False
        for operator in _OPERATORS:
            if source.startswith(operator, index):
                advance(len(operator))
                tokens.append(Token("operator", operator, start_location))
                matched = True
                break
        if matched:
            continue

        raise LexerError(f"unexpected character {char!r}", start_location)

    tokens.append(Token("eof", "", location()))
    return tokens
