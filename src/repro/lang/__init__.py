"""SIGNAL language frontend.

The frontend turns SIGNAL source text into *kernel processes*, the five
primitive constructs the paper's clock calculus is defined on:

* functional expressions         ``Y := f(X1, ..., Xn)``
* reference to past values       ``ZX := X $ 1 init v0``
* downsampling                   ``X := U when C``
* deterministic merge            ``X := U default V``
* composition                    ``(| P | Q |)``

The extended language (``event``, unary ``when``, ``synchro``, ``cell``,
nested expressions) is desugared by :mod:`repro.lang.kernel`.
"""

from .ast import (
    BinaryOp,
    Cell,
    Constant,
    Default,
    Delay,
    Equation,
    EventOf,
    Expression,
    Process,
    SignalDeclaration,
    SignalRef,
    Synchro,
    UnaryOp,
    UnaryWhen,
    When,
)
from .kernel import (
    KernelDefault,
    KernelDelay,
    KernelFunction,
    KernelProcess,
    KernelProgram,
    KernelSynchro,
    KernelWhen,
    normalize,
)
from .lexer import Token, tokenize
from .parser import parse_process
from .types import SignalType, infer_types

__all__ = [
    "BinaryOp",
    "Cell",
    "Constant",
    "Default",
    "Delay",
    "Equation",
    "EventOf",
    "Expression",
    "Process",
    "SignalDeclaration",
    "SignalRef",
    "Synchro",
    "UnaryOp",
    "UnaryWhen",
    "When",
    "KernelDefault",
    "KernelDelay",
    "KernelFunction",
    "KernelProcess",
    "KernelProgram",
    "KernelSynchro",
    "KernelWhen",
    "normalize",
    "Token",
    "tokenize",
    "parse_process",
    "SignalType",
    "infer_types",
]
