"""Recursive-descent parser for the SIGNAL surface syntax.

Grammar (informal)::

    process      ::= "process" IDENT "=" interface body [ "where" decls ] "end" [";"]
    interface    ::= "(" [ "?" decls ] [ "!" decls ] ")"
    decls        ::= { type IDENT [ "at" IDENT ] { "," IDENT [ "at" IDENT ] } ";" }
    body         ::= "(|" statement { "|" statement } "|)"
    statement    ::= IDENT ":=" expr [ "at" IDENT ]
                   | "synchro" "{" expr { "," expr } "}"
    expr         ::= default-expr
    default-expr ::= when-expr { "default" when-expr }
    when-expr    ::= "when" or-expr
                   | or-expr { "when" or-expr }
    or-expr      ::= and-expr { ("or" | "xor") and-expr }
    and-expr     ::= not-expr { "and" not-expr }
    not-expr     ::= "not" not-expr | rel-expr
    rel-expr     ::= add-expr [ ("=" | "/=" | "<" | "<=" | ">" | ">=") add-expr ]
    add-expr     ::= mul-expr { ("+" | "-") mul-expr }
    mul-expr     ::= unary-expr { ("*" | "/" | "modulo") unary-expr }
    unary-expr   ::= "-" unary-expr | postfix
    postfix      ::= primary { "$" INT [ "init" constant ]
                             | "cell" primary "init" constant }
    primary      ::= constant | IDENT | "(" expr ")" | "event" primary

Operator precedence follows the SIGNAL reference manual ordering used by the
paper's examples: ``default`` binds loosest, then ``when``, then the boolean,
relational and arithmetic operators.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from .ast import (
    BinaryOp,
    Cell,
    Constant,
    Default,
    Delay,
    Equation,
    EventOf,
    Expression,
    Process,
    SignalDeclaration,
    SignalRef,
    Statement,
    Synchro,
    UnaryOp,
    UnaryWhen,
    When,
)
from .lexer import Token, tokenize

__all__ = ["parse_process", "parse_expression", "Parser"]

_TYPE_NAMES = ("boolean", "integer", "real", "event")


class Parser:
    """A recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers -----------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._position += 1
        return token

    def _expect_operator(self, symbol: str) -> Token:
        if not self.current.is_operator(symbol):
            raise ParseError(
                f"expected {symbol!r} but found {self.current.text!r}",
                self.current.location,
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise ParseError(
                f"expected keyword {word!r} but found {self.current.text!r}",
                self.current.location,
            )
        return self._advance()

    def _expect_identifier(self) -> Token:
        if self.current.kind != "identifier":
            raise ParseError(
                f"expected an identifier but found {self.current.text!r}",
                self.current.location,
            )
        return self._advance()

    def _accept_operator(self, symbol: str) -> bool:
        if self.current.is_operator(symbol):
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self._advance()
            return True
        return False

    # -- declarations ---------------------------------------------------------
    def _parse_declaration_group(self) -> List[SignalDeclaration]:
        """Parse ``type IDENT ["at" IDENT] {"," IDENT ["at" IDENT]} ";"``.

        Returns one declaration per name.  The optional ``at <loc>`` suffix is
        the distribution annotation consumed by :mod:`repro.lang.partition`.
        """
        type_token = self.current
        if not any(type_token.is_keyword(name) for name in _TYPE_NAMES):
            raise ParseError(
                f"expected a type name but found {type_token.text!r}", type_token.location
            )
        self._advance()
        declarations = [self._parse_declared_name(type_token.text)]
        while self._accept_operator(","):
            declarations.append(self._parse_declared_name(type_token.text))
        self._expect_operator(";")
        return declarations

    def _parse_declared_name(self, type_name: str) -> SignalDeclaration:
        name_token = self._expect_identifier()
        return SignalDeclaration(
            name_token.text, type_name, name_token.location, self._parse_at_annotation()
        )

    def _parse_at_annotation(self) -> Optional[str]:
        """Parse an optional trailing ``at IDENT`` location annotation."""
        if self._accept_keyword("at"):
            return self._expect_identifier().text
        return None

    def _parse_declarations(self) -> List[SignalDeclaration]:
        declarations: List[SignalDeclaration] = []
        while any(self.current.is_keyword(name) for name in _TYPE_NAMES):
            declarations.extend(self._parse_declaration_group())
        return declarations

    # -- processes ---------------------------------------------------------------
    def parse_process(self) -> Process:
        self._expect_keyword("process")
        name_token = self._expect_identifier()
        self._expect_operator("=")

        inputs: List[SignalDeclaration] = []
        outputs: List[SignalDeclaration] = []
        self._expect_operator("(")
        if self._accept_operator("?"):
            inputs = self._parse_declarations()
        if self._accept_operator("!"):
            outputs = self._parse_declarations()
        self._expect_operator(")")

        statements = self._parse_body()

        locals_: List[SignalDeclaration] = []
        if self._accept_keyword("where"):
            locals_ = self._parse_declarations()

        self._expect_keyword("end")
        self._accept_operator(";")

        return Process(
            name=name_token.text,
            inputs=inputs,
            outputs=outputs,
            locals=locals_,
            statements=statements,
        )

    def _parse_body(self) -> List[Statement]:
        self._expect_operator("(|")
        statements: List[Statement] = []
        # Allow an empty first slot: "(| | X := ... |)" is not legal SIGNAL,
        # so we simply require one statement per "|"-separated slot.
        statements.append(self._parse_statement())
        while self._accept_operator("|"):
            if self.current.is_operator("|)"):
                break
            statements.append(self._parse_statement())
        self._expect_operator("|)")
        return statements

    def _parse_statement(self) -> Statement:
        if self.current.is_keyword("synchro"):
            return self._parse_synchro()
        target = self._expect_identifier()
        self._expect_operator(":=")
        expression = self.parse_expression()
        at_location = self._parse_at_annotation()
        return Equation(target.text, expression, target.location, at_location)

    def _parse_synchro(self) -> Synchro:
        keyword = self._expect_keyword("synchro")
        self._expect_operator("{")
        expressions = [self.parse_expression()]
        while self._accept_operator(","):
            expressions.append(self.parse_expression())
        self._expect_operator("}")
        return Synchro(tuple(expressions), keyword.location)

    # -- expressions -----------------------------------------------------------------
    def parse_expression(self) -> Expression:
        return self._parse_default()

    def _parse_default(self) -> Expression:
        left = self._parse_when()
        while self.current.is_keyword("default"):
            location = self._advance().location
            right = self._parse_when()
            left = Default(left, right, location)
        return left

    def _parse_when(self) -> Expression:
        if self.current.is_keyword("when"):
            location = self._advance().location
            condition = self._parse_or()
            return UnaryWhen(condition, location)
        left = self._parse_or()
        while self.current.is_keyword("when"):
            location = self._advance().location
            condition = self._parse_or()
            left = When(left, condition, location)
        return left

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.current.is_keyword("or") or self.current.is_keyword("xor"):
            operator = self._advance()
            right = self._parse_and()
            left = BinaryOp(operator.text, left, right, operator.location)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.current.is_keyword("and"):
            operator = self._advance()
            right = self._parse_not()
            left = BinaryOp(operator.text, left, right, operator.location)
        return left

    def _parse_not(self) -> Expression:
        if self.current.is_keyword("not"):
            location = self._advance().location
            operand = self._parse_not()
            return UnaryOp("not", operand, location)
        return self._parse_relational()

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        for symbol in ("=", "/=", "<=", ">=", "<", ">"):
            if self.current.is_operator(symbol):
                operator = self._advance()
                right = self._parse_additive()
                return BinaryOp(operator.text, left, right, operator.location)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self.current.is_operator("+") or self.current.is_operator("-"):
            operator = self._advance()
            right = self._parse_multiplicative()
            left = BinaryOp(operator.text, left, right, operator.location)
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while (
            self.current.is_operator("*")
            or self.current.is_operator("/")
            or self.current.is_keyword("modulo")
        ):
            operator = self._advance()
            right = self._parse_unary()
            left = BinaryOp(operator.text, left, right, operator.location)
        return left

    def _parse_unary(self) -> Expression:
        if self.current.is_operator("-"):
            location = self._advance().location
            operand = self._parse_unary()
            return UnaryOp("-", operand, location)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expression:
        expression = self._parse_primary()
        while True:
            if self.current.is_operator("$"):
                location = self._advance().location
                depth = 1
                if self.current.kind == "integer":
                    depth = int(self.current.value)  # type: ignore[arg-type]
                    self._advance()
                initial: Optional[Constant] = None
                if self._accept_keyword("init"):
                    initial = self._parse_constant()
                expression = Delay(expression, depth, initial, location)
            elif self.current.is_keyword("cell"):
                location = self._advance().location
                condition = self._parse_primary()
                self._expect_keyword("init")
                initial = self._parse_constant()
                expression = Cell(expression, condition, initial, location)
            else:
                return expression

    def _parse_constant(self) -> Constant:
        token = self.current
        if token.kind in ("integer", "real"):
            self._advance()
            return Constant(token.value, token.location)
        if token.kind == "keyword" and token.text in ("true", "false"):
            self._advance()
            return Constant(bool(token.value), token.location)
        if token.is_operator("-"):
            self._advance()
            inner = self._parse_constant()
            return Constant(-inner.value, token.location)  # type: ignore[operator]
        raise ParseError(f"expected a constant but found {token.text!r}", token.location)

    def _parse_primary(self) -> Expression:
        token = self.current
        if token.kind in ("integer", "real"):
            self._advance()
            return Constant(token.value, token.location)
        if token.kind == "keyword" and token.text in ("true", "false"):
            self._advance()
            return Constant(bool(token.value), token.location)
        if token.is_keyword("event"):
            self._advance()
            operand = self._parse_primary()
            return EventOf(operand, token.location)
        if token.kind == "identifier":
            self._advance()
            return SignalRef(token.text, token.location)
        if token.is_operator("("):
            self._advance()
            expression = self.parse_expression()
            self._expect_operator(")")
            return expression
        raise ParseError(f"unexpected token {token.text!r} in expression", token.location)

    def expect_eof(self) -> None:
        if self.current.kind != "eof":
            raise ParseError(
                f"unexpected trailing input {self.current.text!r}", self.current.location
            )


def parse_process(source: str, filename: str = "<signal>") -> Process:
    """Parse a complete ``process ... end`` definition from source text."""
    parser = Parser(tokenize(source, filename))
    process = parser.parse_process()
    parser.expect_eof()
    return process


def parse_expression(source: str, filename: str = "<signal>") -> Expression:
    """Parse a single SIGNAL expression (used by tests and the REPL-style API)."""
    parser = Parser(tokenize(source, filename))
    expression = parser.parse_expression()
    parser.expect_eof()
    return expression
