"""Desugaring of the SIGNAL surface language into kernel processes.

The paper defines the clock calculus (Table 1) and the dependency graph
(Table 2) on the *kernel* of SIGNAL: functional expressions, the delay
``$``, ``when``, ``default`` and composition.  This module rewrites parsed
processes into that kernel:

* nested expressions are flattened by introducing fresh intermediate
  signals;
* the derived operators are expanded (``event X`` to a functional operator,
  unary ``when C`` to ``C when C``, ``cell`` to its delay/default/synchro
  expansion, deep delays ``$ n`` to chains of unit delays);
* well-formedness is checked: every referenced signal is declared, every
  non-input signal has exactly one definition, inputs are never defined.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import NameResolutionError, PartitionError, TypeError_
from .ast import (
    BinaryOp,
    Cell,
    Constant,
    Default,
    Delay,
    Equation,
    EventOf,
    Expression,
    Process,
    SignalRef,
    Synchro,
    UnaryOp,
    UnaryWhen,
    When,
)

__all__ = [
    "Literal",
    "Operand",
    "KernelFunction",
    "KernelDelay",
    "KernelWhen",
    "KernelDefault",
    "KernelSynchro",
    "KernelProcess",
    "KernelProgram",
    "normalize",
    "rename_operand",
    "rename_process",
    "rename_program",
]


@dataclass(frozen=True)
class Literal:
    """A constant operand of a kernel process (clock-neutral)."""

    value: Union[bool, int, float]

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


#: An operand of a kernel process: either a signal name or a literal constant.
Operand = Union[str, Literal]


def operand_signals(operands: Sequence[Operand]) -> Tuple[str, ...]:
    """The signal names among a sequence of operands, in order."""
    return tuple(op for op in operands if isinstance(op, str))


@dataclass(frozen=True)
class KernelFunction:
    """``target := operator(operands...)`` -- a synchronous functional expression."""

    target: str
    operator: str
    operands: Tuple[Operand, ...]

    def __str__(self) -> str:
        arguments = ", ".join(str(op) for op in self.operands)
        return f"{self.target} := {self.operator}({arguments})"


@dataclass(frozen=True)
class KernelDelay:
    """``target := source $ 1 init initial`` -- reference to the previous value."""

    target: str
    source: str
    initial: Optional[Union[bool, int, float]] = None

    def __str__(self) -> str:
        init = f" init {self.initial}" if self.initial is not None else ""
        return f"{self.target} := {self.source} $ 1{init}"


@dataclass(frozen=True)
class KernelWhen:
    """``target := source when condition`` -- downsampling by a boolean signal."""

    target: str
    source: Operand
    condition: str

    def __str__(self) -> str:
        return f"{self.target} := {self.source} when {self.condition}"


@dataclass(frozen=True)
class KernelDefault:
    """``target := left default right`` -- deterministic merge, priority to ``left``."""

    target: str
    left: Operand
    right: Operand

    def __str__(self) -> str:
        return f"{self.target} := {self.left} default {self.right}"


@dataclass(frozen=True)
class KernelSynchro:
    """``synchro {signals...}`` -- the clocks of all signals are equal."""

    signals: Tuple[str, ...]

    def __str__(self) -> str:
        return "synchro {" + ", ".join(self.signals) + "}"


KernelProcess = Union[KernelFunction, KernelDelay, KernelWhen, KernelDefault, KernelSynchro]


@dataclass
class KernelProgram:
    """A SIGNAL process in kernel form.

    Attributes
    ----------
    name:
        Name of the source process.
    inputs, outputs, locals:
        Signal names by role.  ``locals`` includes both user-declared local
        signals and the fresh intermediates introduced by desugaring.
    declared_types:
        Map from signal name to its declared type name, or ``""`` when the
        type must be inferred (fresh intermediates).
    processes:
        The list of kernel processes (the body, as a flat composition).
    locations:
        Map from signal name to the location it was explicitly pinned to by
        an ``at`` annotation.  Only annotated signals appear; empty for
        programs without distribution annotations.
    """

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    locals: List[str] = field(default_factory=list)
    declared_types: Dict[str, str] = field(default_factory=dict)
    processes: List[KernelProcess] = field(default_factory=list)
    locations: Dict[str, str] = field(default_factory=dict)

    @property
    def signals(self) -> List[str]:
        return list(self.inputs) + list(self.outputs) + list(self.locals)

    def defined_signals(self) -> List[str]:
        """Signals that appear as the target of a defining kernel process."""
        targets = []
        for process in self.processes:
            if not isinstance(process, KernelSynchro):
                targets.append(process.target)
        return targets

    def definition_of(self, name: str) -> Optional[KernelProcess]:
        for process in self.processes:
            if not isinstance(process, KernelSynchro) and process.target == name:
                return process
        return None

    def boolean_candidates(self) -> List[str]:
        """Signals used as ``when`` conditions (they must be boolean)."""
        conditions = []
        for process in self.processes:
            if isinstance(process, KernelWhen) and process.condition not in conditions:
                conditions.append(process.condition)
        return conditions

    def __str__(self) -> str:
        lines = [f"process {self.name} (kernel form)"]
        lines.append("  inputs:  " + ", ".join(self.inputs))
        lines.append("  outputs: " + ", ".join(self.outputs))
        lines.append("  locals:  " + ", ".join(self.locals))
        for process in self.processes:
            lines.append("  | " + str(process))
        return "\n".join(lines)

    def canonical_form(self) -> str:
        """A deterministic rendering used as the compile-cache key.

        Desugaring is deterministic (fresh intermediates are numbered in
        emission order), so two surface sources that normalize to the same
        kernel -- e.g. the same program modulo whitespace -- have the same
        canonical form.
        """
        lines = [
            f"process {self.name}",
            "in " + ",".join(self.inputs),
            "out " + ",".join(self.outputs),
            "loc " + ",".join(self.locals),
            "types " + ";".join(
                f"{name}:{type_name}"
                for name, type_name in sorted(self.declared_types.items())
            ),
        ]
        if self.locations:
            # Only annotated programs carry this line, so every fingerprint
            # computed before locations existed is unchanged.
            lines.append(
                "locs " + ";".join(
                    f"{name}:{loc}" for name, loc in sorted(self.locations.items())
                )
            )
        lines.extend(str(process) for process in self.processes)
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """SHA-256 of the canonical kernel form (the compile-cache key).

        Computed once and memoized: a kernel program is treated as immutable
        after :func:`normalize` returns it.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = hashlib.sha256(self.canonical_form().encode("utf-8")).hexdigest()
            self.__dict__["_fingerprint"] = cached
        return cached


def rename_operand(operand: Operand, mapping: Dict[str, str]) -> Operand:
    """Rename a kernel operand: signals are mapped, literals pass through."""
    if isinstance(operand, str):
        return mapping.get(operand, operand)
    return operand


def rename_process(process: KernelProcess, mapping: Dict[str, str]) -> KernelProcess:
    """Rename every signal occurrence of one kernel process."""
    if isinstance(process, KernelFunction):
        return KernelFunction(
            mapping.get(process.target, process.target),
            process.operator,
            tuple(rename_operand(op, mapping) for op in process.operands),
        )
    if isinstance(process, KernelDelay):
        return KernelDelay(
            mapping.get(process.target, process.target),
            mapping.get(process.source, process.source),
            process.initial,
        )
    if isinstance(process, KernelWhen):
        return KernelWhen(
            mapping.get(process.target, process.target),
            rename_operand(process.source, mapping),
            mapping.get(process.condition, process.condition),
        )
    if isinstance(process, KernelDefault):
        return KernelDefault(
            mapping.get(process.target, process.target),
            rename_operand(process.left, mapping),
            rename_operand(process.right, mapping),
        )
    if isinstance(process, KernelSynchro):
        return KernelSynchro(tuple(mapping.get(s, s) for s in process.signals))
    raise TypeError_(f"unsupported kernel process {process!r}")


def rename_program(
    program: KernelProgram, mapping: Dict[str, str], name: Optional[str] = None
) -> KernelProgram:
    """A copy of ``program`` with every signal renamed through ``mapping``.

    Names absent from the mapping are kept.  The mapping must be injective
    on the program's signals (the caller guarantees it); declaration order,
    process order and declared types are preserved, so renaming commutes
    with :meth:`KernelProgram.canonical_form` modulo the names themselves.
    """
    return KernelProgram(
        name=name if name is not None else program.name,
        inputs=[mapping.get(s, s) for s in program.inputs],
        outputs=[mapping.get(s, s) for s in program.outputs],
        locals=[mapping.get(s, s) for s in program.locals],
        declared_types={
            mapping.get(s, s): t for s, t in program.declared_types.items()
        },
        processes=[rename_process(p, mapping) for p in program.processes],
        locations={mapping.get(s, s): loc for s, loc in program.locations.items()},
    )


class _Normalizer:
    """Stateful helper performing the desugaring of one process."""

    def __init__(self, process: Process):
        self.process = process
        self.program = KernelProgram(
            name=process.name,
            inputs=process.input_names(),
            outputs=process.output_names(),
            locals=process.local_names(),
            declared_types={d.name: d.type_name for d in process.declared_signals()},
            locations={
                d.name: d.at_location
                for d in process.declared_signals()
                if d.at_location
            },
        )
        self._declared = set(self.program.signals)
        self._fresh_counter = 0
        self._check_unique_declarations()

    # -- bookkeeping ---------------------------------------------------------
    def _check_unique_declarations(self) -> None:
        seen = set()
        for declaration in self.process.declared_signals():
            if declaration.name in seen:
                raise NameResolutionError(
                    f"signal {declaration.name!r} declared more than once",
                    declaration.location,
                )
            seen.add(declaration.name)

    def _fresh(self, hint: str) -> str:
        """Create a fresh local signal name that cannot clash with user names."""
        while True:
            self._fresh_counter += 1
            name = f"{hint}_k{self._fresh_counter}"
            if name not in self._declared:
                break
        self._declared.add(name)
        self.program.locals.append(name)
        self.program.declared_types[name] = ""
        return name

    def _check_reference(self, name: str, location) -> None:
        if name not in self._declared:
            raise NameResolutionError(f"reference to undeclared signal {name!r}", location)

    def _emit(self, process: KernelProcess) -> None:
        self.program.processes.append(process)

    # -- expression compilation ------------------------------------------------
    def _as_signal(self, operand: Operand, hint: str) -> str:
        """Force an operand to be a signal, copying a literal into a fresh one."""
        if isinstance(operand, str):
            return operand
        fresh = self._fresh(hint)
        self._emit(KernelFunction(fresh, "id", (operand,)))
        return fresh

    def compile_expression(self, expression: Expression, target: Optional[str] = None) -> Operand:
        """Compile ``expression``; if ``target`` is given, bind the result to it.

        Returns the operand holding the value of the expression (the target
        name, a fresh intermediate, a referenced signal or a literal).
        """
        if isinstance(expression, Constant):
            if target is None:
                return Literal(expression.value)
            self._emit(KernelFunction(target, "id", (Literal(expression.value),)))
            return target

        if isinstance(expression, SignalRef):
            self._check_reference(expression.name, expression.location)
            if target is None:
                return expression.name
            self._emit(KernelFunction(target, "id", (expression.name,)))
            return target

        if isinstance(expression, (UnaryOp, BinaryOp)):
            if isinstance(expression, UnaryOp):
                operator = expression.operator
                operand_expressions = [expression.operand]
            else:
                operator = expression.operator
                operand_expressions = [expression.left, expression.right]
            operands = tuple(self.compile_expression(e) for e in operand_expressions)
            result = target if target is not None else self._fresh("f")
            self._emit(KernelFunction(result, operator, operands))
            return result

        if isinstance(expression, EventOf):
            operand = self.compile_expression(expression.expression)
            source = self._as_signal(operand, "ev")
            result = target if target is not None else self._fresh("ev")
            self._emit(KernelFunction(result, "event", (source,)))
            return result

        if isinstance(expression, When):
            source = self.compile_expression(expression.expression)
            condition = self._compile_condition(expression.condition)
            result = target if target is not None else self._fresh("w")
            self._emit(KernelWhen(result, source, condition))
            return result

        if isinstance(expression, UnaryWhen):
            # when C  ==  C when C
            condition = self._compile_condition(expression.condition)
            result = target if target is not None else self._fresh("uw")
            self._emit(KernelWhen(result, condition, condition))
            return result

        if isinstance(expression, Default):
            left = self.compile_expression(expression.left)
            right = self.compile_expression(expression.right)
            if isinstance(left, Literal) and isinstance(right, Literal):
                raise TypeError_(
                    "default of two constants has no determined clock", expression.location
                )
            result = target if target is not None else self._fresh("d")
            self._emit(KernelDefault(result, left, right))
            return result

        if isinstance(expression, Delay):
            operand = self.compile_expression(expression.expression)
            source = self._as_signal(operand, "dl")
            if expression.depth < 1:
                raise TypeError_("delay depth must be at least 1", expression.location)
            initial = expression.initial.value if expression.initial is not None else None
            # A depth-n delay is a chain of n unit delays sharing the initial value.
            current = source
            for step in range(expression.depth):
                is_last = step == expression.depth - 1
                result = (
                    target
                    if (is_last and target is not None)
                    else self._fresh("z")
                )
                self._emit(KernelDelay(result, current, initial))
                current = result
            return current

        if isinstance(expression, Cell):
            return self._compile_cell(expression, target)

        raise TypeError_(f"unsupported expression {expression!r}")

    def _compile_condition(self, expression: Expression) -> str:
        """Compile an expression used as a ``when`` condition to a signal name."""
        if isinstance(expression, Constant):
            raise TypeError_("a constant cannot be used as a when-condition")
        operand = self.compile_expression(expression)
        return self._as_signal(operand, "c")

    def _compile_cell(self, expression: Cell, target: Optional[str]) -> str:
        """Expand ``X cell C init v``.

        The expansion follows the SIGNAL reference::

            Y := X default (Y $ 1 init v)
            synchro { Y, (event X) default (when C) }
        """
        source = self._as_signal(self.compile_expression(expression.expression), "cx")
        condition = self._compile_condition(expression.condition)
        result = target if target is not None else self._fresh("cell")

        previous = self._fresh("zcell")
        self._emit(KernelDelay(previous, result, expression.initial.value))
        self._emit(KernelDefault(result, source, previous))

        source_event = self._fresh("ev")
        self._emit(KernelFunction(source_event, "event", (source,)))
        sampled = self._fresh("uw")
        self._emit(KernelWhen(sampled, condition, condition))
        merged = self._fresh("d")
        self._emit(KernelDefault(merged, source_event, sampled))
        self._emit(KernelSynchro((result, merged)))
        return result

    # -- statements -------------------------------------------------------------
    def run(self) -> KernelProgram:
        defined: Dict[str, bool] = {}
        for statement in self.process.statements:
            if isinstance(statement, Equation):
                self._check_reference(statement.target, statement.location)
                if statement.target in self.program.inputs:
                    raise NameResolutionError(
                        f"input signal {statement.target!r} cannot be defined",
                        statement.location,
                    )
                if defined.get(statement.target):
                    raise NameResolutionError(
                        f"signal {statement.target!r} is defined more than once",
                        statement.location,
                    )
                defined[statement.target] = True
                if statement.at_location:
                    pinned = self.program.locations.get(statement.target)
                    if pinned is not None and pinned != statement.at_location:
                        raise PartitionError(
                            f"signal {statement.target!r} is pinned to location "
                            f"{pinned!r} by its declaration but to "
                            f"{statement.at_location!r} by its equation",
                            statement.location,
                        )
                    self.program.locations[statement.target] = statement.at_location
                self.compile_expression(statement.expression, target=statement.target)
            elif isinstance(statement, Synchro):
                names = []
                for expression in statement.expressions:
                    operand = self.compile_expression(expression)
                    names.append(self._as_signal(operand, "sy"))
                self._emit(KernelSynchro(tuple(names)))
            else:  # pragma: no cover - parser only produces the two kinds
                raise TypeError_(f"unsupported statement {statement!r}")

        self._check_all_defined()
        return self.program

    def _check_all_defined(self) -> None:
        defined = set(self.program.defined_signals())
        for name in self.program.outputs + [
            local for local in self.program.locals if local in set(self.process.local_names())
        ]:
            if name not in defined:
                raise NameResolutionError(f"signal {name!r} has no defining equation")


def normalize(process: Process) -> KernelProgram:
    """Desugar a parsed :class:`~repro.lang.ast.Process` into kernel form."""
    return _Normalizer(process).run()
