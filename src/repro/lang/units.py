"""Splitting a kernel program into canonical, separately compilable units.

Modular compilation (after *Modular Compilation of a Synchronous Language*,
Gaffé/Ressouche/Roy) needs a notion of "module" that is stable across the
programs embedding it.  Here a **unit** is a connected component of the
program's kernel processes under the shares-a-signal relation: two kernel
equations belong to the same unit iff they are transitively linked through
a common signal.  Units are therefore clock-independent of each other --
clock resolution of the whole program factors exactly into per-unit
resolutions (the constraint systems mention disjoint signal sets), which
is what makes compiling them separately and linking the step IRs sound.

Each unit carries a **canonical form**: the sub-program alpha-renamed onto
positional names (``i0, i1, ...`` for inputs, ``o0, ...`` for outputs,
``l0, ...`` for locals, numbered by declaration order inside the unit) with
a fixed process name.  Two occurrences of the same module -- under
different signal names, at different positions, inside different programs
-- canonicalize to the identical kernel text and hence share one
fingerprint, the key under which unit artifacts are cached and shared
across programs.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from .kernel import (
    KernelDefault,
    KernelDelay,
    KernelFunction,
    KernelProcess,
    KernelProgram,
    KernelSynchro,
    KernelWhen,
    operand_signals,
    rename_program,
)

__all__ = [
    "UNIT_FINGERPRINT_VERSION",
    "UNIT_PROGRAM_NAME",
    "ProgramUnit",
    "process_signals",
    "split_units",
    "rename_text",
]

#: Bump when anything about unit canonicalization or the unit artifact
#: payload changes meaning; it is hashed into every unit fingerprint, so a
#: bump invalidates all cached unit artifacts at once.
UNIT_FINGERPRINT_VERSION = 1

#: The process name shared by every canonical unit program (the real name
#: must not influence the fingerprint).
UNIT_PROGRAM_NAME = "U"


def process_signals(process: KernelProcess) -> Tuple[str, ...]:
    """Every signal name mentioned by one kernel process, in order."""
    if isinstance(process, KernelFunction):
        return (process.target,) + operand_signals(process.operands)
    if isinstance(process, KernelDelay):
        return (process.target, process.source)
    if isinstance(process, KernelWhen):
        source = (process.source,) if isinstance(process.source, str) else ()
        return (process.target,) + source + (process.condition,)
    if isinstance(process, KernelDefault):
        return (process.target,) + operand_signals((process.left, process.right))
    if isinstance(process, KernelSynchro):
        return tuple(process.signals)
    raise TypeError(f"unsupported kernel process {process!r}")


@dataclass
class ProgramUnit:
    """One connected component of a kernel program, with its canonical form.

    Attributes
    ----------
    index:
        Position of the unit in the program (units are ordered by the
        earliest declaration of any of their signals).
    program:
        The sub-program restricted to the unit's signals and processes,
        under the *actual* names of the enclosing program.
    canonical:
        The same sub-program alpha-renamed onto positional canonical
        names; its kernel text is what the unit fingerprint hashes.
    to_canonical / from_canonical:
        The (bijective) rename maps between the two.
    """

    index: int
    program: KernelProgram
    canonical: KernelProgram
    to_canonical: Dict[str, str] = field(default_factory=dict)
    from_canonical: Dict[str, str] = field(default_factory=dict)

    @property
    def signals(self) -> List[str]:
        return self.program.signals

    def fingerprint(self) -> str:
        """SHA-256 of the versioned canonical kernel text of the unit.

        Invariant under alpha-renaming of the enclosing program, under
        reordering of *other* units, and under embedding the same module
        into a different program -- the properties tests/test_modular.py
        checks.  Distinct from whole-program fingerprints (the version
        header is hashed in), so unit and program cache keys can never
        collide even for a single-unit program.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            text = (
                f"unit-fingerprint-v{UNIT_FINGERPRINT_VERSION}\n"
                + self.canonical.canonical_form()
            )
            cached = hashlib.sha256(text.encode("utf-8")).hexdigest()
            self.__dict__["_fingerprint"] = cached
        return cached


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def add(self, item: str) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: str) -> str:
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def _canonical_maps(sub: KernelProgram) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Positional canonical names for one unit sub-program.

    Numbering follows declaration order within each role list.  Both lists
    are restrictions of the enclosing program's declaration lists, so the
    numbering is invariant under embedding (adding foreign signals around
    the unit) and under alpha-renaming (which preserves order).
    """
    to_canonical: Dict[str, str] = {}
    for prefix, names in (("i", sub.inputs), ("o", sub.outputs), ("l", sub.locals)):
        for position, name in enumerate(names):
            to_canonical[name] = f"{prefix}{position}"
    from_canonical = {canon: name for name, canon in to_canonical.items()}
    return to_canonical, from_canonical


def split_units(program: KernelProgram) -> List[ProgramUnit]:
    """Split a kernel program into its canonical units.

    Every signal and every kernel process of the program lands in exactly
    one unit.  Declared-but-unconstrained signals become singleton units
    (they still occupy a clock class of their own).  Units are ordered by
    the earliest declaration position of any member signal, which makes
    the split deterministic; the degenerate empty program yields a single
    unit covering the whole (empty) program.
    """
    uf = _UnionFind()
    for signal in program.signals:
        uf.add(signal)
    for process in program.processes:
        names = process_signals(process)
        for other in names[1:]:
            uf.union(names[0], other)

    # Group signals by component root, ordered by first declaration.
    component_of: Dict[str, List[str]] = {}
    order: List[str] = []
    for signal in program.signals:
        root = uf.find(signal)
        if root not in component_of:
            component_of[root] = []
            order.append(root)
        component_of[root].append(signal)

    units: List[ProgramUnit] = []
    for index, root in enumerate(order):
        members = set(component_of[root])
        sub = KernelProgram(
            name=program.name,
            inputs=[s for s in program.inputs if s in members],
            outputs=[s for s in program.outputs if s in members],
            locals=[s for s in program.locals if s in members],
            declared_types={
                s: program.declared_types.get(s, "")
                for s in program.signals
                if s in members
            },
            processes=[
                p
                for p in program.processes
                if process_signals(p) and uf.find(process_signals(p)[0]) == root
            ],
        )
        to_canonical, from_canonical = _canonical_maps(sub)
        canonical = rename_program(sub, to_canonical, name=UNIT_PROGRAM_NAME)
        units.append(
            ProgramUnit(
                index=index,
                program=sub,
                canonical=canonical,
                to_canonical=to_canonical,
                from_canonical=from_canonical,
            )
        )

    if not units:
        # No signals at all: treat the whole program as one (empty) unit.
        to_canonical, from_canonical = _canonical_maps(program)
        units.append(
            ProgramUnit(
                index=0,
                program=program,
                canonical=rename_program(program, to_canonical, name=UNIT_PROGRAM_NAME),
                to_canonical=to_canonical,
                from_canonical=from_canonical,
            )
        )
    return units


def rename_text(text: str, mapping: Dict[str, str]) -> str:
    """Rename canonical signal tokens inside rendered artifact text.

    Used by the link stage to rewrite per-unit clock-tree and clock-system
    texts (produced under canonical names) back to the program's actual
    names.  Tokens are matched with non-alphanumeric boundaries so that
    derived identifiers (``h_C_i0``, ``z_i0``, ``[~i0]``) are rewritten
    too; canonical names never occur as substrings of each other thanks to
    the trailing-digit guard.
    """
    if not mapping or not text:
        return text
    alternation = "|".join(
        re.escape(name) for name in sorted(mapping, key=len, reverse=True)
    )
    pattern = re.compile(rf"(?<![A-Za-z0-9])(?:{alternation})(?![A-Za-z0-9])")
    return pattern.sub(lambda match: mapping[match.group(0)], text)
