"""Location-directed partitioning of a kernel program.

After *A Type System for the Automatic Distribution of Higher-order
Synchronous Dataflow Programs* (Delaval, Girault, Pouzet): ``at <loc>``
annotations on signal declarations and equations pin parts of a program to
named locations; this pass infers a location for **every** kernel process,
cuts the program at the cross-location edges, and emits one self-contained
:class:`~repro.lang.kernel.KernelProgram` per location plus a set of typed
channels carrying the cut signals.

Placement inference is deterministic:

* explicit annotations (collected by :func:`~repro.lang.kernel.normalize`
  into ``KernelProgram.locations``) seed the assignment; a signal pinned to
  two different locations is rejected during desugaring with a
  :class:`~repro.errors.PartitionError` carrying the offending equation's
  :class:`~repro.errors.SourceLocation`;
* locations propagate along dataflow to a fixpoint, in process order --
  forward (an unplaced equation adopts the location of its first placed
  operand) and backward (a placed equation pulls its unplaced non-input
  operands to its own location); placements are never overwritten, so the
  first assignment in the deterministic sweep wins;
* whatever remains lands on the *default* location: the first location
  named by any annotation (or ``"main"`` for unannotated programs).

Every equation is placed at the location of its target; ``synchro``
constraints are placed at the location of their first member.  A signal
read at a location other than the one defining it becomes a **channel
signal**: an output of the producing fragment, an input of each consuming
fragment, with its (inferred) type recorded on the channel.  The fragment
graph must be acyclic location-to-location -- the lock-step harness in
:mod:`repro.runtime.distributed` delivers channel values within the
instant, so mutually-dependent locations cannot be scheduled and are
rejected with a :class:`~repro.errors.PartitionError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import PartitionError
from .kernel import KernelProgram, KernelSynchro, normalize
from .types import infer_types
from .units import process_signals

__all__ = [
    "DEFAULT_LOCATION",
    "ChannelSignal",
    "Channel",
    "Fragment",
    "PartitionedProgram",
    "LocationAssignment",
    "infer_locations",
    "partition_program",
    "partition_source",
]

#: Location assigned to everything in a program without any annotation.
DEFAULT_LOCATION = "main"


@dataclass(frozen=True)
class ChannelSignal:
    """One signal carried by a channel, with its inferred scalar type."""

    name: str
    type_name: str

    def __str__(self) -> str:
        return f"{self.type_name} {self.name}"


@dataclass(frozen=True)
class Channel:
    """All the signals one location sends to one other location.

    Each signal is transported as a (presence, value) pair per instant --
    the clock travels with the value, so the consumer learns absence
    explicitly.
    """

    producer: str
    consumer: str
    signals: Tuple[ChannelSignal, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self.signals)
        return f"{self.producer} -> {self.consumer}: {{{inner}}}"


@dataclass
class Fragment:
    """The sub-program pinned to one location.

    ``program`` is a self-contained kernel program: channel signals received
    from other locations appear among its inputs, channel signals consumed
    elsewhere among its outputs (so generated code emits them).
    """

    location: str
    program: KernelProgram
    #: whole-program inputs read at this location, in interface order
    external_inputs: List[str] = field(default_factory=list)
    #: cut signals received from other locations, in first-use order
    channel_inputs: List[str] = field(default_factory=list)
    #: cut signals produced here for other locations, in definition order
    channel_outputs: List[str] = field(default_factory=list)


@dataclass
class LocationAssignment:
    """The result of placement inference over one kernel program."""

    #: location of every signal that has one (defined signals always do;
    #: inputs only when explicitly annotated)
    signal_locations: Dict[str, str]
    #: location of each kernel process, parallel to ``program.processes``
    process_locations: List[str]
    #: locations in first-appearance order (annotation order, then default)
    locations: List[str]


@dataclass
class PartitionedProgram:
    """A program cut into per-location fragments plus the channels between them."""

    program: KernelProgram
    assignment: LocationAssignment
    #: fragments in a topological order of the location graph (producers
    #: before consumers) -- the order the harness steps them each instant
    fragments: List[Fragment]
    channels: List[Channel]

    def fragment_at(self, location: str) -> Fragment:
        for fragment in self.fragments:
            if fragment.location == location:
                return fragment
        raise KeyError(location)

    def describe(self) -> str:
        lines = [f"program {self.program.name}: {len(self.fragments)} location(s)"]
        for fragment in self.fragments:
            prog = fragment.program
            lines.append(
                f"  at {fragment.location}: {len(prog.processes)} process(es), "
                f"in [{', '.join(prog.inputs)}], out [{', '.join(prog.outputs)}]"
            )
        for channel in self.channels:
            lines.append(f"  channel {channel}")
        return "\n".join(lines)


def infer_locations(program: KernelProgram) -> LocationAssignment:
    """Assign a location to every kernel process (and defined signal).

    Deterministic fixpoint propagation from the explicit annotations; see
    the module docstring for the exact rules.
    """
    signal_locations: Dict[str, str] = dict(program.locations)
    location_order: List[str] = []
    for loc in program.locations.values():
        if loc not in location_order:
            location_order.append(loc)

    defined = set(program.defined_signals())
    processes = program.processes
    process_locations: List[Optional[str]] = [None] * len(processes)

    changed = True
    while changed:
        changed = False
        for index, process in enumerate(processes):
            if isinstance(process, KernelSynchro):
                continue
            loc = process_locations[index]
            if loc is None:
                loc = signal_locations.get(process.target)
            if loc is None:
                # Forward: adopt the first placed operand's location.
                for signal in process_signals(process)[1:]:
                    loc = signal_locations.get(signal)
                    if loc is not None:
                        break
            if loc is None:
                continue
            if process_locations[index] is None:
                process_locations[index] = loc
                changed = True
            if process.target not in signal_locations:
                signal_locations[process.target] = loc
                changed = True
            # Backward: pull unplaced defined operands to this location
            # (inputs stay external -- the harness routes them directly).
            for signal in process_signals(process)[1:]:
                if signal in defined and signal not in signal_locations:
                    signal_locations[signal] = loc
                    changed = True

    default = location_order[0] if location_order else DEFAULT_LOCATION
    for index, process in enumerate(processes):
        if isinstance(process, KernelSynchro):
            loc = None
            for signal in process.signals:
                loc = signal_locations.get(signal)
                if loc is not None:
                    break
            process_locations[index] = loc if loc is not None else default
        elif process_locations[index] is None:
            process_locations[index] = default
            signal_locations.setdefault(process.target, default)

    if default not in location_order and any(
        loc == default for loc in process_locations
    ):
        location_order.append(default)

    return LocationAssignment(
        signal_locations=signal_locations,
        process_locations=[loc for loc in process_locations],  # now all set
        locations=location_order,
    )


def _topological_locations(
    locations: List[str], edges: List[Tuple[str, str]]
) -> List[str]:
    """Kahn's algorithm in first-appearance order; raises on a cycle."""
    indegree = {loc: 0 for loc in locations}
    successors: Dict[str, List[str]] = {loc: [] for loc in locations}
    for producer, consumer in edges:
        if consumer not in successors[producer]:
            successors[producer].append(consumer)
            indegree[consumer] += 1
    order: List[str] = []
    ready = [loc for loc in locations if indegree[loc] == 0]
    while ready:
        current = ready.pop(0)
        order.append(current)
        for successor in successors[current]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)
    if len(order) != len(locations):
        cyclic = sorted(loc for loc in locations if loc not in order)
        raise PartitionError(
            "locations "
            + ", ".join(repr(loc) for loc in cyclic)
            + " exchange values in both directions within an instant; the"
            " lock-step distributed harness cannot schedule such a cut --"
            " co-locate the mutually dependent equations"
        )
    return order


def partition_program(program: KernelProgram) -> PartitionedProgram:
    """Cut ``program`` into one fragment per inferred location.

    The composite behaviour of the fragments (with channel signals copied
    producer-to-consumer within each instant) is the behaviour of the
    original program; tests enforce this differentially against the
    reference interpreter.
    """
    assignment = infer_locations(program)
    types = infer_types(program)
    inputs = set(program.inputs)
    defined_at: Dict[str, str] = {
        signal: assignment.signal_locations[signal]
        for signal in program.defined_signals()
    }

    # Locations that own at least one process, in assignment order.
    fragment_locations: List[str] = []
    for loc in assignment.process_locations:
        if loc not in fragment_locations:
            fragment_locations.append(loc)

    # Reads per location, and the cut: (producer, consumer) -> [signals].
    reads: Dict[str, List[str]] = {loc: [] for loc in fragment_locations}
    for process, loc in zip(program.processes, assignment.process_locations):
        names = (
            process.signals
            if isinstance(process, KernelSynchro)
            else process_signals(process)[1:]
        )
        for signal in names:
            if signal not in reads[loc]:
                reads[loc].append(signal)

    cuts: Dict[Tuple[str, str], List[str]] = {}
    for consumer in fragment_locations:
        for signal in reads[consumer]:
            producer = defined_at.get(signal)
            if producer is not None and producer != consumer:
                bucket = cuts.setdefault((producer, consumer), [])
                if signal not in bucket:
                    bucket.append(signal)

    topo = _topological_locations(fragment_locations, list(cuts.keys()))

    channel_in: Dict[str, List[str]] = {loc: [] for loc in fragment_locations}
    channel_out: Dict[str, List[str]] = {loc: [] for loc in fragment_locations}
    for (producer, consumer), signals in cuts.items():
        for signal in signals:
            if signal not in channel_in[consumer]:
                channel_in[consumer].append(signal)
            if signal not in channel_out[producer]:
                channel_out[producer].append(signal)

    fragments: List[Fragment] = []
    for loc in topo:
        members = [
            process
            for process, ploc in zip(program.processes, assignment.process_locations)
            if ploc == loc
        ]
        mentioned: List[str] = []
        for process in members:
            for signal in process_signals(process):
                if signal not in mentioned:
                    mentioned.append(signal)
        externals = [s for s in program.inputs if s in mentioned]
        chan_in = [s for s in channel_in[loc] if s in mentioned]
        frag_inputs = externals + chan_in
        frag_outputs = [
            s for s in program.outputs if defined_at.get(s) == loc
        ] + [s for s in channel_out[loc] if s not in program.outputs]
        frag_locals = [
            s for s in mentioned if s not in frag_inputs and s not in frag_outputs
        ]
        declared_types = {}
        for signal in frag_inputs + frag_outputs + frag_locals:
            type_name = program.declared_types.get(signal, "")
            if not type_name and signal in chan_in:
                # Fresh intermediates have no declared type in the source;
                # as channel inputs they lose their defining equation, so
                # pin the whole-program inferred type instead.
                type_name = types[signal].value
            declared_types[signal] = type_name
        fragments.append(
            Fragment(
                location=loc,
                program=KernelProgram(
                    name=f"{program.name}_{loc}",
                    inputs=frag_inputs,
                    outputs=frag_outputs,
                    locals=frag_locals,
                    declared_types=declared_types,
                    processes=list(members),
                ),
                external_inputs=externals,
                channel_inputs=chan_in,
                channel_outputs=list(channel_out[loc]),
            )
        )

    channels = [
        Channel(
            producer=producer,
            consumer=consumer,
            signals=tuple(
                ChannelSignal(signal, types[signal].value) for signal in signals
            ),
        )
        for (producer, consumer), signals in sorted(
            cuts.items(), key=lambda item: (topo.index(item[0][0]), topo.index(item[0][1]))
        )
    ]

    return PartitionedProgram(
        program=program,
        assignment=LocationAssignment(
            signal_locations=assignment.signal_locations,
            process_locations=assignment.process_locations,
            locations=topo,
        ),
        fragments=fragments,
        channels=channels,
    )


def partition_source(source: str, filename: str = "<signal>") -> PartitionedProgram:
    """Parse, desugar and partition a surface-language source text."""
    from .parser import parse_process

    return partition_program(normalize(parse_process(source, filename)))
