"""Reproduction of the PLDI'95 SIGNAL compiler.

This package reimplements, in pure Python, the compilation chain described
in *"Implementation of the data-flow synchronous language SIGNAL"*
(Amagbégnon, Besnard, Le Guernic, PLDI 1995):

* a frontend for the SIGNAL language (parser, kernel desugaring, types);
* the clock calculus: extraction of the system of boolean clock equations
  (Table 1) and its triangularization by **arborescent resolution** over a
  forest of clock trees with BDD-canonical formulas (Section 3);
* the conditional dependency graph (Table 2) and clock-aware causality
  analysis;
* sequential code generation in the nested (hierarchical) and flat
  (single-loop) styles of Figure 9, with Python and C backends;
* a reference interpreter of the kernel semantics, used for differential
  testing and for the timing diagrams of Figures 1-4;
* the benchmark programs and representation baselines needed to regenerate
  the comparison of Figure 13;
* a compilation service (:class:`repro.service.CompilationService`) that
  pools a shared BDD manager across compilations (with node-watermark
  recycling), caches compilation results by kernel fingerprint, and
  compiles batches concurrently;
* a compilation daemon (``python -m repro serve``,
  :mod:`repro.service.daemon`) serving that service over a JSON-line
  socket protocol with an on-disk store that keeps the cache warm across
  restarts, plus the matching client library
  (:class:`repro.service.RemoteCompiler`).

Quickstart::

    from repro import compile_source

    result = compile_source('''
        process COUNT =
          ( ? boolean RESET; ! integer N; )
          (| N := (0 when RESET) default (ZN + 1)
           | ZN := N $ 1 init 0
           | synchro { N, RESET }
           |)
          where integer ZN;
        end;
    ''')
    print(result.hierarchy.render_forest())
    print(result.executable.step({"RESET": False}))
"""

from .bdd import BDD, BDDManager
from .compiler import (
    CompilationResult,
    LinkedCompilationResult,
    analyze_source,
    compile_modular_source,
    compile_process,
    compile_source,
)
from .codegen import GenerationStyle
from .errors import (
    CausalityError,
    ClockCalculusError,
    CodeGenerationError,
    LexerError,
    NameResolutionError,
    ParseError,
    ResourceLimitExceeded,
    SignalError,
    SimulationError,
    TypeError_,
)
from .lang import SignalType, parse_process
from .runtime import ABSENT, KernelInterpreter, ReactiveExecutor, Trace, timing_diagram
from .service import CompilationService

__version__ = "1.0.0"

__all__ = [
    "BDD",
    "BDDManager",
    "CompilationResult",
    "CompilationService",
    "LinkedCompilationResult",
    "analyze_source",
    "compile_modular_source",
    "compile_process",
    "compile_source",
    "GenerationStyle",
    "CausalityError",
    "ClockCalculusError",
    "CodeGenerationError",
    "LexerError",
    "NameResolutionError",
    "ParseError",
    "ResourceLimitExceeded",
    "SignalError",
    "SimulationError",
    "TypeError_",
    "SignalType",
    "parse_process",
    "ABSENT",
    "KernelInterpreter",
    "ReactiveExecutor",
    "Trace",
    "timing_diagram",
    "__version__",
]
