"""Mass simulation: execute the generated C over whole populations.

The C backend used to be emit-only -- its output was compiled as a
translation unit in tests but never *run*, which is how the truncated
integer-division bug survived.  This module closes that gap:

* :func:`find_c_compiler` locates a C toolchain (``cc``/``gcc``/``clang``,
  overridable through ``REPRO_CC``);
* :class:`SharedCProgram` compiles the reentrant columnar C variant
  (:func:`~repro.codegen.c_backend.generate_c_shared_source`) with
  ``cc -shared`` and loads it through :mod:`ctypes`;
* :class:`CPopulation` steps ``n`` instances of the loaded program per tick
  over struct-of-arrays state (one C array per input/output column across
  the population, one packed state struct per instance);
* :class:`LoadedCProcess` wraps a population of one behind the same
  ``step(inputs, oracle=None, observe=None)`` API as
  :class:`~repro.codegen.python_backend.CompiledProcess`, so the
  differential harness and :class:`~repro.runtime.executor.ReactiveExecutor`
  drive real machine code;
* :class:`MassSimulation` is the front door: pick a backend (``"c"``,
  ``"python"`` or ``"auto"``), step a whole population, fall back to
  per-instance Python stepping when no C toolchain is installed.

Only the standard library is used (``ctypes`` + ``array``): the runtime
must work in the same environments as the rest of the compiler.

Semantics note -- the C entry points consume inputs *positionally* (one
column per input signal), so a population tick must supply a value for
every input of every instance up front; the program's clock hierarchy then
decides, per instance, which of those values are actually read.  This is
exactly the paper's Section 2.6 contract: the environment provides inputs,
the step function's control structure (the arborescent clock hierarchy)
touches only the ones present at this reaction.  Signals absent from an
instance's tick mapping default to their type's neutral value; they are
never read unless the instance's clocks say so.
"""

from __future__ import annotations

import array
import ctypes
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..codegen.c_backend import generate_c_shared_source
from ..codegen.ir import GenerationStyle, StepIR
from ..errors import SimulationError
from ..lang.types import SignalType, default_value

__all__ = [
    "find_c_compiler",
    "compile_shared_library",
    "SharedCProgram",
    "CPopulation",
    "LoadedCProcess",
    "MassSimulation",
    "TickRecord",
]

#: array module typecodes matching the C column types of the shared emitter
_ARRAY_CODES = {
    SignalType.EVENT: "i",
    SignalType.BOOLEAN: "i",
    SignalType.INTEGER: "l",
    SignalType.REAL: "d",
}

_CTYPES = {
    SignalType.EVENT: ctypes.c_int,
    SignalType.BOOLEAN: ctypes.c_int,
    SignalType.INTEGER: ctypes.c_long,
    SignalType.REAL: ctypes.c_double,
}


def find_c_compiler() -> Optional[str]:
    """Path of a usable C compiler, or ``None``.

    ``REPRO_CC`` overrides detection (set it to an empty string to force the
    Python fallback even on machines with a toolchain -- used by tests).
    """
    override = os.environ.get("REPRO_CC")
    if override is not None:
        return shutil.which(override) if override else None
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def compile_shared_library(
    c_source: str, directory: str, name: str, cc: Optional[str] = None
) -> str:
    """Compile ``c_source`` to ``<directory>/<name>.so`` and return its path."""
    compiler = cc or find_c_compiler()
    if compiler is None:
        raise SimulationError(
            "no C compiler found (install cc/gcc/clang or set REPRO_CC)"
        )
    source_path = os.path.join(directory, f"{name}.c")
    library_path = os.path.join(directory, f"{name}.so")
    with open(source_path, "w", encoding="utf-8") as handle:
        handle.write(c_source)
    command = [
        compiler,
        "-std=c99",
        "-O2",
        "-fPIC",
        "-shared",
        "-o",
        library_path,
        source_path,
        "-lm",
    ]
    completed = subprocess.run(command, capture_output=True, text=True)
    if completed.returncode != 0:
        raise SimulationError(
            f"C compilation failed ({' '.join(command)}):\n{completed.stderr}"
        )
    return library_path


def _coerce_in(value: object, signal_type: SignalType) -> Union[int, float]:
    if signal_type is SignalType.REAL:
        return float(value)
    return int(value)


@dataclass
class SharedCProgram:
    """A compiled-and-loaded shared library for one SIGNAL process.

    Holds the loaded :mod:`ctypes` library plus the interface metadata
    (input/output order, free-clock keys, signal types) needed to drive the
    columnar ABI.  Populations created from one ``SharedCProgram`` share the
    machine code but never any state.
    """

    name: str
    style: GenerationStyle
    source: str
    inputs: List[str]
    outputs: List[str]
    root_flags: List[Tuple[int, str, bool]]
    types: Dict[str, SignalType]
    library_path: str
    _library: ctypes.CDLL = field(repr=False)
    _tempdir: Optional[tempfile.TemporaryDirectory] = field(default=None, repr=False)
    state_bytes: int = 0

    def __post_init__(self) -> None:
        state_bytes = getattr(self._library, f"{self.name}_state_bytes")
        state_bytes.restype = ctypes.c_long
        state_bytes.argtypes = []
        self.state_bytes = int(state_bytes())
        self._init = getattr(self._library, f"{self.name}_init")
        self._init.restype = None
        self._step_many = getattr(self._library, f"{self.name}_step_many")
        self._step_many.restype = None

    # -- construction --------------------------------------------------------
    @classmethod
    def from_metadata(
        cls,
        c_shared_source: str,
        name: str,
        style: GenerationStyle,
        inputs: Sequence[str],
        outputs: Sequence[str],
        root_flags: Sequence[Sequence[object]],
        types: Mapping[str, SignalType],
        cc: Optional[str] = None,
    ) -> "SharedCProgram":
        """Compile and load reentrant C source given its interface metadata."""
        tempdir = tempfile.TemporaryDirectory(prefix=f"repro-mass-{name}-")
        try:
            library_path = compile_shared_library(
                c_shared_source, tempdir.name, name, cc=cc
            )
            library = ctypes.CDLL(library_path)
        except BaseException:
            tempdir.cleanup()
            raise
        return cls(
            name=name,
            style=style,
            source=c_shared_source,
            inputs=list(inputs),
            outputs=list(outputs),
            root_flags=[tuple(flag) for flag in root_flags],
            types=dict(types),
            library_path=library_path,
            _library=library,
            _tempdir=tempdir,
        )

    @classmethod
    def from_ir(cls, ir: StepIR, cc: Optional[str] = None) -> "SharedCProgram":
        return cls.from_metadata(
            generate_c_shared_source(ir),
            name=ir.name,
            style=ir.style,
            inputs=ir.inputs,
            outputs=ir.outputs,
            root_flags=ir.root_flags,
            types=ir.types,
            cc=cc,
        )

    @classmethod
    def from_result(
        cls,
        result,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        cc: Optional[str] = None,
    ) -> "SharedCProgram":
        """Compile and load the reentrant C of a :class:`CompilationResult`."""
        return cls.from_ir(result.step_ir(style), cc=cc)

    @classmethod
    def from_record(cls, record: Mapping[str, object], cc: Optional[str] = None) -> "SharedCProgram":
        """Load a persisted artifact record's ``c_shared`` artifact.

        Records written before the ``c_shared`` artifact existed (store
        format 1) raise :class:`SimulationError` -- recompile the program.
        """
        artifacts = record.get("artifacts", {})
        c_shared = artifacts.get("c_shared")
        if not c_shared:
            raise SimulationError(
                "artifact record has no 'c_shared' artifact "
                "(written by an older store format -- recompile)"
            )
        entry = record["executable"]
        types = {
            name: SignalType(value) for name, value in record["types"].items()
        }
        return cls.from_metadata(
            c_shared,
            name=entry["name"],
            style=GenerationStyle(record["style"]),
            inputs=entry["inputs"],
            outputs=entry["outputs"],
            root_flags=entry["root_flags"],
            types=types,
            cc=cc,
        )

    # -- instantiation -------------------------------------------------------
    def population(self, instances: int) -> "CPopulation":
        return CPopulation(self, instances)

    def process(self) -> "LoadedCProcess":
        """A single-instance executable with the ``CompiledProcess`` step API."""
        return LoadedCProcess(self)


class CPopulation:
    """Columnar state for ``n`` instances of one loaded C program.

    One contiguous byte buffer holds the packed per-instance state structs;
    one :mod:`array` column per input and output signal spans the whole
    population; free-clock presence lives in a root-major byte matrix
    (``roots[r * n + i]``).  A tick is one call into
    ``<name>_step_many`` -- the per-instance loop runs entirely in C.
    """

    def __init__(self, program: SharedCProgram, instances: int):
        if instances <= 0:
            raise ValueError("a population needs at least one instance")
        self.program = program
        self.instances = instances
        self.ticks = 0
        self._states = ctypes.create_string_buffer(
            max(program.state_bytes, 1) * instances
        )
        program._init(self._states, ctypes.c_long(instances))

        def column(signal: str) -> array.array:
            code = _ARRAY_CODES[program.types[signal]]
            return array.array(code, [0] * instances) if code != "d" else array.array(
                code, [0.0] * instances
            )

        self._in_columns = {signal: column(signal) for signal in program.inputs}
        self._out_columns = {signal: column(signal) for signal in program.outputs}
        self._out_present = {
            signal: array.array("B", bytes(instances)) for signal in program.outputs
        }
        self._in_column_list = [self._in_columns[s] for s in program.inputs]
        self._out_column_list = [self._out_columns[s] for s in program.outputs]
        self._out_present_list = [self._out_present[s] for s in program.outputs]
        if program.root_flags:
            self._roots = array.array(
                "B", bytes(len(program.root_flags) * instances)
            )
        else:
            self._roots = None

        # The columns never resize, so the ctypes views over their buffers
        # are built once; a tick is then one C call with prebuilt arguments.
        arguments: List[object] = [self._states, ctypes.c_long(instances)]
        arguments.append(
            (ctypes.c_ubyte * len(self._roots)).from_buffer(self._roots)
            if self._roots is not None
            else None
        )
        for signal in program.inputs:
            arguments.append(
                (_CTYPES[program.types[signal]] * instances).from_buffer(
                    self._in_columns[signal]
                )
            )
        for signal in program.outputs:
            arguments.append(
                (_CTYPES[program.types[signal]] * instances).from_buffer(
                    self._out_columns[signal]
                )
            )
            arguments.append(
                (ctypes.c_ubyte * instances).from_buffer(self._out_present[signal])
            )
        self._call_arguments = arguments

    def reset(self) -> None:
        """Reinitialize every instance's delay registers."""
        self.program._init(self._states, ctypes.c_long(self.instances))
        self.ticks = 0

    def step(
        self, per_instance_inputs: Sequence[Mapping[str, object]]
    ) -> List[Dict[str, object]]:
        """Run one reaction of every instance; return present outputs per instance.

        ``per_instance_inputs`` supplies one mapping per instance: input
        signal values (missing signals default per type) and free-clock
        presence under the root flags' input keys (missing keys take the
        flag's default, exactly like the Python backend's ``inputs.get``).
        """
        roots, columns = self.pack_instant(per_instance_inputs)
        self.step_packed(roots, columns)
        return self.decode_outputs(self.output_snapshot())

    # -- packed columnar drive ----------------------------------------------
    #
    # ``step`` above marshals per-instance dicts every tick, which costs as
    # much Python-side work as just interpreting the generated Python step.
    # The packed path front-loads that marshalling: ``pack_instant`` turns a
    # tick's mappings into raw input columns once, ``step_packed`` is then
    # pure array memcpy plus one C call, and ``output_snapshot`` captures the
    # result columns as bytes so decoding can happen after a timed run.

    def pack_instant(
        self, per_instance_inputs: Sequence[Mapping[str, object]]
    ) -> Tuple[Optional[array.array], List[array.array]]:
        """Marshal one tick's per-instance mappings into raw input columns."""
        n = self.instances
        if len(per_instance_inputs) != n:
            raise ValueError(
                f"expected {n} input mappings, got {len(per_instance_inputs)}"
            )
        program = self.program
        columns: List[array.array] = []
        for signal in program.inputs:
            signal_type = program.types[signal]
            neutral = _coerce_in(default_value(signal_type), signal_type)
            columns.append(
                array.array(
                    _ARRAY_CODES[signal_type],
                    [
                        _coerce_in(mapping.get(signal, neutral), signal_type)
                        for mapping in per_instance_inputs
                    ],
                )
            )
        roots: Optional[array.array] = None
        if self._roots is not None:
            flat: List[int] = []
            for _, key, default in program.root_flags:
                flat.extend(
                    1 if mapping.get(key, default) else 0
                    for mapping in per_instance_inputs
                )
            roots = array.array("B", flat)
        return roots, columns

    def pack_schedule(
        self, per_instance_schedules: Sequence[Sequence[Mapping[str, object]]]
    ) -> List[Tuple[Optional[array.array], List[array.array]]]:
        """Marshal one input schedule per instance into per-tick columns.

        ``per_instance_schedules[i][t]`` is instance ``i``'s input mapping at
        tick ``t`` (the shape :func:`random_input_schedule` produces, one
        schedule per instance).  The result feeds :meth:`step_packed`.
        """
        ticks = min((len(s) for s in per_instance_schedules), default=0)
        return [
            self.pack_instant([schedule[tick] for schedule in per_instance_schedules])
            for tick in range(ticks)
        ]

    def step_packed(
        self,
        roots: Optional[array.array],
        columns: Sequence[array.array],
    ) -> None:
        """Run one reaction from pre-marshalled input columns."""
        if roots is not None:
            self._roots[:] = roots
        for column, data in zip(self._in_column_list, columns):
            column[:] = data
        self.program._step_many(*self._call_arguments)
        self.ticks += 1

    def output_snapshot(self) -> Tuple[List[bytes], List[bytes]]:
        """Raw ``(values, presence)`` bytes of the output columns, per signal."""
        return (
            [column.tobytes() for column in self._out_column_list],
            [presence.tobytes() for presence in self._out_present_list],
        )

    def decode_outputs(
        self, snapshot: Tuple[List[bytes], List[bytes]]
    ) -> List[Dict[str, object]]:
        """Expand an :meth:`output_snapshot` into per-instance output dicts."""
        values_bytes, presence_bytes = snapshot
        program = self.program
        results: List[Dict[str, object]] = [{} for _ in range(self.instances)]
        for signal, raw_values, raw_presence in zip(
            program.outputs, values_bytes, presence_bytes
        ):
            if 1 not in raw_presence:
                continue
            signal_type = program.types[signal]
            values = array.array(_ARRAY_CODES[signal_type], raw_values).tolist()
            if signal_type in (SignalType.BOOLEAN, SignalType.EVENT):
                values = [value != 0 for value in values]
            for index, present in enumerate(raw_presence):
                if present:
                    results[index][signal] = values[index]
        return results


class LoadedCProcess:
    """A single loaded-C instance behind the ``CompiledProcess`` step API.

    Because the C ABI takes inputs positionally, :meth:`step` materializes a
    value for *every* input signal before the reaction: explicit ``inputs``
    first, then the ``oracle``, then the type's neutral default.  An oracle
    passed here is therefore consulted for every input each tick, not only
    for the inputs the clock hierarchy ends up reading -- drive differential
    comparisons with a pre-drawn
    :func:`~repro.runtime.executor.random_input_schedule` rather than a
    shared stateful oracle so both backends see identical values.

    ``observe`` receives the present *outputs* only: internal signals never
    cross the C boundary (that is the point of compiled code).
    """

    def __init__(self, program: SharedCProgram):
        self.program = program
        self.name = program.name
        self.style = program.style
        self.source = program.source
        self.inputs = list(program.inputs)
        self.outputs = list(program.outputs)
        self.root_flags = list(program.root_flags)
        self.types = dict(program.types)
        self.observable = True
        self._population = program.population(1)

    def step(
        self,
        inputs: Optional[Mapping[str, object]] = None,
        oracle=None,
        observe: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        provided = dict(inputs or {})
        instant: Dict[str, object] = {}
        for _, key, default in self.root_flags:
            instant[key] = provided.get(key, default)
        for signal in self.inputs:
            if signal in provided:
                instant[signal] = provided[signal]
            elif oracle is not None:
                instant[signal] = oracle(signal)
            else:
                instant[signal] = default_value(self.types[signal])
        outputs = self._population.step([instant])[0]
        if observe is not None:
            observe.update(outputs)
        return outputs

    def run(self, input_trace, oracle=None) -> List[Dict[str, object]]:
        return [self.step(instant, oracle) for instant in input_trace]

    def reset(self) -> None:
        self._population.reset()

    def fresh(self) -> "LoadedCProcess":
        """A new instance sharing the machine code but not the state."""
        return LoadedCProcess(self.program)


@dataclass
class TickRecord:
    """Present outputs of one population tick, one mapping per instance."""

    outputs: List[Dict[str, object]]

    def present_count(self, signal: str) -> int:
        return sum(1 for outputs in self.outputs if signal in outputs)

    def __len__(self) -> int:
        return len(self.outputs)

    def __iter__(self):
        return iter(self.outputs)

    def __getitem__(self, index: int) -> Dict[str, object]:
        return self.outputs[index]


class MassSimulation:
    """Step many instances of one compiled program per tick.

    ``backend`` selects the execution engine:

    * ``"c"`` -- compile the reentrant C with ``cc -shared`` and step the
      whole population per tick inside the loaded library
      (:class:`CPopulation`); raises when no C toolchain is available;
    * ``"python"`` -- naive per-instance stepping of independent
      :class:`~repro.codegen.python_backend.CompiledProcess` copies (the
      baseline the benchmark gate measures against);
    * ``"auto"`` -- ``"c"`` when a compiler is found, else ``"python"``.

    Both engines implement identical reaction semantics (the differential
    fuzzer enforces this), so ``backend`` is a pure performance choice.
    """

    def __init__(
        self,
        instances: int,
        backend: str,
        population: Optional[CPopulation] = None,
        processes: Optional[List[object]] = None,
    ):
        self.instances = instances
        self.backend = backend
        self._population = population
        self._processes = processes
        self.ticks = 0

    # -- construction --------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result,
        instances: int,
        backend: str = "auto",
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        cc: Optional[str] = None,
    ) -> "MassSimulation":
        """Build a population from a :class:`~repro.compiler.CompilationResult`."""
        chosen = cls._choose_backend(backend, cc)
        if chosen == "c":
            shared = SharedCProgram.from_result(result, style=style, cc=cc)
            return cls(instances, "c", population=shared.population(instances))
        executable = (
            result.executable
            if style is GenerationStyle.HIERARCHICAL
            else result.executable_flat
        )
        if executable is None:
            raise SimulationError(
                "result has no flat executable (compiled without build_flat)"
            )
        processes = [executable.fresh() for _ in range(instances)]
        return cls(instances, "python", processes=processes)

    @classmethod
    def from_record(
        cls,
        record: Mapping[str, object],
        instances: int,
        backend: str = "auto",
        cc: Optional[str] = None,
    ) -> "MassSimulation":
        """Build a population from a persisted artifact record.

        The C backend uses the record's ``c_shared`` artifact; the Python
        backend rehydrates the generated step source -- either way, no
        recompilation of the SIGNAL program happens.
        """
        from ..service.store import executable_from_record

        chosen = cls._choose_backend(backend, cc)
        if chosen == "c":
            shared = SharedCProgram.from_record(record, cc=cc)
            return cls(instances, "c", population=shared.population(instances))
        template = executable_from_record(record)
        processes = [template.fresh() for _ in range(instances)]
        return cls(instances, "python", processes=processes)

    @staticmethod
    def _choose_backend(backend: str, cc: Optional[str]) -> str:
        if backend not in ("auto", "c", "python"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "auto":
            return "c" if (cc or find_c_compiler()) else "python"
        if backend == "c" and not (cc or find_c_compiler()):
            raise SimulationError(
                "backend='c' requested but no C compiler found "
                "(install cc/gcc/clang, set REPRO_CC, or use backend='auto')"
            )
        return backend

    # -- stepping ------------------------------------------------------------
    def _normalize(
        self,
        inputs: Union[Mapping[str, object], Sequence[Mapping[str, object]], None],
    ) -> Sequence[Mapping[str, object]]:
        if inputs is None:
            return [{}] * self.instances
        if isinstance(inputs, Mapping):
            return [inputs] * self.instances
        if len(inputs) != self.instances:
            raise ValueError(
                f"expected {self.instances} input mappings, got {len(inputs)}"
            )
        return inputs

    def step(
        self,
        inputs: Union[Mapping[str, object], Sequence[Mapping[str, object]], None] = None,
    ) -> TickRecord:
        """One reaction of every instance.

        ``inputs`` is a single mapping broadcast to all instances, a
        sequence of one mapping per instance, or ``None`` (type defaults).
        """
        per_instance = self._normalize(inputs)
        if self._population is not None:
            outputs = self._population.step(per_instance)
        else:
            outputs = [
                process.step(dict(instant))
                for process, instant in zip(self._processes, per_instance)
            ]
        self.ticks += 1
        return TickRecord(outputs=outputs)

    def run(
        self,
        schedule: Sequence[
            Union[Mapping[str, object], Sequence[Mapping[str, object]], None]
        ],
    ) -> List[TickRecord]:
        """One :meth:`step` per element of ``schedule``."""
        return [self.step(tick_inputs) for tick_inputs in schedule]

    def reset(self) -> None:
        if self._population is not None:
            self._population.reset()
        else:
            for process in self._processes:
                process.reset()
        self.ticks = 0
