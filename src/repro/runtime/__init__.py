"""Runtime support: traces, the reference interpreter and the reactive executor.

* :mod:`repro.runtime.trace` -- the trace model (presence/absence and values
  per instant) and ASCII timing diagrams in the style of Figures 1-4;
* :mod:`repro.runtime.interpreter` -- an executable form of the kernel's
  stream semantics, used as the *reference* against which generated code is
  checked;
* :mod:`repro.runtime.executor` -- drives a compiled step function with an
  input oracle and records execution traces;
* :mod:`repro.runtime.mass` -- compiles and loads the reentrant C backend
  output (``cc -shared`` + :mod:`ctypes`) and steps whole populations of
  instances per tick over columnar state.
"""

from .trace import ABSENT, Trace, timing_diagram
from .interpreter import KernelInterpreter
from .executor import (
    ExecutionTrace,
    ReactiveExecutor,
    StepRecord,
    random_input_schedule,
    random_oracle,
)
from .mass import (
    CPopulation,
    LoadedCProcess,
    MassSimulation,
    SharedCProgram,
    TickRecord,
    find_c_compiler,
)

__all__ = [
    "ABSENT",
    "Trace",
    "timing_diagram",
    "KernelInterpreter",
    "ExecutionTrace",
    "ReactiveExecutor",
    "StepRecord",
    "random_oracle",
    "random_input_schedule",
    "CPopulation",
    "LoadedCProcess",
    "MassSimulation",
    "SharedCProgram",
    "TickRecord",
    "find_c_compiler",
]
