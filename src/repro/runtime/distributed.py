"""Lock-step execution of a partitioned program across OS processes.

The partitioner (:mod:`repro.lang.partition`) cuts a program into one
kernel program per location plus typed channels at the cuts.  This module
compiles every fragment through the :class:`~repro.service.service.
CompilationService` (the modular path by default, so fragments sharing
modules dedupe against the fleet-wide unit cache) and advances the
fragments **instant by instant**:

* each instant, fragments step in the topological order of the location
  graph; a channel carries, per instant, the pair (presence, value) of
  every cut signal -- absence is transmitted explicitly as a missing key,
  so the consumer's clocks see exactly what the monolithic program saw;
* free clocks of a fragment are resolved from two sources: classes
  containing a channel signal take their presence from the producer
  ("did the value arrive this instant"), all other classes map back onto
  a free clock of the *monolithic* program and read the driving schedule
  directly.  A fragment clock that is neither is constrained at another
  location -- the partition is rejected when the harness is built;
* :meth:`DistributedProgram.run` steps everything inside one process (the
  deterministic baseline); :meth:`DistributedProgram.run_multiprocess`
  spawns one OS process per fragment, wires the channels as
  :func:`multiprocessing.Pipe` pairs, and drives the children over a
  control pipe.  Children are always reaped: the parent sends a shutdown
  sentinel, joins, and terminates stragglers even on ``KeyboardInterrupt``
  or ``SIGTERM``.

The wire format on every pipe is one picklable dict per instant:
``{"inputs": {...}, "flags": {...}}`` parent-to-child, ``{signal: value}``
(present signals only) child-to-parent and on every channel pipe.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import PartitionError
from ..lang.ast import Process
from ..lang.kernel import KernelProgram, normalize
from ..lang.parser import parse_process
from ..lang.partition import Fragment, PartitionedProgram, partition_program
from ..lang.types import SignalType

__all__ = [
    "FragmentRuntime",
    "DistributedProgram",
    "build_distributed",
]


def _serialize_atoms(atoms) -> List[Tuple[str, str]]:
    """Clock atoms as ``(kind, signal)`` pairs (mirrors the unit records)."""
    from ..clocks.algebra import CondFalse, CondTrue, SignalClock

    serialized: List[Tuple[str, str]] = []
    for atom in atoms:
        if isinstance(atom, SignalClock):
            serialized.append(("signal", atom.signal))
        elif isinstance(atom, CondTrue):
            serialized.append(("cond_true", atom.signal))
        elif isinstance(atom, CondFalse):
            serialized.append(("cond_false", atom.signal))
    return serialized


def _root_flag_atoms(result) -> List[List[Tuple[str, str]]]:
    """Atom sets of the free classes behind ``result.executable.root_flags``.

    Aligned index-by-index with the executable's root-flag list.  Works for
    both monolithic results (read off the clock hierarchy) and linked
    modular results (read off the per-unit records, renamed back to the
    program's signal names).
    """
    hierarchy = getattr(result, "hierarchy", None)
    if hierarchy is not None:
        return [
            _serialize_atoms(c.atoms)
            for c in hierarchy.free_classes()
            if not c.is_null
        ]
    units = getattr(result, "units", None) or []
    records = getattr(result, "unit_records", None) or []
    if len(units) != len(records) or not units:
        raise PartitionError(
            "cannot recover free-clock membership from a record-backed "
            "linked result; rebuild the distributed harness with a live "
            "compilation service"
        )
    atoms_per_flag: List[List[Tuple[str, str]]] = []
    for unit, record in zip(units, records):
        rename = unit.from_canonical
        by_id = {free["id"]: free["atoms"] for free in record["free_classes"]}
        payload = next(iter(record["ir"].values()))
        for cid, _key, _default in payload["root_flags"]:
            atoms_per_flag.append(
                [(kind, rename.get(signal, signal)) for kind, signal in by_id[cid]]
            )
    return atoms_per_flag


@dataclass
class FragmentRuntime:
    """One compiled fragment plus its channel wiring and clock plans."""

    fragment: Fragment
    result: object
    #: per root flag of the fragment executable: ``("channel", members)`` or
    #: ``("external", monolithic_key)``
    flag_plans: List[Tuple[str, str, object]] = field(default_factory=list)
    #: channel outputs grouped by consumer location, in topological order
    sends: List[Tuple[str, List[str]]] = field(default_factory=list)

    @property
    def location(self) -> str:
        return self.fragment.location

    @property
    def executable(self):
        return self.result.executable

    def worker_payload(self) -> dict:
        """Everything a child process needs to rebuild and run the step."""
        executable = self.executable
        return {
            "source": executable.source,
            "name": executable.name,
            "style": executable.style.value,
            "inputs": list(executable.inputs),
            "outputs": list(executable.outputs),
            "root_flags": [list(flag) for flag in executable.root_flags],
            "types": {name: t.value for name, t in executable.types.items()},
            "flag_plans": list(self.flag_plans),
            "sends": [(consumer, list(signals)) for consumer, signals in self.sends],
        }


@dataclass
class DistributedProgram:
    """A partitioned program, compiled per fragment and ready to run."""

    partitioned: PartitionedProgram
    #: monolithic reference compilation (drives schedules and external clocks)
    reference: object
    runtimes: List[FragmentRuntime]

    @property
    def program(self) -> KernelProgram:
        return self.partitioned.program

    @property
    def locations(self) -> List[str]:
        return [runtime.location for runtime in self.runtimes]

    def interpreter(self):
        """A fresh reference interpreter for the unsplit program."""
        return self.reference.interpreter()

    # -- stepping (shared by both execution modes) -------------------------
    def _fragment_inputs(
        self,
        runtime: FragmentRuntime,
        instant: Mapping[str, object],
        channel_env: Mapping[str, object],
    ) -> Dict[str, object]:
        values: Dict[str, object] = {}
        for name in runtime.fragment.external_inputs:
            if name in instant:
                values[name] = instant[name]
        for name in runtime.fragment.channel_inputs:
            if name in channel_env:
                values[name] = channel_env[name]
        for (key, kind, payload), _flag in zip(
            runtime.flag_plans, runtime.executable.root_flags
        ):
            if kind == "channel":
                values[key] = any(member in channel_env for member in payload)
            else:
                values[key] = bool(instant.get(payload, False))
        return values

    def run(self, schedule: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
        """Step every fragment in one process, instant by instant.

        ``schedule`` is a monolithic driving schedule (input values plus
        presence booleans for the monolithic program's free clocks, as
        produced by :func:`repro.runtime.executor.random_input_schedule`
        for the reference compilation).  Returns, per instant, the present
        *program* outputs of the composite system.
        """
        steps = [runtime.executable.fresh() for runtime in self.runtimes]
        program_outputs = set(self.program.outputs)
        composite: List[Dict[str, object]] = []
        for instant in schedule:
            channel_env: Dict[str, object] = {}
            observed: Dict[str, object] = {}
            for runtime, step in zip(self.runtimes, steps):
                outputs = step.step(
                    self._fragment_inputs(runtime, instant, channel_env)
                )
                for name in runtime.fragment.channel_outputs:
                    if name in outputs:
                        channel_env[name] = outputs[name]
                for name, value in outputs.items():
                    if name in program_outputs:
                        observed[name] = value
            composite.append(observed)
        return composite

    # -- multi-process execution -------------------------------------------
    def run_multiprocess(
        self,
        schedule: Sequence[Mapping[str, object]],
        join_timeout: float = 10.0,
    ) -> List[Dict[str, object]]:
        """Like :meth:`run`, with one OS process per fragment.

        Channels are anonymous pipes wired producer-to-consumer; the parent
        only distributes the external schedule and collects outputs.
        Children are reaped on every exit path, including
        ``KeyboardInterrupt``.
        """
        context = multiprocessing.get_context("spawn")
        # One control pipe per fragment, one data pipe per channel pair.
        channel_pipes: Dict[Tuple[str, str], Tuple] = {}
        for runtime in self.runtimes:
            for consumer, _signals in runtime.sends:
                receive_end, send_end = context.Pipe(duplex=False)
                channel_pipes[(runtime.location, consumer)] = (receive_end, send_end)

        children: List = []
        controls: List = []
        program_outputs = set(self.program.outputs)
        try:
            for runtime in self.runtimes:
                parent_end, child_end = context.Pipe()
                in_conns = [
                    receive_end
                    for (producer, consumer), (receive_end, _s) in channel_pipes.items()
                    if consumer == runtime.location
                ]
                out_conns = [
                    (channel_pipes[(runtime.location, consumer)][1], signals)
                    for consumer, signals in runtime.sends
                ]
                child = context.Process(
                    target=_fragment_worker,
                    args=(child_end, in_conns, out_conns, runtime.worker_payload()),
                    daemon=True,
                    name=f"repro-frag-{runtime.location}",
                )
                child.start()
                child_end.close()
                children.append(child)
                controls.append(parent_end)
            # The parent keeps the channel send-ends open only inside the
            # producing child; close its copies so EOF propagates.
            for receive_end, send_end in channel_pipes.values():
                send_end.close()
                receive_end.close()

            composite: List[Dict[str, object]] = []
            for instant in schedule:
                for runtime, control in zip(self.runtimes, controls):
                    external = {
                        name: instant[name]
                        for name in runtime.fragment.external_inputs
                        if name in instant
                    }
                    flags = {
                        key: bool(instant.get(payload, False))
                        for key, kind, payload in runtime.flag_plans
                        if kind == "external"
                    }
                    control.send({"inputs": external, "flags": flags})
                observed: Dict[str, object] = {}
                for control in controls:
                    outputs = control.recv()
                    for name, value in outputs.items():
                        if name in program_outputs:
                            observed[name] = value
                composite.append(observed)
            return composite
        finally:
            for control in controls:
                try:
                    control.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for child in children:
                child.join(timeout=join_timeout)
            for child in children:
                if child.is_alive():
                    child.terminate()
                    child.join(timeout=join_timeout)
            for control in controls:
                control.close()


def _fragment_worker(control, in_conns, out_conns, payload) -> None:
    """Child process body: rebuild the step, then loop until shutdown.

    Exits cleanly on the ``None`` sentinel, on control-pipe EOF (parent
    died) and on ``KeyboardInterrupt``/``SIGTERM`` -- the parent's reaper
    then joins it without force.
    """
    from ..codegen.ir import GenerationStyle
    from ..codegen.python_backend import CompiledProcess

    executable = CompiledProcess.from_generated_source(
        source=payload["source"],
        name=payload["name"],
        style=GenerationStyle(payload["style"]),
        inputs=payload["inputs"],
        outputs=payload["outputs"],
        root_flags=[tuple(flag) for flag in payload["root_flags"]],
        types={name: SignalType(value) for name, value in payload["types"].items()},
    )
    channel_plans = [
        (key, members) for key, kind, members in payload["flag_plans"]
        if kind == "channel"
    ]
    try:
        while True:
            try:
                message = control.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            values = dict(message["inputs"])
            values.update(message["flags"])
            arrived: Dict[str, object] = {}
            for conn in in_conns:
                arrived.update(conn.recv())
            values.update(arrived)
            for key, members in channel_plans:
                values[key] = any(member in arrived for member in members)
            outputs = executable.step(values)
            for conn, signals in out_conns:
                conn.send({s: outputs[s] for s in signals if s in outputs})
            control.send(outputs)
    except KeyboardInterrupt:
        pass
    finally:
        control.close()


def _plan_fragment_flags(
    runtime_result,
    fragment: Fragment,
    monolithic_atoms_by_key: Dict[Tuple[str, str], str],
) -> List[Tuple[str, str, object]]:
    """Decide, per fragment free clock, where its presence comes from."""
    plans: List[Tuple[str, str, object]] = []
    channel_inputs = set(fragment.channel_inputs)
    atoms_per_flag = _root_flag_atoms(runtime_result)
    root_flags = runtime_result.executable.root_flags
    if len(atoms_per_flag) != len(root_flags):  # pragma: no cover - invariant
        raise PartitionError(
            f"fragment {fragment.location!r}: free-clock metadata out of sync"
        )
    for (cid, key, _default), atoms in zip(root_flags, atoms_per_flag):
        members = [
            signal for kind, signal in atoms
            if kind == "signal" and signal in channel_inputs
        ]
        if members:
            plans.append((key, "channel", members))
            continue
        monolithic_key = None
        for atom in atoms:
            monolithic_key = monolithic_atoms_by_key.get(atom)
            if monolithic_key is not None:
                break
        if monolithic_key is None:
            names = ", ".join(signal for _kind, signal in atoms) or key
            raise PartitionError(
                f"fragment {fragment.location!r}: the clock of {names} is free"
                " locally but constrained at another location; co-locate the"
                " constraint or annotate the signals explicitly"
            )
        plans.append((key, "external", monolithic_key))
    return plans


def build_distributed(
    source: Optional[str] = None,
    process: Optional[Process] = None,
    program: Optional[KernelProgram] = None,
    service=None,
    style=None,
    modular: bool = True,
) -> DistributedProgram:
    """Partition, compile and wire a program for distributed execution.

    The monolithic program is compiled once (the reference for schedules
    and differential checks), each fragment once through ``service`` --
    by default the modular path, so fragments reuse fleet-wide unit
    artifacts.  Raises :class:`~repro.errors.PartitionError` when the cut
    cannot be executed lock-step.
    """
    from ..codegen.ir import GenerationStyle
    from ..service.service import CompilationService

    if style is None:
        style = GenerationStyle.HIERARCHICAL
    if program is None:
        if process is None:
            if source is None:
                raise ValueError("provide source, process or program")
            process = parse_process(source)
        program = normalize(process)
    if process is None:
        process = Process(name=program.name)

    owns_service = service is None
    if owns_service:
        service = CompilationService()
    try:
        partitioned = partition_program(program)
        reference = service.compile_process(process, style=style, program=program)
        monolithic_atoms_by_key: Dict[Tuple[str, str], str] = {}
        for (cid, key, _default), atoms in zip(
            reference.executable.root_flags, _root_flag_atoms(reference)
        ):
            for atom in atoms:
                monolithic_atoms_by_key[atom] = key

        consumer_order = {loc: i for i, loc in enumerate(partitioned.assignment.locations)}
        runtimes: List[FragmentRuntime] = []
        for fragment in partitioned.fragments:
            stub = Process(name=fragment.program.name)
            if modular:
                result = service.compile_modular(
                    process=stub, program=fragment.program, style=style
                )
            else:
                result = service.compile_process(
                    stub, style=style, program=fragment.program
                )
            sends: Dict[str, List[str]] = {}
            for channel in partitioned.channels:
                if channel.producer == fragment.location:
                    sends[channel.consumer] = [s.name for s in channel.signals]
            runtimes.append(
                FragmentRuntime(
                    fragment=fragment,
                    result=result,
                    flag_plans=_plan_fragment_flags(
                        result, fragment, monolithic_atoms_by_key
                    ),
                    sends=sorted(
                        sends.items(), key=lambda item: consumer_order[item[0]]
                    ),
                )
            )
        return DistributedProgram(
            partitioned=partitioned, reference=reference, runtimes=runtimes
        )
    finally:
        if owns_service:
            service.close()
