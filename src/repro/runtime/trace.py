"""Traces of synchronized signals.

A *trace* records, for a finite prefix of instants, which signals are
present and with which value.  Absence is represented by the dedicated
:data:`ABSENT` sentinel so that ``None``/``False`` remain valid signal
values.  The module also renders ASCII timing diagrams in the style of the
paper's Figures 1-4.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["ABSENT", "Absent", "Trace", "timing_diagram"]


class Absent:
    """Singleton marking the absence of a signal at an instant."""

    _instance: Optional["Absent"] = None

    def __new__(cls) -> "Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ABSENT"

    def __bool__(self) -> bool:
        return False


#: The unique absence marker.
ABSENT = Absent()


class Trace:
    """A finite trace: one mapping of present signals to values per instant."""

    def __init__(self, instants: Optional[Iterable[Mapping[str, object]]] = None):
        self.instants: List[Dict[str, object]] = [dict(i) for i in (instants or [])]

    # -- construction ------------------------------------------------------
    def append(self, instant: Mapping[str, object]) -> None:
        self.instants.append(dict(instant))

    @classmethod
    def from_columns(cls, columns: Mapping[str, Sequence[object]]) -> "Trace":
        """Build a trace from per-signal value sequences (``ABSENT`` for holes)."""
        length = max((len(v) for v in columns.values()), default=0)
        trace = cls()
        for index in range(length):
            instant: Dict[str, object] = {}
            for name, values in columns.items():
                if index < len(values) and values[index] is not ABSENT:
                    instant[name] = values[index]
            trace.append(instant)
        return trace

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instants)

    def __getitem__(self, index: int) -> Dict[str, object]:
        return self.instants[index]

    def __iter__(self):
        return iter(self.instants)

    def signals(self) -> List[str]:
        names: List[str] = []
        for instant in self.instants:
            for name in instant:
                if name not in names:
                    names.append(name)
        return names

    def column(self, signal: str) -> List[object]:
        """The sequence of values of a signal, with ``ABSENT`` holes."""
        return [instant.get(signal, ABSENT) for instant in self.instants]

    def values(self, signal: str) -> List[object]:
        """The sequence of *present* values of a signal (its flow)."""
        return [instant[signal] for instant in self.instants if signal in instant]

    def presence(self, signal: str) -> List[bool]:
        return [signal in instant for instant in self.instants]

    def is_synchronous(self, first: str, second: str) -> bool:
        """Whether two signals are present at exactly the same instants."""
        return self.presence(first) == self.presence(second)

    def restrict(self, signals: Iterable[str]) -> "Trace":
        keep = set(signals)
        return Trace(
            {name: value for name, value in instant.items() if name in keep}
            for instant in self.instants
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.instants == other.instants

    def __repr__(self) -> str:
        return f"Trace({len(self.instants)} instants, signals={self.signals()})"


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "t" if value else "f"
    return str(value)


def timing_diagram(trace: Trace, signals: Optional[Sequence[str]] = None) -> str:
    """Render a trace as an ASCII timing diagram (Figures 1-4 style).

    Each signal is one row; absent instants are shown as ``.``.
    """
    names = list(signals) if signals is not None else trace.signals()
    if not names:
        return "(empty trace)"
    cells: Dict[str, List[str]] = {}
    for name in names:
        cells[name] = [
            _format_value(instant[name]) if name in instant else "."
            for instant in trace.instants
        ]
    width = max((len(c) for row in cells.values() for c in row), default=1)
    name_width = max(len(n) for n in names)
    lines = []
    for name in names:
        row = " ".join(c.rjust(width) for c in cells[name])
        lines.append(f"{name.rjust(name_width)} : {row}")
    return "\n".join(lines)
