"""Reactive execution of compiled processes.

The executor drives a :class:`~repro.codegen.python_backend.CompiledProcess`
for a number of reactions, fetching input values from an *oracle* (the
generated code decides, from its clock hierarchy and its state, which inputs
it needs at each reaction -- the oracle only supplies values).  Every
reaction is recorded, which gives the differential-testing harness the exact
presence/value information it needs to replay the run on the reference
interpreter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..codegen.python_backend import CompiledProcess
from ..lang.types import SignalType
from .trace import Trace

__all__ = [
    "StepRecord",
    "ExecutionTrace",
    "ReactiveExecutor",
    "random_oracle",
    "random_input_schedule",
]


@dataclass
class StepRecord:
    """Everything observed during one reaction of the compiled process."""

    inputs: Dict[str, object]
    outputs: Dict[str, object]
    observations: Dict[str, object] = field(default_factory=dict)

    def present_signals(self) -> List[str]:
        return sorted(self.observations.keys())


@dataclass
class ExecutionTrace:
    """A sequence of reaction records."""

    steps: List[StepRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __getitem__(self, index: int) -> StepRecord:
        return self.steps[index]

    def outputs(self) -> Trace:
        return Trace(step.outputs for step in self.steps)

    def observations(self) -> Trace:
        return Trace(step.observations for step in self.steps)

    def inputs(self) -> Trace:
        return Trace(step.inputs for step in self.steps)


def random_oracle(
    types: Mapping[str, SignalType],
    seed: Union[int, random.Random] = 0,
    integer_range: Sequence[int] = (-10, 10),
) -> Callable[[str], object]:
    """An oracle producing reproducible pseudo-random input values by type.

    ``seed`` may be an integer or directly a ``random.Random`` instance.
    Passing one explicit generator end-to-end lets the fuzz harness derive
    every random decision of a test case from a single reported seed.
    """
    generator = seed if isinstance(seed, random.Random) else random.Random(seed)
    low, high = integer_range

    def oracle(signal: str) -> object:
        signal_type = types.get(signal, SignalType.INTEGER)
        if signal_type in (SignalType.BOOLEAN, SignalType.EVENT):
            return generator.choice([True, False])
        if signal_type is SignalType.INTEGER:
            return generator.randint(low, high)
        return round(generator.uniform(low, high), 3)

    return oracle


def random_input_schedule(
    types: Mapping[str, SignalType],
    inputs: Sequence[str],
    root_flags: Sequence[Sequence[object]] = (),
    steps: int = 1,
    seed: Union[int, random.Random] = 0,
    integer_range: Sequence[int] = (-10, 10),
    presence_rate: float = 0.75,
) -> List[Dict[str, object]]:
    """Pre-drawn *complete* input assignments, one mapping per reaction.

    Unlike an oracle (queried lazily for exactly the inputs the generated
    code decides to read), a schedule fixes every input value and every
    free-clock presence flag up front.  That is what makes backends with
    different consumption orders comparable: the Python step pulls values
    on demand, the loaded C consumes whole columns positionally, and both
    see the same assignment when driven from one schedule.  Free clocks are
    present with probability ``presence_rate`` (absent ticks are part of
    the semantics and must be exercised).
    """
    generator = seed if isinstance(seed, random.Random) else random.Random(seed)
    oracle = random_oracle(types, generator, integer_range)
    schedule: List[Dict[str, object]] = []
    for _ in range(steps):
        instant: Dict[str, object] = {}
        for flag in root_flags:
            _, key, _default = flag
            instant[key] = generator.random() < presence_rate
        for signal in inputs:
            instant[signal] = oracle(signal)
        schedule.append(instant)
    return schedule


class ReactiveExecutor:
    """Drives a compiled process and records its reactions."""

    def __init__(self, process: CompiledProcess):
        self.process = process

    def run(
        self,
        steps: int,
        oracle: Optional[Callable[[str], object]] = None,
        inputs_per_step: Optional[Sequence[Mapping[str, object]]] = None,
    ) -> ExecutionTrace:
        """Run ``steps`` reactions.

        ``inputs_per_step`` optionally provides explicit input values for
        some reactions; the oracle covers everything else the program asks
        for.  Input values actually consumed are recorded per reaction.
        """
        trace = ExecutionTrace()
        for index in range(steps):
            provided = dict(inputs_per_step[index]) if inputs_per_step else {}
            consumed: Dict[str, object] = {}

            def recording_oracle(signal: str) -> object:
                if signal in provided:
                    value = provided[signal]
                elif oracle is not None:
                    value = oracle(signal)
                else:
                    raise KeyError(f"no oracle and no value for input {signal!r}")
                consumed[signal] = value
                return value

            observations: Dict[str, object] = {}
            # Values of input *signals* are routed through the recording
            # oracle (so that exactly the consumed inputs are recorded);
            # non-signal keys (free-clock presence flags) are passed directly.
            direct = {
                key: value
                for key, value in provided.items()
                if key not in self.process.inputs
            }
            outputs = self.process.step(direct, oracle=recording_oracle, observe=observations)
            trace.steps.append(
                StepRecord(inputs=consumed, outputs=outputs, observations=observations)
            )
        return trace
