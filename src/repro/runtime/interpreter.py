"""Reference interpreter of kernel processes (executable stream semantics).

The interpreter implements the denotational semantics of the five kernel
operators directly, *without* using the clock calculus: at every instant it
propagates presence/absence and values through the equations until a fixed
point is reached.  It is deliberately independent from the compiler pipeline
so that generated code can be checked against it (differential testing), and
it reproduces the timing diagrams of Figures 1-4.

Presence is three-valued during the fixpoint (present / absent / unknown).
The propagation rules follow the kernel semantics:

* ``Y := f(X1..Xn)``     -- all signals present together, absent together;
* ``ZX := X $ 1``        -- ``ZX`` and ``X`` present together; the value of
  ``ZX`` is the register (previous value of ``X``);
* ``X := U when C``      -- ``X`` present iff ``U`` present, ``C`` present
  and ``C`` true;
* ``X := U default V``   -- ``X`` present iff ``U`` or ``V`` present; value
  of ``U`` if present, else value of ``V``;
* ``synchro {...}``      -- all present together, absent together.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..errors import SimulationError
from ..lang.kernel import (
    KernelDefault,
    KernelDelay,
    KernelFunction,
    KernelProgram,
    KernelSynchro,
    KernelWhen,
    Literal,
    Operand,
)
from ..lang.types import SignalType, default_value
from .trace import ABSENT, Trace

__all__ = ["KernelInterpreter"]


_PRESENT = "present"
_ABSENT = "absent"
_UNKNOWN = "unknown"


class KernelInterpreter:
    """Step-by-step interpreter of a kernel program."""

    def __init__(self, program: KernelProgram, types: Mapping[str, SignalType]):
        self.program = program
        self.types = dict(types)
        # One register per delay, keyed by the delay target.
        self._registers: Dict[str, object] = {}
        self._delays: List[KernelDelay] = []
        for process in program.processes:
            if isinstance(process, KernelDelay):
                initial = process.initial
                if initial is None:
                    initial = default_value(self.types[process.target])
                self._registers[process.target] = initial
                self._delays.append(process)
        self.instant_index = 0

    # -- state ------------------------------------------------------------
    def reset(self) -> None:
        for process in self._delays:
            initial = process.initial
            if initial is None:
                initial = default_value(self.types[process.target])
            self._registers[process.target] = initial
        self.instant_index = 0

    def register_value(self, delayed_signal: str) -> object:
        return self._registers[delayed_signal]

    # -- operator evaluation -----------------------------------------------------
    @staticmethod
    def _apply(operator: str, values: Sequence[object], result_type: SignalType) -> object:
        if operator == "id":
            return values[0]
        if operator == "event":
            return True
        if operator == "not":
            return not values[0]
        if operator == "-" and len(values) == 1:
            return -values[0]  # type: ignore[operator]
        if operator == "and":
            return bool(values[0]) and bool(values[1])
        if operator == "or":
            return bool(values[0]) or bool(values[1])
        if operator == "xor":
            return bool(values[0]) != bool(values[1])
        if operator == "=":
            return values[0] == values[1]
        if operator == "/=":
            return values[0] != values[1]
        if operator == "<":
            return values[0] < values[1]  # type: ignore[operator]
        if operator == "<=":
            return values[0] <= values[1]  # type: ignore[operator]
        if operator == ">":
            return values[0] > values[1]  # type: ignore[operator]
        if operator == ">=":
            return values[0] >= values[1]  # type: ignore[operator]
        if operator == "+":
            return values[0] + values[1]  # type: ignore[operator]
        if operator == "-":
            return values[0] - values[1]  # type: ignore[operator]
        if operator == "*":
            return values[0] * values[1]  # type: ignore[operator]
        if operator == "/":
            if result_type is SignalType.INTEGER:
                return values[0] // values[1]  # type: ignore[operator]
            return values[0] / values[1]  # type: ignore[operator]
        if operator == "modulo":
            return values[0] % values[1]  # type: ignore[operator]
        raise SimulationError(f"unknown operator {operator!r}")

    # -- one reaction -----------------------------------------------------------------
    def step(
        self,
        inputs: Optional[Mapping[str, object]] = None,
        present: Iterable[str] = (),
        absent: Iterable[str] = (),
        unknown_as_absent: bool = False,
    ) -> Dict[str, object]:
        """Execute one instant.

        ``inputs`` maps *present* input signals to their value; input signals
        not mentioned are absent.  ``present``/``absent`` assert the presence
        status of additional signals (used when the environment, rather than
        an input value, fixes a clock -- e.g. the free master clock of the
        ALARM example).  Returns the mapping of all present signals to their
        value at this instant.
        """
        inputs = dict(inputs or {})
        status: Dict[str, str] = {name: _UNKNOWN for name in self.program.signals}
        values: Dict[str, object] = {}

        def set_status(name: str, new_status: str) -> bool:
            if status[name] == new_status:
                return False
            if status[name] != _UNKNOWN:
                raise SimulationError(
                    f"clock contradiction on signal {name!r} at instant {self.instant_index}: "
                    f"{status[name]} vs {new_status}"
                )
            status[name] = new_status
            return True

        def set_value(name: str, value: object) -> bool:
            changed = set_status(name, _PRESENT)
            if name not in values:
                values[name] = value
                return True
            if values[name] != value:
                raise SimulationError(
                    f"conflicting values for signal {name!r} at instant {self.instant_index}"
                )
            return changed

        # Seed with the inputs and the explicit presence assertions.
        for name in self.program.inputs:
            if name in inputs:
                set_value(name, inputs[name])
            elif name not in present:
                set_status(name, _ABSENT)
        for name, value in inputs.items():
            if name not in self.program.inputs:
                raise SimulationError(f"{name!r} is not an input signal")
        for name in present:
            set_status(name, _PRESENT)
        for name in absent:
            set_status(name, _ABSENT)

        def operand_ready(operand: Operand) -> bool:
            return isinstance(operand, Literal) or operand in values

        def operand_value(operand: Operand) -> object:
            if isinstance(operand, Literal):
                return operand.value
            return values[operand]

        # Fixpoint propagation.
        changed = True
        iterations = 0
        limit = 10 * (len(self.program.signals) + len(self.program.processes) + 1)
        while changed:
            changed = False
            iterations += 1
            if iterations > limit:  # pragma: no cover - safety net
                raise SimulationError("interpreter did not reach a fixpoint")
            for process in self.program.processes:
                if isinstance(process, KernelFunction):
                    changed |= self._step_function(process, status, values, set_status, set_value, operand_ready, operand_value)
                elif isinstance(process, KernelDelay):
                    changed |= self._step_delay(process, status, set_status, set_value)
                elif isinstance(process, KernelWhen):
                    changed |= self._step_when(process, status, values, set_status, set_value, operand_ready, operand_value)
                elif isinstance(process, KernelDefault):
                    changed |= self._step_default(process, status, values, set_status, set_value, operand_ready, operand_value)
                elif isinstance(process, KernelSynchro):
                    changed |= self._step_synchro(process, status, set_status)

        undetermined = [name for name, state in status.items() if state == _UNKNOWN]
        if undetermined:
            if unknown_as_absent:
                for name in undetermined:
                    status[name] = _ABSENT
            else:
                raise SimulationError(
                    "presence of signals "
                    + ", ".join(sorted(undetermined))
                    + f" is not determined by the environment at instant {self.instant_index}"
                )

        # Check that every present signal received a value.
        for name, state in status.items():
            if state == _PRESENT and name not in values:
                raise SimulationError(
                    f"signal {name!r} is present but has no value at instant {self.instant_index}"
                )

        # Advance the delay registers for the sources that were present.
        for process in self._delays:
            if status.get(process.source) == _PRESENT:
                self._registers[process.target] = values[process.source]

        self.instant_index += 1
        return dict(values)

    # -- per-operator propagation -----------------------------------------------------
    def _check_group(self, group, statuses) -> None:
        if _PRESENT in statuses and _ABSENT in statuses:
            raise SimulationError(
                "synchronization violated among signals "
                + ", ".join(sorted(group))
                + f" at instant {self.instant_index}"
            )

    def _step_function(self, process, status, values, set_status, set_value, operand_ready, operand_value) -> bool:
        changed = False
        names = [op for op in process.operands if not isinstance(op, Literal)]
        group = names + [process.target]
        statuses = {status[name] for name in group}
        self._check_group(group, statuses)
        if _PRESENT in statuses:
            for name in group:
                if status[name] == _UNKNOWN:
                    changed |= set_status(name, _PRESENT)
        if _ABSENT in statuses:
            for name in group:
                if status[name] == _UNKNOWN:
                    changed |= set_status(name, _ABSENT)
        # Compute the value only once the target is known present.  A
        # function whose operands are all literals (a constant subexpression
        # like ``(0 - 3)``) is value-ready at every instant; evaluating it
        # eagerly would force it present through ``set_value`` and violate
        # the synchronization with its consumers on instants where its
        # clock is absent.  For functions with signal operands the gate
        # changes nothing: a valued operand is present, so the group
        # propagation above has already marked the target present.
        if status[process.target] == _PRESENT and all(operand_ready(op) for op in process.operands):
            result = self._apply(
                process.operator,
                [operand_value(op) for op in process.operands],
                self.types[process.target],
            )
            if process.target not in values:
                changed |= set_value(process.target, result)
        return changed

    def _step_delay(self, process, status, set_status, set_value) -> bool:
        changed = False
        pair = (process.target, process.source)
        statuses = {status[name] for name in pair}
        self._check_group(pair, statuses)
        if _PRESENT in statuses:
            for name in pair:
                if status[name] == _UNKNOWN:
                    changed |= set_status(name, _PRESENT)
        if _ABSENT in statuses:
            for name in pair:
                if status[name] == _UNKNOWN:
                    changed |= set_status(name, _ABSENT)
        if status[process.target] == _PRESENT:
            changed |= set_value(process.target, self._registers[process.target])
        return changed

    def _step_when(self, process, status, values, set_status, set_value, operand_ready, operand_value) -> bool:
        changed = False
        target, condition = process.target, process.condition
        source = process.source
        source_is_signal = not isinstance(source, Literal)

        condition_true: Optional[bool] = None
        if status[condition] == _ABSENT:
            condition_true = False
        elif condition in values:
            condition_true = bool(values[condition])

        source_present: Optional[bool] = None
        if not source_is_signal:
            source_present = True
        elif status[source] == _PRESENT:
            source_present = True
        elif status[source] == _ABSENT:
            source_present = False

        if condition_true is False or source_present is False:
            if status[target] == _UNKNOWN:
                changed |= set_status(target, _ABSENT)
        if condition_true is True and source_present is True:
            if status[target] == _UNKNOWN:
                changed |= set_status(target, _PRESENT)
            if operand_ready(source) and target not in values:
                changed |= set_value(target, operand_value(source))

        # Reverse propagation: if the target is known present, then the source
        # is present and the condition is present and true.
        if status[target] == _PRESENT:
            if source_is_signal and status[source] == _UNKNOWN:
                changed |= set_status(source, _PRESENT)
            if status[condition] == _UNKNOWN:
                changed |= set_status(condition, _PRESENT)
        return changed

    def _step_default(self, process, status, values, set_status, set_value, operand_ready, operand_value) -> bool:
        changed = False
        target = process.target
        left, right = process.left, process.right
        left_is_signal = not isinstance(left, Literal)
        right_is_signal = not isinstance(right, Literal)

        left_status = status[left] if left_is_signal else _PRESENT
        right_status = status[right] if right_is_signal else _PRESENT

        if left_status == _PRESENT or right_status == _PRESENT:
            if status[target] == _UNKNOWN:
                changed |= set_status(target, _PRESENT)
        if left_status == _ABSENT and right_status == _ABSENT:
            if status[target] == _UNKNOWN:
                changed |= set_status(target, _ABSENT)
        if status[target] == _ABSENT:
            if left_is_signal and status[left] == _UNKNOWN:
                changed |= set_status(left, _ABSENT)
            if right_is_signal and status[right] == _UNKNOWN:
                changed |= set_status(right, _ABSENT)

        if status[target] != _ABSENT and target not in values:
            if left_status == _PRESENT and operand_ready(left):
                changed |= set_value(target, operand_value(left))
            elif left_status == _ABSENT and right_status == _PRESENT and operand_ready(right):
                changed |= set_value(target, operand_value(right))
        return changed

    def _step_synchro(self, process, status, set_status) -> bool:
        changed = False
        statuses = {status[name] for name in process.signals}
        self._check_group(process.signals, statuses)
        if _PRESENT in statuses:
            for name in process.signals:
                if status[name] == _UNKNOWN:
                    changed |= set_status(name, _PRESENT)
        if _ABSENT in statuses:
            for name in process.signals:
                if status[name] == _UNKNOWN:
                    changed |= set_status(name, _ABSENT)
        return changed

    # -- convenience --------------------------------------------------------------------
    def run(
        self,
        input_trace: Iterable[Mapping[str, object]],
        present: Iterable[Iterable[str]] = (),
        unknown_as_absent: bool = False,
    ) -> Trace:
        """Run one instant per element of ``input_trace`` and collect a trace."""
        presence_list = list(present)
        result = Trace()
        for index, instant in enumerate(input_trace):
            asserted = presence_list[index] if index < len(presence_list) else ()
            result.append(
                self.step(instant, present=asserted, unknown_as_absent=unknown_as_absent)
            )
        return result
