"""Disk-backed persistence of compile-cache entries (the *artifact store*).

The store gives the compilation daemon a warm start: every compilation is
serialized to a JSON *artifact record* keyed by the same identity as the
in-memory compile cache -- the normalized kernel fingerprint plus the
code-generation options -- so a restarted daemon answers repeat compiles
from disk without re-running the pipeline.

What persists and what does not
-------------------------------

A full :class:`~repro.compiler.CompilationResult` cannot round-trip through
JSON: the clock hierarchy, dependency graph and schedule hold BDD handles
bound to the live manager of the process that compiled them.  The record
therefore captures the *rendered* artifacts -- generated Python and C
sources, the clock tree and clock system as text, the kernel form, the size
statistics -- plus exactly enough metadata (inputs, outputs, root flags,
signal types, the generated step source) to rebuild a runnable
:class:`~repro.codegen.python_backend.CompiledProcess` via
:func:`executable_from_record`.  That covers everything the daemon protocol
can answer (``--emit`` artifacts and simulation); callers that need the
analysis objects themselves recompile.

Records are versioned (:data:`STORE_FORMAT`); entries written by an
incompatible version, truncated by a crash, or otherwise corrupt are
treated as misses and deleted, never trusted.  Writes go through a
temporary file and ``os.replace`` so concurrent readers see either the old
or the new record, never a partial one.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..codegen.ir import GenerationStyle
from ..codegen.python_backend import CompiledProcess
from ..lang.types import SignalType

if TYPE_CHECKING:  # avoid a circular import at runtime
    from ..compiler import CompilationResult, LinkedCompilationResult

__all__ = [
    "STORE_FORMAT",
    "UNIT_STYLE",
    "LINKED_STYLE",
    "CompileStore",
    "store_key",
    "unit_store_key",
    "linked_store_key",
    "key_from_record",
    "record_from_result",
    "linked_record_from_result",
    "executable_from_record",
    "types_from_record",
]

#: version tag of the on-disk record layout; bump on incompatible changes
#: (2: added the ``c_shared`` artifact -- the reentrant columnar C source
#: that the mass-simulation runtime builds with ``cc -shared``;
#: 3: records self-describe their ``kind`` -- whole-program artifact
#: records (``"program"``) now coexist with per-unit artifact records
#: (``"unit"``, modular compilation).  Format-1/2 entries found in a store
#: directory are quarantined on read: reported as misses, counted in
#: ``invalid`` and unlinked, never parsed for artifacts.)
STORE_FORMAT = 3

#: the pseudo-style under which per-unit artifact records are keyed; unit
#: records are style-independent (they carry the IR of *both* generation
#: styles), so the style slot of the key is this constant instead
UNIT_STYLE = "unit"

#: the pseudo-style under which *linked-result* records are keyed; the
#: code-generation options of a linked record live inside its link
#: fingerprint (see :func:`repro.service.cache.link_fingerprint`), so --
#: like unit records -- the remaining key slots are fixed
LINKED_STYLE = "linked"

#: store key: (kernel fingerprint, style value, build_flat, observable)
StoreKey = Tuple[str, str, bool, bool]


def store_key(
    fingerprint: str,
    style: GenerationStyle,
    build_flat: bool = False,
    observable: bool = True,
) -> StoreKey:
    """The persistent identity of one compile-cache entry.

    Mirrors the in-memory LRU key of the service: the kernel fingerprint
    normalizes away surface-text differences, the remaining fields are the
    code-generation options that change the produced artifacts.
    """
    return (fingerprint, style.value, bool(build_flat), bool(observable))


def unit_store_key(fingerprint: str) -> StoreKey:
    """The persistent identity of one per-unit artifact record.

    Unit records are keyed by the unit fingerprint alone: they carry both
    generation styles and are always observable-neutral, so the remaining
    key slots are fixed.  The ``UNIT_STYLE`` marker keeps unit and
    whole-program entries in disjoint key spaces even though they share a
    store directory (unit fingerprints are additionally versioned, see
    :data:`repro.lang.units.UNIT_FINGERPRINT_VERSION`).
    """
    return (fingerprint, UNIT_STYLE, False, True)


def linked_store_key(link_fingerprint: str) -> StoreKey:
    """The persistent identity of one linked-result record.

    Linked records are keyed by the link fingerprint alone (which already
    digests the unit tuple, the rename maps and the code-generation
    options, see :func:`repro.service.cache.link_fingerprint`); the
    ``LINKED_STYLE`` marker keeps them disjoint from whole-program and
    per-unit entries in a shared store directory.
    """
    return (link_fingerprint, LINKED_STYLE, False, True)


def _executable_record(executable: CompiledProcess) -> Dict[str, object]:
    return {
        "source": executable.source,
        "name": executable.name,
        "style": executable.style.value,
        "inputs": list(executable.inputs),
        "outputs": list(executable.outputs),
        "root_flags": [list(flag) for flag in executable.root_flags],
        "observable": executable.observable,
    }


def record_from_result(
    result: "CompilationResult",
    style: GenerationStyle,
    build_flat: bool = False,
    observable: bool = True,
) -> Dict[str, object]:
    """Serialize a compilation result into a JSON-safe artifact record."""
    record: Dict[str, object] = {
        "format": STORE_FORMAT,
        "kind": "program",
        "fingerprint": result.program.fingerprint(),
        "style": style.value,
        "build_flat": bool(build_flat),
        "observable": bool(observable),
        "name": result.name,
        "statistics": result.statistics(),
        "types": {name: type_.value for name, type_ in result.types.items()},
        "artifacts": {
            "tree": result.tree_text(),
            "clocks": str(result.clock_system),
            "kernel": str(result.program),
            "python": result.python_source(style),
            "c": result.c_source(style),
            "c_shared": result.c_shared_source(style),
        },
        "executable": _executable_record(result.executable),
        "executable_flat": (
            _executable_record(result.executable_flat)
            if result.executable_flat is not None
            else None
        ),
    }
    return record


def linked_record_from_result(
    result: "LinkedCompilationResult",
    link_fingerprint: str,
    style: GenerationStyle,
    build_flat: bool = False,
    observable: bool = True,
) -> Dict[str, object]:
    """Serialize a linked compilation result into a JSON-safe record.

    The record captures the full artifact surface of the linked result --
    rendered sources, composed clock texts, summed statistics, runnable
    executables -- so a later :func:`linked_result_from_record
    <repro.compiler.linked_result_from_record>` rehydration answers
    everything the daemon protocol serves without touching the unit
    records, let alone relinking.  The real code-generation options are
    recorded under ``"options"``; the top-level ``style``/``build_flat``/
    ``observable`` fields are the fixed key slots of
    :func:`linked_store_key` (the options already live inside the link
    fingerprint).
    """
    return {
        "format": STORE_FORMAT,
        "kind": "linked",
        "fingerprint": link_fingerprint,
        "style": LINKED_STYLE,
        "build_flat": False,
        "observable": True,
        "options": {
            "style": style.value,
            "build_flat": bool(build_flat),
            "observable": bool(observable),
        },
        "program_fingerprint": result.program.fingerprint(),
        "unit_fingerprints": result.unit_fingerprints(),
        "name": result.name,
        "statistics": result.statistics(),
        "types": {name: type_.value for name, type_ in result.types.items()},
        "artifacts": {
            "tree": result.tree_text(),
            "clocks": str(result.clock_system),
            "kernel": str(result.program),
            "python": result.python_source(style),
            "c": result.c_source(style),
            "c_shared": result.c_shared_source(style),
        },
        "executable": _executable_record(result.executable),
        "executable_flat": (
            _executable_record(result.executable_flat)
            if result.executable_flat is not None
            else None
        ),
    }


def key_from_record(record: Dict[str, object]) -> StoreKey:
    """The store key a self-describing record belongs under.

    Validates the identity fields a record must carry (the ``store-put``
    protocol op and cross-node record transfer rely on this): a record of
    another format version, or one missing its fingerprint/style, raises
    ``ValueError`` rather than being filed under a made-up key.
    """
    if not isinstance(record, dict):
        raise ValueError("artifact record must be a JSON object")
    if record.get("format") != STORE_FORMAT:
        raise ValueError(
            f"record format {record.get('format')!r} is not the supported "
            f"format {STORE_FORMAT}"
        )
    fingerprint = record.get("fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        raise ValueError("record carries no kernel fingerprint")
    kind = record.get("kind", "program")
    if kind == "unit":
        if record.get("style") != UNIT_STYLE:
            raise ValueError(
                f"unit record carries style {record.get('style')!r} instead of {UNIT_STYLE!r}"
            )
        return unit_store_key(fingerprint)
    if kind == "linked":
        if record.get("style") != LINKED_STYLE:
            raise ValueError(
                f"linked record carries style {record.get('style')!r} instead of {LINKED_STYLE!r}"
            )
        return linked_store_key(fingerprint)
    if kind != "program":
        raise ValueError(f"record carries unknown kind {kind!r}")
    try:
        style = GenerationStyle(record.get("style"))
    except ValueError:
        raise ValueError(f"record carries unknown style {record.get('style')!r}") from None
    return store_key(
        fingerprint,
        style,
        bool(record.get("build_flat", False)),
        bool(record.get("observable", True)),
    )


def types_from_record(record: Dict[str, object]) -> Dict[str, SignalType]:
    """The signal-type map of a record (needed by input oracles)."""
    return {name: SignalType(value) for name, value in record["types"].items()}


def executable_from_record(
    record: Dict[str, object], flat: bool = False
) -> CompiledProcess:
    """Rebuild a runnable step from a persisted record.

    The generated step source is re-executed; delay registers start from
    their initial values, exactly like a fresh compile (and like the
    fresh-instance copy a memory cache hit hands out).
    """
    entry = record["executable_flat"] if flat else record["executable"]
    if entry is None:
        raise ValueError("record has no flat executable (compiled without build_flat)")
    return CompiledProcess.from_generated_source(
        source=entry["source"],
        name=entry["name"],
        style=GenerationStyle(entry["style"]),
        inputs=entry["inputs"],
        outputs=entry["outputs"],
        root_flags=[tuple(flag) for flag in entry["root_flags"]],
        types=types_from_record(record),
        observable=entry["observable"],
    )


class CompileStore:
    """A directory of artifact records, one JSON file per cache entry.

    The store is deliberately dumb: no index file, no locking protocol.
    Each entry lives at ``<dir>/<sha256(key)>.json`` and is self-describing
    (the record repeats its key fields), so the directory can be rebuilt,
    pruned or rsynced with ordinary tools, and concurrent daemons sharing a
    directory at worst rewrite identical records.
    """

    SUFFIX = ".json"

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: entries dropped because they were corrupt or from another format
        self.invalid = 0
        #: entries evicted by :meth:`prune` (oldest-recency first)
        self.pruned = 0
        #: (monotonic timestamp, entries, disk_bytes) of the last directory scan
        self._scan_cache: Optional[Tuple[float, int, int]] = None

    # -- paths ---------------------------------------------------------------
    def _entry_path(self, key: StoreKey) -> Path:
        digest = hashlib.sha256(json.dumps(list(key)).encode("utf-8")).hexdigest()
        return self.path / f"{digest}{self.SUFFIX}"

    def _entries(self):
        """Committed entry files only -- in-flight ``.tmp-*`` files (which a
        concurrent writer is about to ``os.replace``) are never touched."""
        for entry in self.path.iterdir():
            if entry.suffix == self.SUFFIX and not entry.name.startswith(".tmp-"):
                yield entry

    # -- access --------------------------------------------------------------
    def get(self, key: StoreKey) -> Optional[Dict[str, object]]:
        """The record stored under ``key``, or ``None``.

        Truncated, version-incompatible or key-mismatched entries are
        deleted and reported as misses: a warm start must never trust a
        record the current code did not (transitively) write.  Transient
        read failures (EMFILE, EACCES, ...) are plain misses -- a good
        entry is never destroyed because of a momentary resource error.
        """
        entry_path = self._entry_path(key)
        try:
            with open(entry_path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            # The record self-describes its full key; every field must
            # match, or a mis-placed file (bad rebuild/rsync of the
            # directory) would serve artifacts for the wrong options.
            if (
                not isinstance(record, dict)
                or record.get("format") != STORE_FORMAT
                or record.get("fingerprint") != key[0]
                or record.get("style") != key[1]
                or record.get("build_flat") != key[2]
                or record.get("observable") != key[3]
            ):
                raise ValueError("record does not match its key or format")
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except OSError:  # pragma: no cover - transient read failure
            with self._lock:
                self.misses += 1
            return None
        except ValueError:
            with self._lock:
                self.misses += 1
                self.invalid += 1
            try:
                entry_path.unlink()
            except OSError:  # pragma: no cover - already gone / unwritable dir
                pass
            return None
        with self._lock:
            self.hits += 1
        # Refresh the entry's recency so :meth:`prune` evicts in true
        # least-recently-used order, not write order.  Best-effort: a
        # read-only directory degrades pruning to write order, nothing else.
        with contextlib.suppress(OSError):
            os.utime(entry_path, None)
        return record

    def touch(self, key: StoreKey) -> None:
        """Refresh a key's recency without reading its record (best-effort).

        The daemon calls this on *memory-tier* hits: a hot record served
        from memory for hours never reaches :meth:`get`, and without the
        touch its disk mtime would go stale and :meth:`prune` would evict
        the hottest entries first -- the opposite of LRU.
        """
        with contextlib.suppress(OSError):
            os.utime(self._entry_path(key), None)

    def put(self, key: StoreKey, record: Dict[str, object]) -> None:
        """Atomically write ``record`` under ``key`` (last writer wins)."""
        entry_path = self._entry_path(key)
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(self.path), prefix=".tmp-", suffix=self.SUFFIX
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
            os.replace(temp_name, entry_path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        with self._lock:
            self.writes += 1
            self._scan_cache = None  # the next statistics() must see this entry

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> None:
        """Delete every committed entry (counters are kept)."""
        for entry in self._entries():
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                pass
        with self._lock:
            self._scan_cache = None

    # -- pruning -------------------------------------------------------------
    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Evict entries, least recently used first, down to ``max_bytes``.

        Recency is the file mtime: :meth:`put` stamps it, :meth:`get`
        refreshes it on every hit, and upper cache tiers :meth:`touch`
        entries they answer from memory, so eviction is LRU over real
        traffic (not write order).
        The quarantine path is unaffected -- a corrupt entry that
        :meth:`get` has not met yet is ordinary prunable bytes (it counts
        toward the budget and is evicted in mtime order like any other
        file), while one already quarantined is gone before prune looks.
        In-flight ``.tmp-*`` writer files are never touched.

        Returns ``{"removed", "removed_bytes", "remaining_entries",
        "remaining_bytes"}``.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        entries = []
        total_bytes = 0
        for entry in self._entries():
            try:
                entry_stat = entry.stat()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            entries.append((entry_stat.st_mtime, entry_stat.st_size, entry))
            total_bytes += entry_stat.st_size
        removed = 0
        removed_bytes = 0
        for _, size, entry in sorted(entries, key=lambda item: (item[0], item[2].name)):
            if total_bytes <= max_bytes:
                break
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            total_bytes -= size
            removed += 1
            removed_bytes += size
        with self._lock:
            self.pruned += removed
            self._scan_cache = None
        return {
            "removed": removed,
            "removed_bytes": removed_bytes,
            "remaining_entries": len(entries) - removed,
            "remaining_bytes": total_bytes,
        }

    def enforce_budget(self, max_bytes: int) -> Optional[Dict[str, int]]:
        """Prune only when a size scan says the budget is exceeded.

        The per-write policy hook of the daemon's ``--store-max-bytes``: a
        write invalidates the scan TTL cache, so enforcement after a spill
        performs one directory scan (O(entries) ``stat`` calls) and prunes
        only on a genuine overshoot.  Returns the prune report, or ``None``
        when the store was already within budget.
        """
        _, disk_bytes = self._scan()
        if disk_bytes <= max_bytes:
            return None
        return self.prune(max_bytes)

    #: how long a directory scan stays fresh for :meth:`statistics`
    SCAN_TTL_SECONDS = 1.0

    def _scan(self) -> Tuple[int, int]:
        """``(entries, disk_bytes)``, cached briefly.

        The daemon answers ``stats`` requests on the same worker thread
        that compiles; a monitoring client polling a store with thousands
        of entries must not stall compile traffic behind O(entries)
        directory scans, so consecutive calls within the TTL reuse the
        last scan.
        """
        with self._lock:
            cached = self._scan_cache
        now = time.monotonic()
        if cached is not None and now - cached[0] < self.SCAN_TTL_SECONDS:
            return cached[1], cached[2]
        entries = 0
        disk_bytes = 0
        for entry in self._entries():
            entries += 1
            try:
                disk_bytes += entry.stat().st_size
            except OSError:  # pragma: no cover - concurrent removal
                pass
        with self._lock:
            self._scan_cache = (now, entries, disk_bytes)
        return entries, disk_bytes

    def statistics(self) -> Dict[str, int]:
        entries, disk_bytes = self._scan()
        with self._lock:
            return {
                "entries": entries,
                "disk_bytes": disk_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "invalid": self.invalid,
                "pruned": self.pruned,
            }
