"""Federated compile tier: one gateway in front of a fleet of daemons.

``python -m repro gateway --backend HOST:PORT --backend HOST:PORT ...``
starts a :class:`CompileGateway`: a server speaking the *same* JSON-line
protocol as the compilation daemon, which routes every ``compile`` to one
of N backend daemons instead of compiling itself.  Clients cannot tell the
difference (responses gain a ``backend`` field naming the node that
answered); operators get one address, horizontal capacity behind it.

Routing
-------

Requests are routed by **consistent hashing of the kernel fingerprint** --
the same identity that keys every cache tier.  The gateway parses and
normalizes the source (memoizing digest -> fingerprint exactly like the
daemon does), hashes the fingerprint onto a ring of virtual nodes
(:class:`HashRing`), and forwards the raw request to the owning backend.
Two properties follow:

* the *same* program always lands on the *same* backend, so each backend's
  memory cache stays hot for its slice of the keyspace instead of every
  node caching everything;
* adding or removing a backend remaps only ~1/N of the keyspace (the
  virtual nodes interleave the ring), so scaling events do not flush the
  fleet's caches.

Failure handling
----------------

Robustness is first-class, not best-effort:

* a background health thread pings every backend on an interval; an
  unhealthy backend leaves the routing candidates until it answers again
  (plus a lazy recheck so a recovered backend is retried even between
  health sweeps);
* a forward that fails at the *transport* level (timeout, refused or reset
  connection, truncated response) marks the backend unhealthy and retries
  -- with exponential backoff -- on the ring's next healthy node, so one
  dying backend costs latency, not errors;
* structured errors *from* a backend (a parse error, a bad request) are
  relayed verbatim -- the program will not get better on another node;
* when every backend is down the gateway degrades gracefully: it compiles
  **locally** on its inherited engine (``local_fallback=True``), so the
  tier keeps answering through a full fleet outage.

The shared artifact tier
------------------------

Point the gateway and every backend at the same ``--store`` directory and
the disk store becomes a content-addressed artifact tier for the whole
fleet: any node's compile warms every node.  The ``store-get`` /
``store-put`` ops (inherited from the daemon) serve the same role over the
wire when a shared directory is not possible.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..lang.kernel import normalize
from ..lang.parser import parse_process
from .cache import source_digest
from .client import RemoteCompiler, RemoteError
from .daemon import CompilationDaemon, _RequestError, _error_response

__all__ = ["HashRing", "BackendState", "CompileGateway", "parse_backend_spec"]


def _ring_hash(value: str) -> int:
    """Position of a string on the ring (first 8 bytes of its sha256)."""
    return int.from_bytes(hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Each node is projected onto ``replicas`` pseudo-random points of a
    64-bit ring; a key is owned by the first node point at or after the
    key's own hash (wrapping).  With enough virtual nodes per backend the
    keyspace splits evenly and removing one backend hands each of its
    slices to a *different* survivor -- ~1/N of keys move, the rest keep
    their owner (and their warm caches).
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self._replicas = replicas
        self._points: List[int] = []        # sorted ring positions
        self._owners: List[str] = []        # node owning each position
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _node_points(self, node: str) -> List[int]:
        return [_ring_hash(f"{node}#{index}") for index in range(self._replicas)]

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for point in self._node_points(node):
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def node_for(self, key: str) -> Optional[str]:
        """The node owning ``key``, or ``None`` on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect(self._points, _ring_hash(key)) % len(self._points)
        return self._owners[index]

    def preference(self, key: str) -> List[str]:
        """Every node, ordered by ring distance from ``key``.

        The first entry is :meth:`node_for`; the rest are the successive
        fallback owners a failover walks, each key getting its *own*
        fallback order (so a dead backend's traffic spreads over the
        survivors instead of piling onto one neighbour).
        """
        if not self._points:
            return []
        start = bisect.bisect(self._points, _ring_hash(key))
        seen: List[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self._nodes):
                    break
        return seen


def parse_backend_spec(spec: str) -> Tuple[Optional[str], Optional[int], Optional[str]]:
    """Parse a ``--backend`` value into ``(host, port, socket_path)``.

    ``HOST:PORT`` means TCP; anything containing a slash (or without a
    colon) is a unix-socket path.
    """
    if "/" not in spec and ":" in spec:
        host, _, port_text = spec.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(
                f"invalid backend spec {spec!r} (expected HOST:PORT or a socket path)"
            )
        return host, int(port_text), None
    return None, None, spec


class BackendState:
    """One backend daemon as the gateway sees it: address, health, counters."""

    def __init__(self, spec: str):
        host, port, socket_path = parse_backend_spec(spec)
        self.spec = spec
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.healthy = True          # optimistic: probed by traffic and the health loop
        self.last_failure = 0.0      # monotonic time of the last transport failure
        self.routed = 0
        self.errors = 0
        self.inflight = 0
        self.clients: List[RemoteCompiler] = []  # idle pooled connections
        self.lock = threading.Lock()

    def snapshot(self) -> Dict[str, object]:
        with self.lock:
            return {
                "backend": self.spec,
                "healthy": self.healthy,
                "routed": self.routed,
                "errors": self.errors,
                "inflight": self.inflight,
            }


class CompileGateway(CompilationDaemon):
    """A protocol-compatible front-end routing compiles across daemons.

    Subclasses :class:`CompilationDaemon` to inherit the asyncio server,
    the graceful SIGTERM drain, the request log, the ``store-get`` /
    ``store-put`` artifact ops *and* a full local compilation engine --
    which is exactly the graceful-degradation path: when no backend is
    reachable the gateway answers compiles itself (sharing the fleet's
    ``store`` if configured), rather than erroring.

    Protocol differences from a plain daemon:

    * ``compile`` responses carry ``"backend"``: the spec of the node that
      answered (``"local"`` for a fallback compile);
    * ``ping`` responses carry ``"role": "gateway"`` and backend counts;
    * ``stats`` responses gain ``"gateway"`` (routing counters, fleet
      aggregate) and ``"backends"`` (per-backend health + counters +
      that backend's own stats);
    * ``clear-cache`` is broadcast to every healthy backend after clearing
      the gateway's own tiers.
    """

    def __init__(
        self,
        backends: Sequence[str] = (),
        local_fallback: bool = True,
        backend_timeout: float = 60.0,
        connect_timeout: float = 5.0,
        retry_backoff: float = 0.05,
        max_attempts: Optional[int] = None,
        health_interval: float = 2.0,
        recheck_interval: float = 1.0,
        replicas: int = 64,
        **daemon_options,
    ):
        super().__init__(**daemon_options)
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self._local_fallback = local_fallback
        self._backend_timeout = backend_timeout
        self._connect_timeout = connect_timeout
        self._retry_backoff = retry_backoff
        self._max_attempts = max_attempts
        self._health_interval = health_interval
        self._recheck_interval = recheck_interval
        self._ring = HashRing(replicas=replicas)
        self._backends: Dict[str, BackendState] = {}
        self._gateway_lock = threading.Lock()
        self._routed = 0
        self._retried = 0
        self._failed_over = 0
        self._health_stop: Optional[threading.Event] = None
        for spec in backends:
            self.add_backend(spec)

    # -- ring membership -----------------------------------------------------
    def add_backend(self, spec: str) -> BackendState:
        """Add a backend to the ring (only ~1/N of keys move to it)."""
        with self._gateway_lock:
            if spec in self._backends:
                raise ValueError(f"backend {spec!r} is already registered")
            state = BackendState(spec)  # validates the spec before ring mutation
            self._ring.add(spec)
            self._backends[spec] = state
        return state

    def remove_backend(self, spec: str) -> None:
        """Drop a backend; its keyspace slices fall to the ring successors."""
        with self._gateway_lock:
            state = self._backends.pop(spec, None)
            if state is None:
                raise ValueError(f"backend {spec!r} is not registered")
            self._ring.remove(spec)
        self._drop_idle_clients(state)

    @property
    def backends(self) -> List[str]:
        with self._gateway_lock:
            return sorted(self._backends)

    # -- backend connections -------------------------------------------------
    def _connect_backend(self, state: BackendState) -> RemoteCompiler:
        if state.socket_path is not None:
            return RemoteCompiler(
                socket_path=state.socket_path,
                timeout=self._backend_timeout,
                connect_timeout=self._connect_timeout,
            )
        return RemoteCompiler(
            host=state.host,
            port=state.port,
            timeout=self._backend_timeout,
            connect_timeout=self._connect_timeout,
        )

    def _borrow(self, state: BackendState) -> RemoteCompiler:
        with state.lock:
            if state.clients:
                return state.clients.pop()
        return self._connect_backend(state)  # OSError = transport failure

    def _return(self, state: BackendState, client: RemoteCompiler) -> None:
        with state.lock:
            # Cap the idle pool at the request-thread count; more could
            # never be borrowed concurrently.
            if state.healthy and len(state.clients) < self._jobs:
                state.clients.append(client)
                return
        client.close()

    def _drop_idle_clients(self, state: BackendState) -> None:
        with state.lock:
            clients, state.clients = state.clients, []
        for client in clients:
            client.close()

    def _forward(self, state: BackendState, request: Dict[str, object]) -> Dict[str, object]:
        """One request to one backend; raises on transport failure only."""
        client = self._borrow(state)
        try:
            response = client.call(request)
        except RemoteError:
            client.close()
            raise
        self._return(state, client)
        return response

    # -- health --------------------------------------------------------------
    def _mark_unhealthy(self, state: BackendState) -> None:
        with state.lock:
            state.healthy = False
            state.last_failure = time.monotonic()
            state.errors += 1
        self._drop_idle_clients(state)

    def _mark_healthy(self, state: BackendState) -> None:
        with state.lock:
            state.healthy = True

    def check_backends(self) -> Dict[str, bool]:
        """Ping every backend once and update its health flag.

        The health loop calls this on an interval; tests and operators can
        call it synchronously.  Probes use a fresh short-timeout connection
        so a wedged pooled connection cannot fake a healthy backend.
        """
        with self._gateway_lock:
            states = list(self._backends.values())
        health: Dict[str, bool] = {}
        for state in states:
            try:
                probe = self._connect_backend(state)
            except OSError:
                self._mark_unhealthy(state)
                health[state.spec] = False
                continue
            try:
                probe.ping()
            except RemoteError:
                self._mark_unhealthy(state)
                health[state.spec] = False
            else:
                self._mark_healthy(state)
                health[state.spec] = True
            finally:
                probe.close()
        return health

    def _health_loop(self, stop: threading.Event) -> None:
        while not stop.wait(self._health_interval):
            try:
                self.check_backends()
            except Exception:  # pragma: no cover - the loop must survive anything
                pass

    # -- routing -------------------------------------------------------------
    def _fingerprint_for(self, source: str) -> str:
        """The routing key: digest-memoized kernel fingerprint.

        Parsing locally means garbage requests are rejected at the edge
        (via the inherited error ladder) without bothering any backend, and
        the memo makes repeat traffic route without parsing at all.
        """
        digest = source_digest(source)
        fingerprint = self._digests.get(digest)
        if fingerprint is None:
            fingerprint = normalize(parse_process(source)).fingerprint()
            self._digests.put(digest, fingerprint)
        return fingerprint

    def _candidates(self, fingerprint: str) -> List[BackendState]:
        """Backends to try, in order: healthy by ring preference, then
        unhealthy ones whose recheck interval has elapsed (a recovered
        backend must win its keys back without waiting for a health sweep)."""
        with self._gateway_lock:
            order = [
                self._backends[spec]
                for spec in self._ring.preference(fingerprint)
                if spec in self._backends
            ]
        now = time.monotonic()
        healthy = [state for state in order if state.healthy]
        recheck = [
            state
            for state in order
            if not state.healthy and now - state.last_failure >= self._recheck_interval
        ]
        return healthy + recheck

    def _handle_compile(self, request: Dict[str, object]) -> Dict[str, object]:
        source = request.get("source")
        if not isinstance(source, str) or not source.strip():
            raise _RequestError("field 'source' must be a non-empty string")
        fingerprint = self._fingerprint_for(source)  # SignalError -> answered locally
        candidates = self._candidates(fingerprint)
        if self._max_attempts is not None:
            candidates = candidates[: self._max_attempts]
        for attempt, state in enumerate(candidates):
            if attempt:
                time.sleep(self._retry_backoff * (2 ** (attempt - 1)))
                with self._gateway_lock:
                    self._retried += 1
            with state.lock:
                state.inflight += 1
            try:
                response = self._forward(state, request)
            except (RemoteError, OSError):
                # Transport failure: the backend is gone (or wedged); every
                # op is idempotent, so resending to the next ring node is
                # safe even if the dead backend did run the compile.
                self._mark_unhealthy(state)
                continue
            finally:
                with state.lock:
                    state.inflight -= 1
            self._mark_healthy(state)
            with state.lock:
                state.routed += 1
            with self._gateway_lock:
                self._routed += 1
            response["backend"] = state.spec
            return response
        # Every backend is down (or none is registered): degrade gracefully
        # to the inherited local engine rather than failing the client.
        if self._local_fallback:
            with self._gateway_lock:
                self._failed_over += 1
            response = super()._handle_compile(request)
            response["backend"] = "local"
            return response
        return self._count_error(
            _error_response(
                "no-backend",
                "no backend is reachable and local fallback is disabled",
                "compile",
            )
        )

    # -- protocol extensions -------------------------------------------------
    def _dispatch_op(self, op: object, request: Dict[str, object]) -> Dict[str, object]:
        if op == "ping":
            response = super()._dispatch_op(op, request)
            with self._gateway_lock:
                states = list(self._backends.values())
            response["role"] = "gateway"
            response["backends"] = len(states)
            response["healthy_backends"] = sum(1 for s in states if s.healthy)
            return response
        if op == "clear-cache":
            response = super()._dispatch_op(op, request)
            if response.get("ok"):
                response["backends_cleared"] = self._broadcast(
                    {"op": "clear-cache", "store": response.get("store", False)}
                )
            return response
        return super()._dispatch_op(op, request)

    def _broadcast(self, request: Dict[str, object]) -> List[str]:
        """Send one request to every healthy backend; return who answered ok."""
        with self._gateway_lock:
            states = [s for s in self._backends.values() if s.healthy]
        answered: List[str] = []
        for state in states:
            try:
                response = self._forward(state, request)
            except (RemoteError, OSError):
                self._mark_unhealthy(state)
                continue
            if response.get("ok"):
                answered.append(state.spec)
        return answered

    def statistics(self) -> Dict[str, object]:
        """Federated stats: local tiers + routing counters + fleet aggregate.

        Each healthy backend is asked for its own ``stats``; the per-daemon
        tier counters are summed into ``gateway.fleet`` so one number
        answers "how hot is the tier" across N nodes.  A backend that fails
        the stats probe is reported unhealthy, not an error.
        """
        base = super().statistics()
        with self._gateway_lock:
            states = list(self._backends.values())
            gateway: Dict[str, object] = {
                "routed": self._routed,
                "retried": self._retried,
                "failed_over": self._failed_over,
                "backends": len(states),
            }
        per_backend: List[Dict[str, object]] = []
        fleet = {
            "compile_requests": 0,
            "memory_hits": 0,
            "store_hits": 0,
            "compiles": 0,
            "errors": 0,
        }
        # Modular tiers live in the per-daemon *service* stats; summing
        # them here answers "how hot are the unit and linked tiers" for
        # the whole fleet the same way ``fleet`` does for record tiers.
        modular_fleet = {
            "unit_hits": 0,
            "unit_misses": 0,
            "unit_store_hits": 0,
            "links": 0,
            "link_hits": 0,
            "link_misses": 0,
            "link_store_hits": 0,
        }
        for state in states:
            entry = state.snapshot()
            if entry["healthy"]:
                try:
                    response = self._forward(state, {"op": "stats"})
                except (RemoteError, OSError):
                    self._mark_unhealthy(state)
                    entry["healthy"] = False
                else:
                    if response.get("ok"):
                        entry["stats"] = {
                            key: value
                            for key, value in response.items()
                            if key not in ("ok", "op")
                        }
                        daemon_stats = entry["stats"].get("daemon") or {}
                        for key in fleet:
                            value = daemon_stats.get(key)
                            if isinstance(value, int):
                                fleet[key] += value
                        service_stats = entry["stats"].get("service") or {}
                        for key in modular_fleet:
                            value = service_stats.get(key)
                            if isinstance(value, int):
                                modular_fleet[key] += value
            per_backend.append(entry)
        gateway["healthy"] = sum(1 for entry in per_backend if entry["healthy"])
        gateway["fleet"] = fleet
        gateway["modular_fleet"] = modular_fleet
        return {**base, "gateway": gateway, "backends": per_backend}

    # -- server --------------------------------------------------------------
    async def serve(self, *args, **kwargs) -> None:
        """Serve like the daemon, with the health loop running alongside."""
        stop = threading.Event()
        self._health_stop = stop
        thread: Optional[threading.Thread] = None
        if self._health_interval > 0:
            thread = threading.Thread(
                target=self._health_loop,
                args=(stop,),
                name="repro-gateway-health",
                daemon=True,
            )
            thread.start()
        try:
            await super().serve(*args, **kwargs)
        finally:
            stop.set()
            if thread is not None:
                thread.join(timeout=5.0)
            with self._gateway_lock:
                states = list(self._backends.values())
            for state in states:
                self._drop_idle_clients(state)
