"""Thread-safe LRU cache of compilation results.

The cache is keyed by the *normalized kernel program* fingerprint (plus the
code-generation options), so two surface sources that desugar to the same
kernel share one entry.  A second, source-text level memo maps the SHA-256
of the raw source to the kernel key: exact textual repeats then skip the
parse/normalize work entirely on the hot path.

What the fingerprint normalizes away
------------------------------------

The fingerprint is the SHA-256 of the kernel program's *canonical form*
(:meth:`repro.lang.kernel.KernelProgram.canonical_form`), computed after
desugaring.  Two sources therefore share one cache entry when they differ
only in

* whitespace, layout and comments (erased by the lexer),
* surface syntax that desugars to the same kernel equations (e.g. operator
  sugar versus its explicit kernel expansion), and
* anything else the deterministic normalizer maps to identical kernel text,
  including the numbering of compiler-introduced intermediate signals,
  which depends only on emission order.

It does **not** normalize away process names, signal names, declared types,
or equation order: those are part of the canonical form, so renamed or
reordered programs compile separately even when semantically equivalent.
The same fingerprint also keys the per-scope value-encoding memo
(:mod:`repro.clocks.encoding`) and the on-disk artifact store
(:mod:`repro.service.store`): every layer of caching shares one identity
for "the same program".

Entry lifetime
--------------

Evicting the last entry of a fingerprint triggers the service's
``on_evict`` callback, which releases the program's BDD scopes (see the
scope-lifetime notes in :mod:`repro.service.service`).  The callback runs
outside the cache lock, so it may safely take the service lock.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "LINK_FINGERPRINT_VERSION",
    "link_fingerprint",
    "source_digest",
    "shard_for_fingerprint",
]

T = TypeVar("T")


def source_digest(source: str) -> str:
    """SHA-256 of raw source text (the exact-repeat fast path key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


#: version tag folded into every link fingerprint; bump whenever the link
#: stage's output could change for identical inputs (renaming scheme, root
#: presence-key derivation, code emission) so stale linked records miss
LINK_FINGERPRINT_VERSION = "link-fingerprint-v1"


def link_fingerprint(
    name: str,
    unit_fingerprints: Sequence[str],
    renames: Sequence[Mapping[str, str]],
    input_order: Sequence[str],
    output_order: Sequence[str],
    style_value: str,
    build_flat: bool,
    observable: bool,
) -> str:
    """The persistent identity of one *linked* compilation result.

    A linked result is fully determined by the ordered tuple of unit
    fingerprints (each unit fingerprint already pins the unit's canonical
    kernel), the per-unit canonical->actual rename maps, the enclosing
    program's name and interface declaration order, and the code-generation
    options.  Hashing exactly these inputs means two different programs that
    embed the same modules under the same actual names share one linked
    record, while any change that could alter the composed artifacts
    (renames, unit order, options) produces a different key.
    """
    payload = json.dumps(
        [
            LINK_FINGERPRINT_VERSION,
            name,
            list(unit_fingerprints),
            [sorted(rename.items()) for rename in renames],
            list(input_order),
            list(output_order),
            style_value,
            bool(build_flat),
            bool(observable),
        ],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def shard_for_fingerprint(fingerprint: str, shards: int) -> int:
    """The pool shard a kernel fingerprint routes to (``0 <= index < shards``).

    The map is a pure function of the fingerprint text and the shard count:
    the same program always lands on the same shard of a given service (so
    recompilations find their warm scope and value encodings again), across
    service instances and across OS processes (unlike the salted built-in
    ``hash``).  Fingerprints are SHA-256 hex digests already, but the router
    re-hashes so that any opaque string routes uniformly -- a prefix of a
    structured key would not.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if shards == 1:
        return 0
    digest = hashlib.sha256(fingerprint.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


@dataclass
class CacheStats:
    """Counters exposed by :meth:`repro.service.CompilationService.statistics`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class LRUCache(Generic[T]):
    """A bounded mapping with least-recently-used eviction.

    All operations take the internal lock, so the cache can back the
    concurrent ``compile_batch`` path without extra synchronization.
    """

    def __init__(
        self,
        max_entries: int = 128,
        on_evict: Optional[Callable[[Hashable, T], None]] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, T]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()
        #: called as ``on_evict(key, value)`` after an LRU eviction, outside
        #: the cache lock (the callback may take other locks safely)
        self.on_evict = on_evict

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[T]:
        """Return the cached value (refreshing its recency) or ``None``."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def peek(self, key: Hashable) -> Optional[T]:
        """Like :meth:`get` but without touching recency or the counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: Hashable, value: T) -> None:
        evicted: List[Tuple[Hashable, T]] = []
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                evicted.append(self._entries.popitem(last=False))
                self.stats.evictions += 1
        if self.on_evict is not None:
            for evicted_key, evicted_value in evicted:
                self.on_evict(evicted_key, evicted_value)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> Tuple[Hashable, ...]:
        with self._lock:
            return tuple(self._entries.keys())
