"""The compilation service: pooled BDD manager + compile cache + batching.

A :class:`CompilationService` is the long-lived, repeated-traffic front end
of the compiler:

* it owns one shared :class:`~repro.bdd.BDDManager` whose unique table and
  ``ite`` computed cache persist across compilations; every program gets a
  namespaced *scope* of the manager (see
  :class:`~repro.bdd.ScopedBDDManager`), so unrelated programs never share
  clock variables while recompilations of the same program reuse its
  variables, value encodings and cached ``ite`` results;
* it memoizes whole :class:`~repro.compiler.CompilationResult` objects in a
  bounded LRU keyed by the **normalized kernel program fingerprint** (plus
  the code-generation options), with a source-text fast path for exact
  repeats -- kernel-equivalent sources (e.g. reformatted text) share one
  entry;
* :meth:`CompilationService.compile_batch` compiles many sources
  concurrently on per-worker managers (the pooled manager is not
  thread-safe) and merges the statistics.

Cache hits return a copy of the cached ``CompilationResult`` carrying fresh
executable instances (rebuilt from the cached generated source), so a hit
behaves exactly like a fresh compilation and callers' simulation states are
fully isolated; the analysis artifacts (hierarchy, schedule, sources) are
shared.

Scope lifetime
--------------

A *scope* (:class:`~repro.bdd.ScopedBDDManager`) is the bridge between one
program and one manager: it namespaces the program's BDD variables and
carries the program's value-encoding memo.  The service registers scopes
lazily in ``_scope_for`` under the key ``(id(manager), fingerprint)`` and
guarantees the invariant that **a scope outlives every cached result that
was compiled through it, and nothing else**:

* a scope is created on the first (miss) compilation of its program on a
  given manager and reused by every later recompilation there;
* a scope is released when the last LRU entry for its fingerprint (any
  style/option combination) is evicted, when the compilation that would
  have populated the entry raises (including ``BaseException`` such as a
  cancelled batch worker -- nothing would ever evict the entry otherwise),
  or when its manager is recycled (see below);
* releasing a scope drops it from the registry and clears its
  value-encoding memo.  The variables and nodes the program interned in the
  manager's unique table are *not* reclaimed -- that is what manager
  recycling is for.

Pool hygiene
------------

The pooled manager's unique table and variable registry are append-only, so
under varied long-lived traffic (the daemon) they grow without bound.  The
service accepts a ``max_pool_nodes`` watermark: after a compilation finishes
on the pooled manager, if the manager's node count exceeds the watermark the
manager is *recycled* -- replaced by a fresh empty one, with every scope
registered on the old manager released.  Cached results that reference the
old manager stay valid (their BDD handles keep the old manager object
alive), but BDDs of results compiled before and after a recycle must not be
combined, exactly like results from different batch workers.  Worker
managers are checked against the same watermark when a batch job returns
them to the idle pool and are retired instead of requeued when over budget.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..bdd import BDDManager, ScopedBDDManager
from ..codegen.ir import GenerationStyle
from ..compiler import CompilationResult, compile_process
from ..lang.ast import Process
from ..lang.kernel import KernelProgram, normalize
from ..lang.parser import parse_process
from .cache import LRUCache, source_digest

__all__ = ["CompilationService"]

#: cache key: (kernel fingerprint, style, build_flat, observable)
_CacheKey = Tuple[str, GenerationStyle, bool, bool]


class CompilationService:
    """A stateful compiler front end that pools BDDs and caches results.

    Parameters
    ----------
    max_entries:
        Capacity of the LRU compile cache (whole compilation results).
    manager:
        Optionally, an existing shared manager to pool on (a fresh one is
        created by default).
    max_pool_nodes:
        Node-count watermark for pool hygiene: when a compilation leaves
        the pooled manager (or returns a batch worker manager) with more
        than this many nodes, the manager is recycled and its scopes are
        released.  ``None`` (the default) disables recycling.

    ``compile``/``compile_process`` are meant to be called from one thread
    (the pooled manager is not thread-safe); ``compile_batch`` is the
    concurrent entry point and isolates workers on their own managers.
    """

    def __init__(
        self,
        max_entries: int = 128,
        manager: Optional[BDDManager] = None,
        max_pool_nodes: Optional[int] = None,
    ):
        self.manager = manager if manager is not None else BDDManager()
        self.max_pool_nodes = max_pool_nodes
        self._results: LRUCache[CompilationResult] = LRUCache(
            max_entries, on_evict=self._on_result_evicted
        )
        # Source-text digest -> kernel fingerprint (exact-repeat fast path).
        self._source_fingerprints: LRUCache[str] = LRUCache(max(max_entries * 4, 16))
        # (manager identity, namespace) -> scope; managers are kept alive for
        # the service's lifetime, so id() keys are stable.
        self._scopes: Dict[Tuple[int, str], ScopedBDDManager] = {}
        self._lock = threading.RLock()
        # Idle worker managers, checked out for the duration of one batch
        # compilation and returned afterwards: the pool is bounded by the
        # highest concurrency ever used and reused across batches.
        self._idle_workers: "queue.SimpleQueue[BDDManager]" = queue.SimpleQueue()
        self._worker_managers: List[BDDManager] = []
        self._requests = 0
        self._pool_recycles = 0
        self._worker_recycles = 0

    # -- cache plumbing -----------------------------------------------------
    @staticmethod
    def _key(
        fingerprint: str,
        style: GenerationStyle,
        build_flat: bool,
        observable: bool,
    ) -> _CacheKey:
        return (fingerprint, style, build_flat, observable)

    def _scope_for(self, manager: BDDManager, fingerprint: str) -> ScopedBDDManager:
        """The persistent per-program scope of a manager.

        Scopes are cached per (manager, program) so a recompilation -- on the
        pooled manager or on a reused worker manager -- finds its variables
        and value encodings again.  The full fingerprint is the namespace:
        distinct kernels can never share a scope.
        """
        key = (id(manager), fingerprint)
        with self._lock:
            scope = self._scopes.get(key)
            if scope is None:
                scope = manager.scoped(fingerprint)
                self._scopes[key] = scope
            return scope

    def _release_orphan_scopes(self, fingerprint: str) -> None:
        """Drop a program's scopes when no cached result references it.

        The scope and its encoding cache hold BDD handles; releasing them
        keeps the service's bookkeeping bounded by the LRU under varied
        traffic.  (Nodes already interned in a manager's unique table are
        not reclaimed -- recycling the table is a ROADMAP follow-up.)
        """
        if any(key[0] == fingerprint for key in self._results.keys()):
            return  # another style/options entry still uses this program
        with self._lock:
            stale = [k for k in self._scopes if k[1] == fingerprint]
            for scope_key in stale:
                self._scopes.pop(scope_key).encoding_cache.clear()

    def _on_result_evicted(self, key, value) -> None:
        self._release_orphan_scopes(key[0])

    def _compile_program(
        self,
        process: Process,
        program: KernelProgram,
        fingerprint: str,
        style: GenerationStyle,
        build_flat: bool,
        observable: bool,
        manager: BDDManager,
    ) -> CompilationResult:
        scope = self._scope_for(manager, fingerprint)
        return compile_process(
            process,
            style=style,
            build_flat=build_flat,
            observable=observable,
            manager=scope,
            program=program,
        )

    def _compile_cached(
        self,
        source: Optional[str],
        process: Optional[Process],
        style: GenerationStyle,
        build_flat: bool,
        observable: bool,
        manager_supplier: "Callable[[], BDDManager]",
        program: Optional[KernelProgram] = None,
    ) -> CompilationResult:
        with self._lock:
            self._requests += 1

        digest = None
        counted_miss = False
        if source is not None:
            digest = source_digest(source)
            fingerprint = self._source_fingerprints.get(digest)
            if fingerprint is not None:
                cached = self._results.get(
                    self._key(fingerprint, style, build_flat, observable)
                )
                if cached is not None:
                    return self._fresh_hit(cached)
                counted_miss = True
                # Known program, options not cached yet: reparse below (the
                # kernel form is needed by the pipeline anyway).

        if process is None:
            assert source is not None
            process = parse_process(source)
        if program is None:
            program = normalize(process)
        fingerprint = program.fingerprint()
        if digest is not None:
            self._source_fingerprints.put(digest, fingerprint)

        key = self._key(fingerprint, style, build_flat, observable)
        # The fast path above already charged this request with a miss; avoid
        # double counting while still honouring a concurrent batch worker
        # that may have filled the entry in the meantime.
        cached = self._results.peek(key) if counted_miss else self._results.get(key)
        if cached is not None:
            return self._fresh_hit(cached)

        # Only a genuine miss needs a manager (batch workers check one out
        # of the pool lazily here, so fully-warm batches allocate nothing).
        try:
            result = self._compile_program(
                process, program, fingerprint, style, build_flat, observable,
                manager_supplier(),
            )
        except BaseException:
            # A failed compilation stores no result, so nothing would ever
            # evict the scope registered above -- release it now.  This must
            # cover BaseException, not just Exception: a batch worker killed
            # by e.g. KeyboardInterrupt or a future cancellation would
            # otherwise leak its scope in a long-lived daemon.
            self._release_orphan_scopes(fingerprint)
            raise
        self._results.put(key, result)
        return result

    @staticmethod
    def _fresh_hit(result: CompilationResult) -> CompilationResult:
        """Restore fresh-compile semantics on a cache hit.

        The cached executables carry mutable delay-register state, so the
        hit returns a copy of the result with brand-new step instances
        (rebuilt from the cached generated source -- a tiny cost next to the
        pipeline): every caller gets isolated simulation state, and a hit
        can never perturb an earlier caller's in-progress run.  The analysis
        artifacts (hierarchy, schedule, IR, sources) are shared.
        """
        executable = result.executable.fresh()
        executable_flat = (
            result.executable_flat.fresh() if result.executable_flat is not None else None
        )
        return replace(result, executable=executable, executable_flat=executable_flat)

    # -- public API ---------------------------------------------------------
    def compile(
        self,
        source: str,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
    ) -> CompilationResult:
        """Compile SIGNAL source text, reusing pooled BDDs and cached results.

        Cache misses compile on the pooled manager.  A hit may return a
        result originally produced by :meth:`compile_batch`, whose BDDs live
        on that batch's worker manager instead -- the result is identical in
        behaviour, but do not combine its clock BDDs with those of a
        pooled-manager result (check ``result.hierarchy.manager``).
        """
        result = self._compile_cached(
            source, None, style, build_flat, observable, lambda: self.manager
        )
        self._maybe_recycle_pooled()
        return result

    def compile_process(
        self,
        process: Process,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
        program: Optional[KernelProgram] = None,
    ) -> CompilationResult:
        """Like :meth:`compile` for an already-parsed process.

        ``program`` optionally supplies the already-normalized kernel form
        of ``process`` (callers like the daemon normalize first to compute
        the cache key; passing it through avoids normalizing twice).
        """
        result = self._compile_cached(
            None, process, style, build_flat, observable, lambda: self.manager,
            program=program,
        )
        self._maybe_recycle_pooled()
        return result

    def compile_batch(
        self,
        sources: Iterable[str],
        jobs: int = 1,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
    ) -> List[CompilationResult]:
        """Compile many sources, optionally with ``jobs`` worker threads.

        Results come back in input order.  Workers that miss the cache
        compile on a worker manager checked out from a persistent pool (at
        most one per concurrently running job, reused across batches) so the
        shared pooled manager is never touched concurrently; all results
        land in the shared compile cache.  BDDs of a batch-compiled result
        are therefore bound to its worker manager, not to ``self.manager``
        -- combine clock BDDs across results only when both were compiled
        sequentially.  If the same program appears twice in one batch it may
        be compiled by two workers; the cache keeps whichever finishes last,
        which is harmless because compilation is deterministic.
        """
        source_list = list(sources)
        if jobs <= 1:
            return [
                self.compile(s, style=style, build_flat=build_flat, observable=observable)
                for s in source_list
            ]

        def work(source: str) -> CompilationResult:
            checked_out: List[BDDManager] = []

            def supplier() -> BDDManager:
                manager = self._checkout_worker_manager()
                checked_out.append(manager)
                return manager

            try:
                return self._compile_cached(
                    source, None, style, build_flat, observable, supplier
                )
            finally:
                # Returned even when the job raised: the manager itself is
                # reusable (the failed program's scope was already released
                # by _compile_cached), but an over-budget manager is retired
                # here rather than requeued.
                for manager in checked_out:
                    self._return_worker_manager(manager)

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(work, source_list))

    def _checkout_worker_manager(self) -> BDDManager:
        try:
            return self._idle_workers.get_nowait()
        except queue.Empty:
            manager = BDDManager()
            with self._lock:
                self._worker_managers.append(manager)
            return manager

    # -- pool hygiene --------------------------------------------------------
    def _over_watermark(self, manager: BDDManager) -> bool:
        return self.max_pool_nodes is not None and manager.num_nodes > self.max_pool_nodes

    def _drop_manager_scopes_locked(self, manager_id: int) -> None:
        """Release every scope registered on a recycled/retired manager.

        Must be called with ``self._lock`` held.  Cached results keep the
        old manager object (and hence their BDDs) alive; only the service's
        bookkeeping for it is dropped, so nothing can resurrect a scope on a
        dead manager or collide with a reused ``id()``.
        """
        stale = [key for key in self._scopes if key[0] == manager_id]
        for scope_key in stale:
            self._scopes.pop(scope_key).encoding_cache.clear()

    def _maybe_recycle_pooled(self) -> None:
        """Replace the pooled manager with a fresh one when over budget."""
        if not self._over_watermark(self.manager):
            return
        with self._lock:
            old = self.manager
            if not self._over_watermark(old):  # re-check under the lock
                return
            self.manager = BDDManager(
                max_nodes=old.max_nodes, use_computed_cache=old.use_computed_cache
            )
            self._drop_manager_scopes_locked(id(old))
            self._pool_recycles += 1

    def _return_worker_manager(self, manager: BDDManager) -> None:
        """Requeue an idle worker manager, or retire it when over budget."""
        if not self._over_watermark(manager):
            self._idle_workers.put(manager)
            return
        with self._lock:
            try:
                self._worker_managers.remove(manager)
            except ValueError:  # pragma: no cover - retired concurrently
                pass
            self._drop_manager_scopes_locked(id(manager))
            self._worker_recycles += 1

    # -- maintenance and reporting ------------------------------------------
    def clear_cache(self) -> None:
        """Drop cached results and scopes (interned pooled BDDs are kept)."""
        self._results.clear()
        self._source_fingerprints.clear()
        with self._lock:
            for scope in self._scopes.values():
                scope.encoding_cache.clear()
            self._scopes.clear()

    @property
    def cache_size(self) -> int:
        return len(self._results)

    def statistics(self) -> Dict[str, int]:
        """Counters for monitoring: cache behaviour and pool sizes."""
        with self._lock:
            worker_nodes = sum(m.num_nodes for m in self._worker_managers)
            worker_count = len(self._worker_managers)
            requests = self._requests
            pool_recycles = self._pool_recycles
            worker_recycles = self._worker_recycles
        stats = {
            "requests": requests,
            "cache_entries": len(self._results),
            "cache_max_entries": self._results.max_entries,
            "scopes": len(self._scopes),
            "source_fast_path_hits": self._source_fingerprints.stats.hits,
            "pooled_bdd_nodes": self.manager.num_nodes,
            "pooled_bdd_vars": self.manager.num_vars,
            "pooled_ite_cache_entries": self.manager.statistics()["ite_cache_entries"],
            "worker_managers": worker_count,
            "worker_bdd_nodes": worker_nodes,
            "max_pool_nodes": self.max_pool_nodes or 0,
            "pool_recycles": pool_recycles,
            "worker_recycles": worker_recycles,
        }
        stats.update(
            {f"cache_{name}": value for name, value in self._results.stats.as_dict().items()}
        )
        return stats
