"""The compilation service: sharded BDD pool + compile cache + batching.

A :class:`CompilationService` is the long-lived, repeated-traffic front end
of the compiler:

* it owns a pool of shared :class:`~repro.bdd.BDDManager` *shards* whose
  unique tables and ``ite`` computed caches persist across compilations;
  every program gets a namespaced *scope* of its shard (see
  :class:`~repro.bdd.ScopedBDDManager`), so unrelated programs never share
  clock variables while recompilations of the same program reuse its
  variables, value encodings and cached ``ite`` results;
* it memoizes whole :class:`~repro.compiler.CompilationResult` objects in a
  bounded LRU keyed by the **normalized kernel program fingerprint** (plus
  the code-generation options), with a source-text fast path for exact
  repeats -- kernel-equivalent sources (e.g. reformatted text) share one
  entry;
* :meth:`CompilationService.compile_batch` compiles many sources
  concurrently -- on worker threads with per-worker managers, or on worker
  **processes** that return JSON artifact records and sidestep the GIL.

Cache hits return a copy of the cached ``CompilationResult`` carrying fresh
executable instances (rebuilt from the cached generated source), so a hit
behaves exactly like a fresh compilation and callers' simulation states are
fully isolated; the analysis artifacts (hierarchy, schedule, sources) are
shared.

Shard map
---------

``CompilationService(shards=K)`` splits the pooled manager into ``K``
independent managers.  A program's shard is a pure function of its kernel
fingerprint (:func:`~repro.service.cache.shard_for_fingerprint`), so the
same program always compiles on the same shard and finds its warm scope
again, while distinct programs spread across shards.  Each shard carries
its own compile lock and its own ``max_pool_nodes`` recycling: one hot
program that blows through the watermark recycles only its shard, and every
other shard's warm scopes survive.  Because shards never share BDD nodes,
compilations on *different* shards may run concurrently (each shard's lock
serializes compilations within the shard) -- this is what lets a daemon
with several request threads compile distinct programs at the same time.
With the default ``shards=1`` the service behaves exactly like the
historical single-pool design.

Scope lifetime
--------------

A *scope* (:class:`~repro.bdd.ScopedBDDManager`) is the bridge between one
program and one manager: it namespaces the program's BDD variables and
carries the program's value-encoding memo.  The service registers scopes
lazily in ``_scope_for`` under the key ``(id(manager), fingerprint)`` and
guarantees the invariant that **a scope outlives every cached result that
was compiled through it, and nothing else**:

* a scope is created on the first (miss) compilation of its program on a
  given manager and reused by every later recompilation there;
* a scope is released when the last LRU entry for its fingerprint (any
  style/option combination) is evicted, when the compilation that would
  have populated the entry raises (including ``BaseException`` such as a
  cancelled batch worker -- nothing would ever evict the entry otherwise),
  or when its manager (shard or worker) is recycled (see below);
* releasing a scope drops it from the registry and clears its
  value-encoding memo.  The variables and nodes the program interned in the
  manager's unique table are *not* reclaimed -- that is what manager
  recycling is for.

Pool hygiene
------------

A shard manager's unique table and variable registry are append-only, so
under varied long-lived traffic (the daemon) they grow without bound.  The
service accepts a ``max_pool_nodes`` watermark, applied **per shard**:
after a compilation finishes on a shard, if that shard's node count exceeds
the watermark the shard manager is *recycled* -- replaced by a fresh empty
one, with every scope registered on the old manager released.  Cached
results that reference the old manager stay valid (their BDD handles keep
the old manager object alive), but BDDs of results compiled before and
after a recycle must not be combined, exactly like results from different
shards or batch workers.  Worker managers are checked against the same
watermark when a batch job returns them to the idle pool and are retired
instead of requeued when over budget.  ``statistics()["pool_recycles"]`` is
the sum of the per-shard recycle counters (reported individually under
``shard_stats``), so single-shard services report exactly what they always
did.

Process workers
---------------

``compile_batch(sources, jobs=N, workers="processes")`` fans the batch out
to a persistent :class:`~concurrent.futures.ProcessPoolExecutor`.  A live
:class:`~repro.compiler.CompilationResult` cannot cross a process boundary
(its hierarchy, graph and schedule hold BDD handles bound to the worker's
manager), so process workers return the JSON-safe **artifact records** of
:func:`repro.service.store.record_from_result` -- rendered sources, the
clock tree, statistics, and enough metadata to rebuild a runnable step via
:func:`repro.service.store.executable_from_record`.  Each worker process
keeps its own small ``CompilationService``, so repeats within one worker
are warm; the pool is created lazily, reused across batches, grown when a
larger ``jobs`` arrives, and torn down by :meth:`close` (closing is safe --
the next process-mode call simply builds a fresh pool).
"""

from __future__ import annotations

import contextlib
import os
import queue
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..bdd import BDDManager, ScopedBDDManager
from ..codegen.ir import GenerationStyle
from ..compiler import (
    CompilationResult,
    LinkedCompilationResult,
    compile_process,
    compile_unit_record,
    link_units,
    linked_result_from_record,
)
from ..lang.ast import Process
from ..lang.kernel import KernelProgram, normalize
from ..lang.parser import parse_process
from ..lang.units import split_units
from .cache import LRUCache, link_fingerprint, shard_for_fingerprint, source_digest
from .store import (
    CompileStore,
    linked_record_from_result,
    linked_store_key,
    record_from_result,
    store_key,
    unit_store_key,
)

__all__ = ["CompilationService", "WORKER_MODES"]

#: cache key: (kernel fingerprint, style, build_flat, observable)
_CacheKey = Tuple[str, GenerationStyle, bool, bool]

#: accepted values of the ``workers=`` argument of :meth:`compile_batch`
WORKER_MODES = ("threads", "processes")

#: scope-namespace prefix for per-unit compilations; unit fingerprints are
#: hex digests, so the prefix keeps them disjoint from whole-program
#: fingerprint namespaces on the same shard manager
_UNIT_SCOPE_PREFIX = "unit:"

#: shared no-op guard for worker-manager slots (nullcontext is stateless)
_NO_LOCK = contextlib.nullcontext()


class _PoolShard:
    """One shard of the pooled manager: manager + compile lock + counters.

    ``lock`` serializes compilations *within* the shard (and guards manager
    replacement during recycling); compilations on different shards never
    contend.  ``manager`` must only be read under ``lock`` by compiling
    code, so a concurrent recycle cannot swap it mid-pipeline.
    """

    __slots__ = ("index", "manager", "lock", "recycles")

    def __init__(self, index: int, manager: BDDManager):
        self.index = index
        self.manager = manager
        self.lock = threading.RLock()
        self.recycles = 0


class _WorkerSlot:
    """Duck-typed shard for a checked-out batch worker manager.

    Worker managers are owned by exactly one batch job for the duration of
    the checkout, so their guard is a shared no-op context manager.
    """

    __slots__ = ("manager", "lock")

    def __init__(self, manager: BDDManager):
        self.manager = manager
        self.lock = _NO_LOCK


# -- process-pool worker side -------------------------------------------------
#: per-worker-process compilation service (warm caches within one worker)
_WORKER_SERVICE: Optional["CompilationService"] = None

#: per-worker-process handles on parent disk stores, keyed by directory
_WORKER_STORES: Dict[str, CompileStore] = {}


def _worker_store(path: Optional[str]) -> Optional[CompileStore]:
    store = _WORKER_STORES.get(path) if path is not None else None
    if path is not None and store is None:
        store = _WORKER_STORES[path] = CompileStore(path)
    return store


def _process_worker_record(
    payload: Tuple[str, str, bool, bool, Optional[str], bool]
) -> Dict[str, object]:
    """Compile one source in a worker process; return its artifact record.

    Runs in the pool's child processes.  The worker keeps a small private
    ``CompilationService`` alive between tasks so repeated sources within
    one worker hit a warm cache; the record that crosses back to the parent
    is plain JSON (see the module docstring).  Toolchain errors propagate
    to the parent as the original ``SignalError`` subclass.

    When the parent configured a disk :class:`CompileStore`, the worker
    layers it under its private cache: the key is probed *before* the
    pipeline runs (so a record any daemon/node spilled earlier is a warm
    start here), and a genuine compile is spilled back (best-effort) so it
    warms every process and node sharing the directory.
    """
    global _WORKER_SERVICE
    if _WORKER_SERVICE is None:
        _WORKER_SERVICE = CompilationService(max_entries=64)
    source, style_value, build_flat, observable, store_path, modular = payload
    style = GenerationStyle(style_value)
    store = _worker_store(store_path)
    if modular:
        # Modular compiles share at unit granularity: the worker's private
        # unit LRU plus the parent's disk store (probed and written back
        # per unit inside compile_modular) replace the whole-program probe.
        return _WORKER_SERVICE.compile_modular_record(
            source, style=style, build_flat=build_flat, observable=observable,
            store=store,
        )
    if store is None:
        result = _WORKER_SERVICE.compile(
            source, style=style, build_flat=build_flat, observable=observable
        )
        return record_from_result(
            result, style, build_flat=build_flat, observable=observable
        )
    process = parse_process(source)
    program = normalize(process)
    key = store_key(program.fingerprint(), style, build_flat, observable)
    record = store.get(key)
    if record is not None:
        return record
    result = _WORKER_SERVICE.compile_process(
        process, style=style, build_flat=build_flat, observable=observable,
        program=program,
    )
    record = record_from_result(
        result, style, build_flat=build_flat, observable=observable
    )
    try:
        store.put(key, record)
    except OSError:
        pass  # a full disk must not fail a successful compile
    return record


def _process_worker_unit_record(
    payload: Tuple[str, str, Optional[str]]
) -> Dict[str, object]:
    """Resolve one *unit* in a worker process; return its artifact record.

    The parallel-link fan-out unit: the parent splits a modular batch into
    distinct units and ships each one here as ``(source containing it, unit
    fingerprint, store path)``.  The worker re-splits the source (cheap and
    BDD-free), locates the unit by fingerprint, and resolves it through its
    private unit LRU and the shared disk store -- so two workers racing on
    one unit at worst duplicate a compile, never diverge (unit compilation
    is deterministic).
    """
    global _WORKER_SERVICE
    if _WORKER_SERVICE is None:
        _WORKER_SERVICE = CompilationService(max_entries=64)
    source, unit_fingerprint, store_path = payload
    store = _worker_store(store_path)
    program = normalize(parse_process(source))
    for unit in split_units(program):
        if unit.fingerprint() == unit_fingerprint:
            return _WORKER_SERVICE._unit_record_for(unit, store)
    raise ValueError(
        f"batch bookkeeping error: source contains no unit {unit_fingerprint}"
    )


class CompilationService:
    """A stateful compiler front end that pools BDDs and caches results.

    Parameters
    ----------
    max_entries:
        Capacity of the LRU compile cache (whole compilation results).
    manager:
        Optionally, an existing shared manager to pool on (a fresh one is
        created by default).  Only valid with ``shards=1`` -- a sharded
        pool owns all of its managers.
    max_pool_nodes:
        Node-count watermark for pool hygiene, applied per shard: when a
        compilation leaves a shard manager (or returns a batch worker
        manager) with more than this many nodes, that manager is recycled
        and its scopes are released.  ``None`` (the default) disables
        recycling.
    shards:
        Number of independent pooled managers.  Programs route to shards by
        kernel-fingerprint hash (see the module docstring); compilations on
        different shards may run concurrently.
    store:
        Optionally, a disk :class:`~repro.service.store.CompileStore` (or
        its directory path) that **process workers** layer under their
        private caches: workers probe it before compiling and spill genuine
        compiles back, so cross-process batches warm-start from (and warm)
        every daemon/node sharing the directory.  The in-process compile
        path does not consult it -- the daemon layers the store above the
        service, exactly as before.

    ``compile``/``compile_process`` serialize per shard (concurrent calls
    for programs on different shards proceed in parallel);
    ``compile_batch`` is the fan-out entry point and isolates thread
    workers on their own managers or ships work to worker processes.
    """

    def __init__(
        self,
        max_entries: int = 128,
        manager: Optional[BDDManager] = None,
        max_pool_nodes: Optional[int] = None,
        shards: int = 1,
        store: Optional[Union[CompileStore, str, os.PathLike]] = None,
        max_unit_entries: Optional[int] = None,
        max_linked_entries: Optional[int] = None,
    ):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if manager is not None and shards != 1:
            raise ValueError(
                "manager= cannot be combined with shards>1: a sharded pool "
                "owns all of its managers"
            )
        self._pool_shards: List[_PoolShard] = [
            _PoolShard(0, manager if manager is not None else BDDManager())
        ] + [_PoolShard(index, BDDManager()) for index in range(1, shards)]
        self.max_pool_nodes = max_pool_nodes
        if store is not None and not isinstance(store, CompileStore):
            store = CompileStore(store)
        #: disk store process workers layer under their caches (may be None)
        self.store: Optional[CompileStore] = store
        self._store_path = str(store.path) if store is not None else None
        self._results: LRUCache[CompilationResult] = LRUCache(
            max_entries, on_evict=self._on_result_evicted
        )
        # Per-unit artifact records (modular compilation), keyed by unit
        # fingerprint.  Units are small next to whole results, and one
        # program holds several, so the default capacity is a multiple of
        # the result cache's.
        if max_unit_entries is None:
            max_unit_entries = max(max_entries * 4, 16)
        self._unit_records: LRUCache[Dict[str, object]] = LRUCache(
            max_unit_entries, on_evict=self._on_unit_evicted
        )
        # Composed linked results (modular compilation), keyed by the link
        # fingerprint -- the digest of the ordered unit-fingerprint tuple,
        # the rename maps and the code-generation options (see
        # :func:`repro.service.cache.link_fingerprint`).  A hit skips unit
        # resolution and the link stage entirely.  ``max_linked_entries=0``
        # disables the tier (every modular request re-links from units, the
        # pre-link behaviour benchmarks compare against).
        if max_linked_entries is None:
            max_linked_entries = max_entries
        self._linked_results: Optional[LRUCache[LinkedCompilationResult]] = (
            LRUCache(max_linked_entries) if max_linked_entries > 0 else None
        )
        # Source-text digest -> kernel fingerprint (exact-repeat fast path).
        self._source_fingerprints: LRUCache[str] = LRUCache(max(max_entries * 4, 16))
        # (source digest, options) -> link fingerprint: the modular
        # exact-repeat fast path (skips parse + normalize + split on a hit).
        self._link_fingerprints: LRUCache[str] = LRUCache(max(max_entries * 4, 16))
        # (manager identity, namespace) -> scope; managers are kept alive for
        # the service's lifetime, so id() keys are stable.
        self._scopes: Dict[Tuple[int, str], ScopedBDDManager] = {}
        self._lock = threading.RLock()
        # Idle worker managers, checked out for the duration of one batch
        # compilation and returned afterwards: the pool is bounded by the
        # highest concurrency ever used and reused across batches.
        self._idle_workers: "queue.SimpleQueue[BDDManager]" = queue.SimpleQueue()
        self._worker_managers: List[BDDManager] = []
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._process_jobs = 0
        self._process_borrows = 0
        self._requests = 0
        self._worker_recycles = 0
        self._process_records = 0
        # Modular (unit-granularity) counters.
        self._modular_requests = 0
        self._unit_hits = 0
        self._unit_misses = 0
        self._unit_store_hits = 0
        self._links = 0
        self._link_hits = 0
        self._link_misses = 0
        self._link_store_hits = 0

    # -- shard routing -------------------------------------------------------
    @property
    def shards(self) -> int:
        """Number of pool shards (1 = the historical single-pool layout)."""
        return len(self._pool_shards)

    @property
    def manager(self) -> BDDManager:
        """The first shard's manager (the whole pool when ``shards=1``)."""
        return self._pool_shards[0].manager

    def shard_index(self, fingerprint: str) -> int:
        """The shard a kernel fingerprint routes to (stable, process-safe)."""
        return shard_for_fingerprint(fingerprint, len(self._pool_shards))

    def shard_manager(self, fingerprint: str) -> BDDManager:
        """The manager a program currently compiles on (for tests/inspection)."""
        return self._shard_for(fingerprint).manager

    def _shard_for(self, fingerprint: str) -> _PoolShard:
        return self._pool_shards[self.shard_index(fingerprint)]

    # -- cache plumbing -----------------------------------------------------
    @staticmethod
    def _key(
        fingerprint: str,
        style: GenerationStyle,
        build_flat: bool,
        observable: bool,
    ) -> _CacheKey:
        return (fingerprint, style, build_flat, observable)

    def _scope_for(self, manager: BDDManager, fingerprint: str) -> ScopedBDDManager:
        """The persistent per-program scope of a manager.

        Scopes are cached per (manager, program) so a recompilation -- on
        the program's pool shard or on a reused worker manager -- finds its
        variables and value encodings again.  The full fingerprint is the
        namespace: distinct kernels can never share a scope.
        """
        key = (id(manager), fingerprint)
        with self._lock:
            scope = self._scopes.get(key)
            if scope is None:
                scope = manager.scoped(fingerprint)
                self._scopes[key] = scope
            return scope

    def _release_orphan_scopes(self, fingerprint: str) -> None:
        """Drop a program's scopes when no cached result references it.

        The scope and its encoding cache hold BDD handles; releasing them
        keeps the service's bookkeeping bounded by the LRU under varied
        traffic.  (Nodes already interned in a manager's unique table are
        not reclaimed -- recycling the table is what the watermark is for.)
        """
        if any(key[0] == fingerprint for key in self._results.keys()):
            return  # another style/options entry still uses this program
        with self._lock:
            stale = [k for k in self._scopes if k[1] == fingerprint]
            for scope_key in stale:
                self._scopes.pop(scope_key).encoding_cache.clear()

    def _on_result_evicted(self, key, value) -> None:
        self._release_orphan_scopes(key[0])

    def _release_unit_scopes(self, fingerprint: str) -> None:
        """Drop a unit's compile scopes when its record is no longer cached.

        Mirrors :meth:`_release_orphan_scopes` at unit granularity: a unit
        whose artifact record lives in the unit LRU keeps its scope (a
        recompile after watermark recycling finds its variables again);
        once the record is gone -- evicted, or never stored because the
        unit failed to compile mid-link -- the scope must go too.
        """
        if self._unit_records.peek(fingerprint) is not None:
            return
        namespace = _UNIT_SCOPE_PREFIX + fingerprint
        with self._lock:
            stale = [k for k in self._scopes if k[1] == namespace]
            for scope_key in stale:
                self._scopes.pop(scope_key).encoding_cache.clear()

    def _on_unit_evicted(self, fingerprint, record) -> None:
        self._release_unit_scopes(fingerprint)

    def _compile_program(
        self,
        process: Process,
        program: KernelProgram,
        fingerprint: str,
        style: GenerationStyle,
        build_flat: bool,
        observable: bool,
        manager: BDDManager,
    ) -> CompilationResult:
        scope = self._scope_for(manager, fingerprint)
        return compile_process(
            process,
            style=style,
            build_flat=build_flat,
            observable=observable,
            manager=scope,
            program=program,
        )

    def _compile_cached(
        self,
        source: Optional[str],
        process: Optional[Process],
        style: GenerationStyle,
        build_flat: bool,
        observable: bool,
        slot_supplier: "Callable[[str], object]",
        program: Optional[KernelProgram] = None,
    ) -> CompilationResult:
        """The shared miss/hit pipeline behind every compile entry point.

        ``slot_supplier`` maps the program's fingerprint to the *slot* a
        genuine miss compiles on -- a pool shard (whose lock serializes the
        shard) or a lazily checked-out worker manager (no lock needed: the
        checkout is exclusive).  It is only called on a miss, so fully-warm
        traffic never touches a manager.
        """
        with self._lock:
            self._requests += 1

        digest = None
        counted_miss = False
        if source is not None:
            digest = source_digest(source)
            fingerprint = self._source_fingerprints.get(digest)
            if fingerprint is not None:
                cached = self._results.get(
                    self._key(fingerprint, style, build_flat, observable)
                )
                if cached is not None:
                    return self._fresh_hit(cached)
                counted_miss = True
                # Known program, options not cached yet: reparse below (the
                # kernel form is needed by the pipeline anyway).

        if process is None:
            assert source is not None
            process = parse_process(source)
        if program is None:
            program = normalize(process)
        fingerprint = program.fingerprint()
        if digest is not None:
            self._source_fingerprints.put(digest, fingerprint)

        key = self._key(fingerprint, style, build_flat, observable)
        # The fast path above already charged this request with a miss; avoid
        # double counting while still honouring a concurrent worker that may
        # have filled the entry in the meantime.
        cached = self._results.peek(key) if counted_miss else self._results.get(key)
        if cached is not None:
            return self._fresh_hit(cached)

        # Only a genuine miss needs a manager (batch workers check one out
        # of the pool lazily here, so fully-warm batches allocate nothing).
        try:
            slot = slot_supplier(fingerprint)
            with slot.lock:
                result = self._compile_program(
                    process, program, fingerprint, style, build_flat, observable,
                    slot.manager,
                )
        except BaseException:
            # A failed compilation stores no result, so nothing would ever
            # evict the scope registered above -- release it now.  This must
            # cover BaseException, not just Exception: a batch worker killed
            # by e.g. KeyboardInterrupt or a future cancellation would
            # otherwise leak its scope in a long-lived daemon.
            self._release_orphan_scopes(fingerprint)
            raise
        self._results.put(key, result)
        return result

    @staticmethod
    def _fresh_hit(result: CompilationResult) -> CompilationResult:
        """Restore fresh-compile semantics on a cache hit.

        The cached executables carry mutable delay-register state, so the
        hit returns a copy of the result with brand-new step instances
        (rebuilt from the cached generated source -- a tiny cost next to the
        pipeline): every caller gets isolated simulation state, and a hit
        can never perturb an earlier caller's in-progress run.  The analysis
        artifacts (hierarchy, schedule, IR, sources) are shared.
        """
        executable = result.executable.fresh()
        executable_flat = (
            result.executable_flat.fresh() if result.executable_flat is not None else None
        )
        return replace(result, executable=executable, executable_flat=executable_flat)

    def _pooled_supplier(self, used: List[_PoolShard]) -> "Callable[[str], _PoolShard]":
        def supplier(fingerprint: str) -> _PoolShard:
            shard = self._shard_for(fingerprint)
            used.append(shard)
            return shard

        return supplier

    # -- public API ---------------------------------------------------------
    def compile(
        self,
        source: str,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
    ) -> CompilationResult:
        """Compile SIGNAL source text, reusing pooled BDDs and cached results.

        Cache misses compile on the program's pool shard.  A hit may return
        a result originally produced by :meth:`compile_batch`, whose BDDs
        live on that batch's worker manager instead -- the result is
        identical in behaviour, but do not combine its clock BDDs with
        those of another result unless both live on one manager (check
        ``result.hierarchy.manager``).
        """
        used: List[_PoolShard] = []
        result = self._compile_cached(
            source, None, style, build_flat, observable, self._pooled_supplier(used)
        )
        for shard in used:
            self._maybe_recycle_shard(shard)
        return result

    def compile_process(
        self,
        process: Process,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
        program: Optional[KernelProgram] = None,
    ) -> CompilationResult:
        """Like :meth:`compile` for an already-parsed process.

        ``program`` optionally supplies the already-normalized kernel form
        of ``process`` (callers like the daemon normalize first to compute
        the cache key; passing it through avoids normalizing twice).
        """
        used: List[_PoolShard] = []
        result = self._compile_cached(
            None, process, style, build_flat, observable,
            self._pooled_supplier(used), program=program,
        )
        for shard in used:
            self._maybe_recycle_shard(shard)
        return result

    def compile_record(
        self,
        source: str,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
    ) -> Dict[str, object]:
        """Compile in-process and render the JSON-safe artifact record.

        The inline counterpart of :meth:`compile_record_in_process`: same
        output shape, produced on the caller's thread through the normal
        pooled/cached path.
        """
        result = self.compile(
            source, style=style, build_flat=build_flat, observable=observable
        )
        return record_from_result(
            result, style, build_flat=build_flat, observable=observable
        )

    # -- modular compilation -------------------------------------------------
    def _unit_record_for(self, unit, store: Optional[CompileStore]) -> Dict[str, object]:
        """The artifact record of one unit: memory LRU, disk store, or compile.

        A genuine compile runs on the shard the *unit* fingerprint routes
        to (under that shard's lock, in a ``unit:``-prefixed scope) and is
        spilled to the store best-effort, so any daemon or worker process
        sharing the directory warms at module granularity.
        """
        fingerprint = unit.fingerprint()
        record = self._unit_records.get(fingerprint)
        if record is not None:
            with self._lock:
                self._unit_hits += 1
            return record
        if store is not None:
            record = store.get(unit_store_key(fingerprint))
            if record is not None:
                with self._lock:
                    self._unit_store_hits += 1
                self._unit_records.put(fingerprint, record)
                return record
        shard = self._shard_for(fingerprint)
        try:
            with shard.lock:
                scope = self._scope_for(shard.manager, _UNIT_SCOPE_PREFIX + fingerprint)
                record = compile_unit_record(unit, manager=scope)
        except BaseException:
            # A unit that fails to compile caches no record; its scope must
            # not outlive the failure (the mid-link scope-release invariant
            # tests/test_modular.py checks).  Units compiled earlier for the
            # same program keep theirs -- their records are cached and
            # reusable by the next program.
            self._release_unit_scopes(fingerprint)
            raise
        with self._lock:
            self._unit_misses += 1
        self._unit_records.put(fingerprint, record)
        if store is not None:
            try:
                store.put(unit_store_key(fingerprint), record)
            except OSError:
                pass  # best-effort spill, as for whole-program records
        self._maybe_recycle_shard(shard)
        return record

    def _linked_fresh_hit(
        self, cached: LinkedCompilationResult
    ) -> LinkedCompilationResult:
        with self._lock:
            self._link_hits += 1
        return self._fresh_hit(cached)

    def compile_modular(
        self,
        source: Optional[str] = None,
        process: Optional[Process] = None,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
        program: Optional[KernelProgram] = None,
        store: Optional[CompileStore] = None,
    ) -> LinkedCompilationResult:
        """Compile unit-by-unit against the unit cache, then link.

        The program is split into canonical units
        (:func:`repro.lang.units.split_units`); each unit's artifacts come
        from the in-memory unit LRU, the disk store (``store=`` overrides
        the service's own), or a genuine per-unit compile on the unit's
        shard.  The link stage then composes them into a
        :class:`~repro.compiler.LinkedCompilationResult` that is
        trace-equivalent to the monolithic :meth:`compile` of the same
        source.

        Composed results are cached in a third tier above the unit cache:
        the **linked-result LRU**, keyed by the link fingerprint (ordered
        unit tuple + renames + options), with ``kind: "linked"`` records
        spilled to the disk store.  A repeat of the same composition is a
        ``link_hits`` hit that skips unit resolution and the link stage and
        returns a copy with fresh executables, exactly like :meth:`compile`
        hits; a store hit rehydrates without loading unit records, so a
        pruned unit record never forces a recompile while its linked record
        survives.  Unit-granularity sharing is untouched -- a *novel*
        composition of cached units still pays only the link.
        """
        if source is None and process is None:
            raise ValueError("compile_modular needs source= or process=")
        with self._lock:
            self._requests += 1
            self._modular_requests += 1
        if store is None:
            store = self.store

        digest_key = None
        if source is not None and self._linked_results is not None:
            digest_key = (source_digest(source), style.value, build_flat, observable)
            memo_fp = self._link_fingerprints.get(digest_key)
            if memo_fp is not None:
                cached = self._linked_results.get(memo_fp)
                if cached is not None:
                    return self._linked_fresh_hit(cached)

        if process is None:
            process = parse_process(source)
        if program is None:
            program = normalize(process)
        units = split_units(program)
        link_fp = link_fingerprint(
            program.name,
            [unit.fingerprint() for unit in units],
            [unit.from_canonical for unit in units],
            program.inputs,
            program.outputs,
            style.value,
            build_flat,
            observable,
        )
        if digest_key is not None:
            self._link_fingerprints.put(digest_key, link_fp)
        if self._linked_results is not None:
            cached = self._linked_results.get(link_fp)
            if cached is not None:
                return self._linked_fresh_hit(cached)
            if store is not None:
                record = store.get(linked_store_key(link_fp))
                if (
                    record is not None
                    and record.get("program_fingerprint") == program.fingerprint()
                ):
                    with self._lock:
                        self._link_store_hits += 1
                    linked = linked_result_from_record(
                        record, program, units, process=process
                    )
                    self._linked_results.put(link_fp, linked)
                    return linked

        with self._lock:
            self._link_misses += 1
        records = [self._unit_record_for(unit, store) for unit in units]
        linked = link_units(
            program,
            units,
            records,
            style=style,
            build_flat=build_flat,
            observable=observable,
            process=process,
        )
        with self._lock:
            self._links += 1
        if self._linked_results is not None:
            self._linked_results.put(link_fp, linked)
            if store is not None:
                try:
                    store.put(
                        linked_store_key(link_fp),
                        linked_record_from_result(
                            linked, link_fp, style,
                            build_flat=build_flat, observable=observable,
                        ),
                    )
                except OSError:
                    pass  # best-effort spill, as for unit records
        return linked

    def compile_modular_record(
        self,
        source: str,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
        store: Optional[CompileStore] = None,
    ) -> Dict[str, object]:
        """Modular compile rendered as a whole-program artifact record.

        The record has the exact shape of :meth:`compile_record`'s (kind
        ``"program"``, keyed by the *whole-program* fingerprint): consumers
        of records never see whether the miss path was monolithic or
        modular, which is what lets the daemon's record tiers stay keyed as
        before.
        """
        linked = self.compile_modular(
            source, style=style, build_flat=build_flat, observable=observable,
            store=store,
        )
        return record_from_result(
            linked, style, build_flat=build_flat, observable=observable
        )

    def compile_batch(
        self,
        sources: Iterable[str],
        jobs: int = 1,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
        workers: str = "threads",
        modular: bool = False,
    ):
        """Compile many sources with ``jobs`` worker threads or processes.

        With ``modular=True`` the *unit*, not the source, is the fan-out
        grain (the parallel link stage): the batch is split up front, its
        distinct units are resolved concurrently -- on the pool shards for
        thread batches, as one pool task per novel unit for process
        batches -- and the final compose runs serially over warm units
        through :meth:`compile_modular`, so repeated compositions land in
        (and hit) the linked-result LRU.  Thread batches return linked
        results; process batches return whole-program artifact records
        composed in the parent from the workers' unit records.

        Results come back in input order.  The two backends differ in what
        they can return:

        * ``workers="threads"`` (default) returns a list of live
          :class:`~repro.compiler.CompilationResult` objects.  Workers that
          miss the cache compile on a worker manager checked out from a
          persistent pool (at most one per concurrently running job, reused
          across batches) so the pool shards are never touched
          concurrently; all results land in the shared compile cache.  BDDs
          of a batch-compiled result are therefore bound to its worker
          manager -- combine clock BDDs across results only when both live
          on one manager.
        * ``workers="processes"`` returns a list of JSON-safe **artifact
          records** (the PR-2 store format): live results cannot cross a
          process boundary, records can -- rebuild a runnable step with
          :func:`repro.service.store.executable_from_record`.  Compilation
          happens in a persistent :class:`ProcessPoolExecutor` sized to
          ``jobs``, sidestepping the GIL entirely; the parent's caches are
          not consulted or populated (each worker process keeps its own).

        If the same program appears twice in one thread batch it may be
        compiled by two workers; the cache keeps whichever finishes last,
        which is harmless because compilation is deterministic.  A source
        that fails to compile raises its ``SignalError`` from the batch
        call in either mode; in process mode the exception additionally
        carries ``batch_index`` (the failing source's position), because
        the parent holds no cache that could cheaply re-identify it.
        """
        if workers not in WORKER_MODES:
            raise ValueError(f"workers must be one of {WORKER_MODES} (got {workers!r})")
        source_list = list(sources)
        if workers == "processes":
            return self._compile_batch_processes(
                source_list, jobs, style, build_flat, observable, modular
            )
        if modular:
            if jobs <= 1:
                return [
                    self.compile_modular(
                        s, style=style, build_flat=build_flat, observable=observable
                    )
                    for s in source_list
                ]
            return self._compile_batch_modular_threads(
                source_list, jobs, style, build_flat, observable
            )
        if jobs <= 1:
            return [
                self.compile(s, style=style, build_flat=build_flat, observable=observable)
                for s in source_list
            ]

        def work(source: str) -> CompilationResult:
            checked_out: List[BDDManager] = []

            def supplier(fingerprint: str) -> _WorkerSlot:
                manager = self._checkout_worker_manager()
                checked_out.append(manager)
                return _WorkerSlot(manager)

            try:
                return self._compile_cached(
                    source, None, style, build_flat, observable, supplier
                )
            finally:
                # Returned even when the job raised: the manager itself is
                # reusable (the failed program's scope was already released
                # by _compile_cached), but an over-budget manager is retired
                # here rather than requeued.
                for manager in checked_out:
                    self._return_worker_manager(manager)

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(work, source_list))

    def _split_batch(
        self, source_list: List[str], mapper=map
    ) -> Tuple[list, Dict[str, object]]:
        """Parse/split every source; dedupe units across the whole batch.

        Returns ``(parsed, unique)`` where ``parsed`` holds one
        ``(process, program, units)`` triple per source (input order) and
        ``unique`` maps each distinct unit fingerprint to one
        representative -- the unit object for thread batches, the index of
        the first source containing it for process batches (via
        ``enumerate`` on the caller side).  ``mapper`` lets thread batches
        fan the parse itself out.
        """
        def split(source: str):
            process = parse_process(source)
            program = normalize(process)
            return process, program, split_units(program)

        parsed = list(mapper(split, source_list))
        unique: Dict[str, object] = {}
        for _, _, units in parsed:
            for unit in units:
                unique.setdefault(unit.fingerprint(), unit)
        return parsed, unique

    def _compile_batch_modular_threads(
        self,
        source_list: List[str],
        jobs: int,
        style: GenerationStyle,
        build_flat: bool,
        observable: bool,
    ) -> List[LinkedCompilationResult]:
        """The parallel link stage, thread flavour.

        Phase 1 parses and splits every source on the pool; phase 2 dedupes
        units across the whole batch and resolves each distinct unit
        exactly once, concurrently (unit misses serialize per shard lock,
        so no worker-manager checkout is needed); phase 3 composes
        serially -- every unit is warm by then, so each compose is pure
        link work, or a linked-LRU hit when the composition repeats.
        """
        store = self.store
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            parsed, unique = self._split_batch(source_list, mapper=pool.map)
            list(
                pool.map(
                    lambda unit: self._unit_record_for(unit, store), unique.values()
                )
            )
        return [
            self.compile_modular(
                source,
                process=process,
                style=style,
                build_flat=build_flat,
                observable=observable,
                program=program,
            )
            for source, (process, program, _) in zip(source_list, parsed)
        ]

    def _compile_batch_modular_processes(
        self,
        source_list: List[str],
        jobs: int,
        style: GenerationStyle,
        build_flat: bool,
        observable: bool,
    ) -> List[Dict[str, object]]:
        """The parallel link stage, process flavour.

        Units (not whole sources) are the fan-out grain: each distinct unit
        not already in the parent's unit LRU becomes one pool task, its
        returned record is injected back into the parent's LRU, and the
        parent composes every program serially from warm units -- the
        compose step is BDD-free, so only per-unit compilation crosses the
        process boundary.  Workers spill through the shared disk store when
        one is configured, exactly like whole-source modular workers.
        """
        parsed, unique = self._split_batch(source_list)
        owners: Dict[str, int] = {}
        for index, (_, _, units) in enumerate(parsed):
            for unit in units:
                owners.setdefault(unit.fingerprint(), index)
        pending = {
            fingerprint: owners[fingerprint]
            for fingerprint in unique
            if self._unit_records.peek(fingerprint) is None
        }
        if pending:
            with self._borrow_process_pool(max(jobs, 1)) as pool:
                futures = {
                    fingerprint: pool.submit(
                        _process_worker_unit_record,
                        (source_list[index], fingerprint, self._store_path),
                    )
                    for fingerprint, index in pending.items()
                }
                for fingerprint, future in futures.items():
                    try:
                        record = future.result()
                    except BaseException as error:
                        # Blame the first source containing the unit, like
                        # whole-source process batches blame their index.
                        if not hasattr(error, "batch_index"):
                            error.batch_index = pending[fingerprint]
                        raise
                    self._unit_records.put(fingerprint, record)
        records = []
        for source, (process, program, _) in zip(source_list, parsed):
            linked = self.compile_modular(
                source,
                process=process,
                style=style,
                build_flat=build_flat,
                observable=observable,
                program=program,
            )
            records.append(
                record_from_result(
                    linked, style, build_flat=build_flat, observable=observable
                )
            )
        with self._lock:
            self._process_records += len(records)
        return records

    def compile_batch_records(
        self,
        sources: Iterable[str],
        jobs: int = 1,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
        workers: str = "threads",
        modular: bool = False,
    ) -> List[Dict[str, object]]:
        """Like :meth:`compile_batch`, but always return artifact records.

        This is the uniform-output entry point for callers that compare or
        persist batch results (benchmarks, the fuzz harness): thread and
        serial batches render their live results into records, process
        batches return the workers' records as-is.
        """
        source_list = list(sources)
        if workers == "processes":
            return self._compile_batch_processes(
                source_list, jobs, style, build_flat, observable, modular
            )
        results = self.compile_batch(
            source_list, jobs=jobs, style=style, build_flat=build_flat,
            observable=observable, workers=workers, modular=modular,
        )
        return [
            record_from_result(r, style, build_flat=build_flat, observable=observable)
            for r in results
        ]

    # -- process backend -----------------------------------------------------
    def _compile_batch_processes(
        self,
        source_list: List[str],
        jobs: int,
        style: GenerationStyle,
        build_flat: bool,
        observable: bool,
        modular: bool = False,
    ) -> List[Dict[str, object]]:
        if modular:
            return self._compile_batch_modular_processes(
                source_list, jobs, style, build_flat, observable
            )
        payloads = [
            (source, style.value, bool(build_flat), bool(observable),
             self._store_path, bool(modular))
            for source in source_list
        ]
        with self._borrow_process_pool(max(jobs, 1)) as pool:
            futures = [
                pool.submit(_process_worker_record, payload) for payload in payloads
            ]
            records = []
            for index, future in enumerate(futures):
                try:
                    records.append(future.result())
                except BaseException as error:
                    # Name the culprit: the parent never compiled anything,
                    # so without the index a caller (e.g. the CLI) would
                    # have to recompile the whole batch to find it.
                    if not hasattr(error, "batch_index"):
                        error.batch_index = index
                    raise
        with self._lock:
            self._requests += len(source_list)
            self._process_records += len(records)
        return records

    def compile_record_in_process(
        self,
        source: str,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
        jobs: int = 1,
        modular: bool = False,
    ) -> Dict[str, object]:
        """Compile one source on the process pool; return its artifact record.

        The daemon's parallel compile tier: ``K`` request threads each park
        here while their compilation runs in a worker process, so ``K``
        compilations proceed on ``K`` cores instead of serializing on the
        GIL.  ``jobs`` sizes (and can grow) the shared pool.  ``modular``
        makes the worker compile unit-by-unit (warming, and warmed by, the
        parent's disk store at unit granularity).
        """
        with self._borrow_process_pool(max(jobs, 1)) as pool:
            record = pool.submit(
                _process_worker_record,
                (source, style.value, bool(build_flat), bool(observable),
                 self._store_path, bool(modular)),
            ).result()
        with self._lock:
            self._requests += 1
            self._process_records += 1
        return record

    @contextlib.contextmanager
    def _borrow_process_pool(self, jobs: int):
        """Check the shared worker-process pool out for one batch/submit.

        The pool is created lazily and *grown* -- drained and rebuilt with
        more workers -- only while nobody else has it checked out: replacing
        a pool another thread is about to submit to would make that submit
        raise ``cannot schedule new futures after shutdown``.  A concurrent
        borrower asking for more workers while the pool is busy simply uses
        the existing (smaller) pool; the growth happens on the next idle
        borrow.  Shrinking is never done implicitly -- idle workers cost
        little and keep their warm caches.
        """
        with self._lock:
            if (
                self._process_pool is not None
                and self._process_jobs < jobs
                and self._process_borrows == 0
            ):
                self._process_pool.shutdown(wait=True)
                self._process_pool = None
            if self._process_pool is None:
                self._process_pool = ProcessPoolExecutor(max_workers=jobs)
                self._process_jobs = jobs
            pool = self._process_pool
            self._process_borrows += 1
        try:
            yield pool
        finally:
            with self._lock:
                self._process_borrows -= 1

    def close(self) -> None:
        """Shut down the worker-process pool (if one was ever started).

        Safe to call any time and more than once; the next process-mode
        compile simply builds a fresh pool.  Do not call it concurrently
        with an in-flight process batch (the daemon tears its request
        threads down first).  Thread workers and the pool shards need no
        teardown.
        """
        with self._lock:
            pool, self._process_pool, self._process_jobs = self._process_pool, None, 0
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "CompilationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _checkout_worker_manager(self) -> BDDManager:
        try:
            return self._idle_workers.get_nowait()
        except queue.Empty:
            manager = BDDManager()
            with self._lock:
                self._worker_managers.append(manager)
            return manager

    # -- pool hygiene --------------------------------------------------------
    def _over_watermark(self, manager: BDDManager) -> bool:
        return self.max_pool_nodes is not None and manager.num_nodes > self.max_pool_nodes

    def _drop_manager_scopes_locked(self, manager_id: int) -> None:
        """Release every scope registered on a recycled/retired manager.

        Must be called with ``self._lock`` held.  Cached results keep the
        old manager object (and hence their BDDs) alive; only the service's
        bookkeeping for it is dropped, so nothing can resurrect a scope on a
        dead manager or collide with a reused ``id()``.
        """
        stale = [key for key in self._scopes if key[0] == manager_id]
        for scope_key in stale:
            self._scopes.pop(scope_key).encoding_cache.clear()

    def _maybe_recycle_shard(self, shard: _PoolShard) -> None:
        """Replace a shard's manager with a fresh one when over budget.

        Lock order is shard lock, then the service lock -- the same order
        the compile path uses (`slot.lock` around the pipeline, `_scope_for`
        inside), so a recycle can never deadlock against a compilation.
        """
        if not self._over_watermark(shard.manager):
            return
        with shard.lock:
            old = shard.manager
            if not self._over_watermark(old):  # re-check under the lock
                return
            shard.manager = old.fresh_like()
            with self._lock:
                self._drop_manager_scopes_locked(id(old))
                shard.recycles += 1

    def _return_worker_manager(self, manager: BDDManager) -> None:
        """Requeue an idle worker manager, or retire it when over budget."""
        if not self._over_watermark(manager):
            self._idle_workers.put(manager)
            return
        with self._lock:
            try:
                self._worker_managers.remove(manager)
            except ValueError:  # pragma: no cover - retired concurrently
                pass
            self._drop_manager_scopes_locked(id(manager))
            self._worker_recycles += 1

    # -- maintenance and reporting ------------------------------------------
    def clear_cache(self) -> None:
        """Drop cached results and scopes (interned pooled BDDs are kept)."""
        self._results.clear()
        self._unit_records.clear()
        if self._linked_results is not None:
            self._linked_results.clear()
        self._source_fingerprints.clear()
        self._link_fingerprints.clear()
        with self._lock:
            for scope in self._scopes.values():
                scope.encoding_cache.clear()
            self._scopes.clear()

    @property
    def cache_size(self) -> int:
        return len(self._results)

    def shard_statistics(self) -> List[Dict[str, int]]:
        """Per-shard pool counters (``statistics()["shard_stats"]``)."""
        with self._lock:
            shard_scopes = {id(shard.manager): 0 for shard in self._pool_shards}
            for manager_id, _ in self._scopes:
                if manager_id in shard_scopes:
                    shard_scopes[manager_id] += 1
            stats = []
            for shard in self._pool_shards:
                manager_stats = shard.manager.statistics()
                stats.append(
                    {
                        "index": shard.index,
                        "bdd_nodes": manager_stats["nodes"],
                        "bdd_vars": manager_stats["vars"],
                        "ite_cache_entries": manager_stats["ite_cache_entries"],
                        "recycles": shard.recycles,
                        "scopes": shard_scopes[id(shard.manager)],
                    }
                )
            return stats

    def statistics(self) -> Dict[str, object]:
        """Counters for monitoring: cache behaviour and pool sizes.

        ``pooled_bdd_nodes``/``pooled_bdd_vars``/``pooled_ite_cache_entries``
        sum over all shards and ``pool_recycles`` is the sum of the
        per-shard recycle counters, so the headline numbers mean the same
        thing at any shard count; ``shard_stats`` breaks them down.
        """
        shard_stats = self.shard_statistics()
        with self._lock:
            worker_nodes = sum(m.num_nodes for m in self._worker_managers)
            worker_count = len(self._worker_managers)
            requests = self._requests
            worker_recycles = self._worker_recycles
            process_records = self._process_records
            process_workers = self._process_jobs
            modular_requests = self._modular_requests
            unit_hits = self._unit_hits
            unit_misses = self._unit_misses
            unit_store_hits = self._unit_store_hits
            links = self._links
            link_hits = self._link_hits
            link_misses = self._link_misses
            link_store_hits = self._link_store_hits
        stats = {
            "requests": requests,
            "cache_entries": len(self._results),
            "cache_max_entries": self._results.max_entries,
            "scopes": len(self._scopes),
            "source_fast_path_hits": self._source_fingerprints.stats.hits,
            "shards": len(self._pool_shards),
            "shard_stats": shard_stats,
            "pooled_bdd_nodes": sum(s["bdd_nodes"] for s in shard_stats),
            "pooled_bdd_vars": sum(s["bdd_vars"] for s in shard_stats),
            "pooled_ite_cache_entries": sum(s["ite_cache_entries"] for s in shard_stats),
            "worker_managers": worker_count,
            "worker_bdd_nodes": worker_nodes,
            "max_pool_nodes": self.max_pool_nodes or 0,
            "pool_recycles": sum(s["recycles"] for s in shard_stats),
            "worker_recycles": worker_recycles,
            "process_pool_workers": process_workers,
            "process_records": process_records,
            "modular_requests": modular_requests,
            "unit_cache_entries": len(self._unit_records),
            "unit_cache_max_entries": self._unit_records.max_entries,
            "unit_hits": unit_hits,
            "unit_misses": unit_misses,
            "unit_store_hits": unit_store_hits,
            "links": links,
            "link_hits": link_hits,
            "link_misses": link_misses,
            "link_store_hits": link_store_hits,
            "linked_cache_entries": (
                len(self._linked_results) if self._linked_results is not None else 0
            ),
            "linked_cache_max_entries": (
                self._linked_results.max_entries
                if self._linked_results is not None
                else 0
            ),
        }
        stats.update(
            {f"cache_{name}": value for name, value in self._results.stats.as_dict().items()}
        )
        return stats
