"""Client library for the compilation daemon.

:class:`RemoteCompiler` is a small blocking client for the JSON-line
protocol served by :mod:`repro.service.daemon`::

    from repro.service import RemoteCompiler

    with RemoteCompiler(port=7420) as compiler:
        result = compiler.compile(source, emit=["python", "stats"])
        print(result.artifacts["python"])
        print(compiler.stats()["daemon"]["memory_hits"])

Remote compilations return :class:`RemoteResult` -- rendered artifacts and
statistics, not live analysis objects (BDDs never cross the wire).  Protocol
failures raise :class:`RemoteError`, which carries the structured error code
the daemon reported (``parse-error``, ``clock-error``, ...), so callers can
distinguish a bad program from a dead socket.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Union

from ..codegen.ir import GenerationStyle

__all__ = ["RemoteCompiler", "RemoteResult", "RemoteError"]


class RemoteError(Exception):
    """A failure reported by (or while talking to) the compilation daemon."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        #: the protocol error code (``parse-error``, ``invalid-request``,
        #: ``connection-closed``, ...)
        self.code = code
        #: the human-readable message from the daemon
        self.remote_message = message


@dataclass
class RemoteResult:
    """The daemon's answer to one ``compile`` request."""

    name: str
    fingerprint: str
    #: which cache tier answered: ``"memory"``, ``"store"`` or ``"compiled"``
    origin: str
    statistics: Dict[str, int]
    #: requested artifact texts, keyed by emit kind (``python``, ``tree``, ...)
    artifacts: Dict[str, object] = field(default_factory=dict)
    #: ``{"reactions", "seed", "diagram"}`` when simulation was requested
    simulation: Optional[Dict[str, object]] = None

    @property
    def cached(self) -> bool:
        return self.origin != "compiled"


class RemoteCompiler:
    """A connection to a running compilation daemon.

    Connects over TCP (``host``/``port``) or a unix domain socket
    (``socket_path``).  The connection is persistent: repeated compiles
    reuse it, which is what makes the daemon's source-digest fast path
    worthwhile.  Instances are not thread-safe; use one per thread (the
    daemon interleaves clients fairly).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
        timeout: float = 60.0,
    ):
        if (port is None) == (socket_path is None):
            raise ValueError("exactly one of port= or socket_path= is required")
        if socket_path is not None:
            self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                self._socket.settimeout(timeout)
                self._socket.connect(socket_path)
            except BaseException:
                self._socket.close()  # no fd leak when the daemon is not up yet
                raise
        else:
            self._socket = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._socket.makefile("rwb")
        self._dead = False

    # -- plumbing ------------------------------------------------------------
    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one raw request and return the daemon's response object.

        After an I/O failure (timeout, reset) the connection is marked
        unusable: a late response may still be in flight and there is no
        request-id correlation, so reusing the stream could pair the next
        request with the previous answer.  Open a new client instead.
        """
        if self._dead:
            raise RemoteError(
                "connection-unusable",
                "a previous request failed mid-flight; open a new RemoteCompiler",
            )
        try:
            self._stream.write(json.dumps(payload).encode("utf-8") + b"\n")
            self._stream.flush()
            line = self._stream.readline()
        except socket.timeout as error:
            self._dead = True
            raise RemoteError("timeout", f"daemon did not answer in time: {error}") from None
        except OSError as error:
            self._dead = True
            raise RemoteError("io-error", f"connection to the daemon failed: {error}") from None
        if not line:
            self._dead = True
            raise RemoteError("connection-closed", "daemon closed the connection")
        try:
            response = json.loads(line)
        except ValueError as error:
            raise RemoteError("invalid-response", f"unparseable response: {error}") from None
        if not isinstance(response, dict):
            raise RemoteError("invalid-response", "response is not a JSON object")
        if not response.get("ok"):
            error_info = response.get("error") or {}
            raise RemoteError(
                str(error_info.get("code", "unknown")),
                str(error_info.get("message", "no message")),
            )
        return response

    # -- operations ----------------------------------------------------------
    def compile(
        self,
        source: str,
        style: Union[GenerationStyle, str] = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
        emit: Iterable[str] = (),
        simulate: int = 0,
        seed: int = 0,
    ) -> RemoteResult:
        """Compile SIGNAL source on the daemon and fetch rendered artifacts."""
        style_value = style.value if isinstance(style, GenerationStyle) else str(style)
        response = self.request(
            {
                "op": "compile",
                "source": source,
                "style": style_value,
                "build_flat": build_flat,
                "observable": observable,
                "emit": list(emit),
                "simulate": simulate,
                "seed": seed,
            }
        )
        return RemoteResult(
            name=response["name"],
            fingerprint=response["fingerprint"],
            origin=response["origin"],
            statistics=response["statistics"],
            artifacts=response.get("artifacts", {}),
            simulation=response.get("simulation"),
        )

    def stats(self) -> Dict[str, object]:
        """The daemon's three-tier cache statistics (``stats`` request)."""
        response = self.request({"op": "stats"})
        return {key: response[key] for key in ("daemon", "service", "store")}

    def ping(self) -> int:
        """Round-trip check; returns the daemon's protocol version."""
        return self.request({"op": "ping"})["protocol"]

    def clear_cache(self, store: bool = False) -> None:
        """Drop the daemon's in-memory caches (and the disk store if asked)."""
        self.request({"op": "clear-cache", "store": store})

    def prune(self, max_bytes: Optional[int] = None) -> Dict[str, int]:
        """Shrink the daemon's disk store to ``max_bytes`` (LRU eviction).

        Omitting ``max_bytes`` uses the daemon's configured
        ``--store-max-bytes`` policy; if the daemon has neither a store nor
        a policy the call raises :class:`RemoteError` (``invalid-request``).
        Returns the prune report (``removed``, ``removed_bytes``, ...).
        """
        payload: Dict[str, object] = {"op": "prune"}
        if max_bytes is not None:
            payload["max_bytes"] = max_bytes
        response = self.request(payload)
        return {
            key: response[key]
            for key in ("removed", "removed_bytes", "remaining_entries", "remaining_bytes")
        }

    def shutdown(self, drain: bool = False) -> None:
        """Ask the daemon to exit after acknowledging this request.

        ``drain=True`` asks for a graceful stop: the daemon answers every
        request already in flight before closing connections.
        """
        self.request({"op": "shutdown", "drain": drain})

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "RemoteCompiler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
