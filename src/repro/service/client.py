"""Client library for the compilation daemon (and the compile gateway).

:class:`RemoteCompiler` is a small blocking client for the JSON-line
protocol served by :mod:`repro.service.daemon` and
:mod:`repro.service.federation`::

    from repro.service import RemoteCompiler

    with RemoteCompiler(port=7420) as compiler:
        result = compiler.compile(source, emit=["python", "stats"])
        print(result.artifacts["python"])
        print(compiler.stats()["daemon"]["memory_hits"])

Remote compilations return :class:`RemoteResult` -- rendered artifacts and
statistics, not live analysis objects (BDDs never cross the wire).  Protocol
failures raise :class:`RemoteError`, which carries the structured error code
the daemon reported (``parse-error``, ``clock-error``, ...), so callers can
distinguish a bad program from a dead socket.

Timeouts and retries
--------------------

``timeout`` bounds each request round-trip and ``connect_timeout`` (default:
the request timeout) bounds connection establishment.  With ``retries=N``
the client survives transport failures: a timed-out, reset or closed
connection is torn down and re-established (with exponential backoff) and
the request is resent, up to ``N`` extra attempts.  Every protocol op is
idempotent -- compilation is deterministic and the caches are
last-writer-wins -- so a resend can never corrupt server state.  Structured
daemon errors (a bad program, an invalid request) are **never** retried:
the program will not get better by asking again.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Union

from ..codegen.ir import GenerationStyle

__all__ = ["RemoteCompiler", "RemoteResult", "RemoteError", "TRANSPORT_ERROR_CODES"]

#: :class:`RemoteError` codes that mean "the transport failed", not "the
#: daemon answered no" -- the retry loop (and the gateway's failover)
#: re-sends only these.
TRANSPORT_ERROR_CODES = frozenset(
    {"timeout", "io-error", "connection-closed", "connection-unusable",
     "connect-failed", "invalid-response"}
)


class RemoteError(Exception):
    """A failure reported by (or while talking to) the compilation daemon."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        #: the protocol error code (``parse-error``, ``invalid-request``,
        #: ``connection-closed``, ...)
        self.code = code
        #: the human-readable message from the daemon
        self.remote_message = message

    @property
    def transport(self) -> bool:
        """True when the failure is the connection's, not the program's."""
        return self.code in TRANSPORT_ERROR_CODES


@dataclass
class RemoteResult:
    """The daemon's answer to one ``compile`` request."""

    name: str
    fingerprint: str
    #: which cache tier answered: ``"memory"``, ``"store"`` or ``"compiled"``
    origin: str
    statistics: Dict[str, int]
    #: requested artifact texts, keyed by emit kind (``python``, ``tree``, ...)
    artifacts: Dict[str, object] = field(default_factory=dict)
    #: ``{"reactions", "seed", "diagram"}`` when simulation was requested
    simulation: Optional[Dict[str, object]] = None
    #: which backend served the request (gateway responses only)
    backend: Optional[str] = None

    @property
    def cached(self) -> bool:
        return self.origin != "compiled"


class RemoteCompiler:
    """A connection to a running compilation daemon or gateway.

    Connects over TCP (``host``/``port``) or a unix domain socket
    (``socket_path``).  The connection is persistent: repeated compiles
    reuse it, which is what makes the daemon's source-digest fast path
    worthwhile.  Instances are not thread-safe; use one per thread (the
    daemon interleaves clients fairly).

    With the default ``retries=0`` a transport failure marks the connection
    unusable (a late response may still be in flight and there is no
    request-id correlation, so reusing the stream could pair the next
    request with the previous answer) and the caller must open a new
    client.  With ``retries>0`` the client heals itself instead: a fresh
    connection has no stale in-flight responses, so tearing down and
    reconnecting is always safe.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
        timeout: float = 60.0,
        connect_timeout: Optional[float] = None,
        retries: int = 0,
        retry_backoff: float = 0.05,
    ):
        if (port is None) == (socket_path is None):
            raise ValueError("exactly one of port= or socket_path= is required")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self._host = host
        self._port = port
        self._socket_path = socket_path
        self._timeout = timeout
        self._connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self._retries = retries
        self._retry_backoff = retry_backoff
        self._socket: Optional[socket.socket] = None
        self._stream = None
        self._dead = False
        # The initial connect honours the retry budget too, so a client can
        # be created while its daemon is still starting up.  The final
        # failure stays an OSError for backward compatibility.
        for attempt in range(self._retries + 1):
            if attempt:
                time.sleep(self._retry_backoff * (2 ** (attempt - 1)))
            try:
                self._connect()
                break
            except OSError:
                if attempt == self._retries:
                    raise

    # -- plumbing ------------------------------------------------------------
    def _connect(self) -> None:
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(self._connect_timeout)
                sock.connect(self._socket_path)
            except BaseException:
                sock.close()  # no fd leak when the daemon is not up yet
                raise
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
        sock.settimeout(self._timeout)
        self._socket = sock
        self._stream = sock.makefile("rwb")
        self._dead = False

    def _close_transport(self) -> None:
        try:
            if self._stream is not None:
                self._stream.close()
        except OSError:
            pass
        finally:
            if self._socket is not None:
                self._socket.close()
            self._stream = None
            self._socket = None

    def _call_once(self, payload: Dict[str, object]) -> Dict[str, object]:
        """One request/response round-trip; raises on transport failures."""
        if self._dead or self._stream is None:
            raise RemoteError(
                "connection-unusable",
                "a previous request failed mid-flight; open a new RemoteCompiler "
                "or construct it with retries= to let it reconnect",
            )
        try:
            self._stream.write(json.dumps(payload).encode("utf-8") + b"\n")
            self._stream.flush()
            line = self._stream.readline()
        except socket.timeout as error:
            self._dead = True
            raise RemoteError("timeout", f"daemon did not answer in time: {error}") from None
        except OSError as error:
            self._dead = True
            raise RemoteError("io-error", f"connection to the daemon failed: {error}") from None
        if not line:
            self._dead = True
            raise RemoteError("connection-closed", "daemon closed the connection")
        try:
            response = json.loads(line)
        except ValueError as error:
            self._dead = True
            raise RemoteError("invalid-response", f"unparseable response: {error}") from None
        if not isinstance(response, dict):
            self._dead = True
            raise RemoteError("invalid-response", "response is not a JSON object")
        return response

    def call(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one raw request; return the response object **verbatim**.

        Unlike :meth:`request`, an ``{"ok": false}`` response is returned,
        not raised -- this is what the gateway uses to relay a backend's
        structured errors to its own client untouched.  Transport failures
        still raise :class:`RemoteError` (after exhausting ``retries``).
        """
        last_error: Optional[RemoteError] = None
        for attempt in range(self._retries + 1):
            if attempt:
                time.sleep(self._retry_backoff * (2 ** (attempt - 1)))
            if self._dead and self._retries > 0:
                self._close_transport()
                try:
                    self._connect()
                except OSError as error:
                    last_error = RemoteError(
                        "connect-failed", f"cannot reconnect to the daemon: {error}"
                    )
                    continue
            try:
                return self._call_once(payload)
            except RemoteError as error:
                last_error = error
                if not error.transport:
                    raise
        assert last_error is not None
        raise last_error

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one raw request and return the daemon's success response.

        Raises :class:`RemoteError` both for transport failures (code in
        :data:`TRANSPORT_ERROR_CODES`, retried per ``retries=``) and for
        structured daemon errors (never retried).
        """
        response = self.call(payload)
        if not response.get("ok"):
            error_info = response.get("error") or {}
            raise RemoteError(
                str(error_info.get("code", "unknown")),
                str(error_info.get("message", "no message")),
            )
        return response

    # -- operations ----------------------------------------------------------
    def compile(
        self,
        source: str,
        style: Union[GenerationStyle, str] = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
        emit: Iterable[str] = (),
        simulate: int = 0,
        seed: int = 0,
        modular: bool = False,
    ) -> RemoteResult:
        """Compile SIGNAL source on the daemon and fetch rendered artifacts.

        ``modular=True`` asks the daemon to compile misses unit-by-unit
        against its unit and linked-result caches; hits and the response
        shape are unchanged (the record tiers stay whole-program keyed).
        """
        style_value = style.value if isinstance(style, GenerationStyle) else str(style)
        request: Dict[str, object] = {
            "op": "compile",
            "source": source,
            "style": style_value,
            "build_flat": build_flat,
            "observable": observable,
            "emit": list(emit),
            "simulate": simulate,
            "seed": seed,
        }
        if modular:
            request["modular"] = True
        response = self.request(request)
        return RemoteResult(
            name=response["name"],
            fingerprint=response["fingerprint"],
            origin=response["origin"],
            statistics=response["statistics"],
            artifacts=response.get("artifacts", {}),
            simulation=response.get("simulation"),
            backend=response.get("backend"),
        )

    def stats(self) -> Dict[str, object]:
        """The server's statistics (``stats`` request).

        A daemon answers with ``daemon``/``service``/``store`` sections; a
        gateway adds ``gateway`` and ``backends``.  Everything but the
        protocol envelope (``ok``/``op``) is returned.
        """
        response = self.request({"op": "stats"})
        return {key: value for key, value in response.items() if key not in ("ok", "op")}

    def ping(self) -> int:
        """Round-trip check; returns the daemon's protocol version."""
        return self.request({"op": "ping"})["protocol"]

    def clear_cache(self, store: bool = False) -> None:
        """Drop the daemon's in-memory caches (and the disk store if asked)."""
        self.request({"op": "clear-cache", "store": store})

    def store_get(
        self,
        fingerprint: str,
        style: Union[GenerationStyle, str] = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
    ) -> Optional[Dict[str, object]]:
        """Fetch the artifact record cached under a key, or ``None``.

        The read half of the content-addressed artifact tier: the record
        (the same JSON the disk store holds) comes back without compiling
        anything, so a warm node can be used to warm another.
        """
        style_value = style.value if isinstance(style, GenerationStyle) else str(style)
        response = self.request(
            {
                "op": "store-get",
                "fingerprint": fingerprint,
                "style": style_value,
                "build_flat": build_flat,
                "observable": observable,
            }
        )
        return response["record"] if response.get("found") else None

    def store_put(self, record: Dict[str, object]) -> bool:
        """Inject an artifact record into the daemon's cache tiers.

        The write half of the artifact tier: the record is filed under the
        key it self-describes (memory tier always; the disk store when the
        daemon has one).  Returns whether the record reached disk.
        """
        return bool(self.request({"op": "store-put", "record": record})["stored"])

    def prune(self, max_bytes: Optional[int] = None) -> Dict[str, int]:
        """Shrink the daemon's disk store to ``max_bytes`` (LRU eviction).

        Omitting ``max_bytes`` uses the daemon's configured
        ``--store-max-bytes`` policy; if the daemon has neither a store nor
        a policy the call raises :class:`RemoteError` (``invalid-request``).
        Returns the prune report (``removed``, ``removed_bytes``, ...).
        """
        payload: Dict[str, object] = {"op": "prune"}
        if max_bytes is not None:
            payload["max_bytes"] = max_bytes
        response = self.request(payload)
        return {
            key: response[key]
            for key in ("removed", "removed_bytes", "remaining_entries", "remaining_bytes")
        }

    def shutdown(self, drain: bool = False) -> None:
        """Ask the daemon to exit after acknowledging this request.

        ``drain=True`` asks for a graceful stop: the daemon answers every
        request already in flight before closing connections.
        """
        self.request({"op": "shutdown", "drain": drain})

    def close(self) -> None:
        self._close_transport()

    def __enter__(self) -> "RemoteCompiler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
