"""The compilation daemon: one long-lived service behind a wire protocol.

``python -m repro serve`` starts an asyncio server speaking a JSON-line
protocol (one JSON request per line, one JSON response per line) over TCP
or a unix domain socket.  Many OS processes then share a single
:class:`~repro.service.CompilationService` -- its pooled BDD manager and
its in-memory compile cache -- instead of each paying a cold pool and a
cold cache.

Caching tiers
-------------

A ``compile`` request is answered from the first of three tiers:

1. **memory** -- an LRU of rendered *artifact records* keyed exactly like
   the service's compile cache (kernel fingerprint + options), with a
   source-digest fast path that skips parsing on exact textual repeats;
2. **store** -- the optional on-disk :class:`~repro.service.store.CompileStore`;
   a hit is promoted into tier 1, so a *restarted* daemon re-warms its
   memory cache from disk as traffic arrives;
3. **compile** -- the wrapped :class:`CompilationService` runs the full
   pipeline on the pooled manager; the rendered record is written back to
   tiers 1 and 2.

Protocol
--------

Requests are JSON objects with an ``op`` field; every response carries
``ok``.  Failures are structured -- ``{"ok": false, "error": {"code": ...,
"message": ...}}`` -- and never terminate the server (a malformed line is a
client bug, not a daemon bug).  The full request/response schema and the
error-code table are documented in ``docs/ARCHITECTURE.md``.

Concurrency
-----------

The server processes requests on a pool of ``jobs`` worker threads (one by
default) while the event loop stays free to accept connections and read
requests, so concurrent clients queue fairly instead of timing out on
connect.  With ``jobs > 1`` the daemon answers cache tiers concurrently and
compiles misses in parallel:

* ``workers="threads"`` compiles on the wrapped service's sharded pool --
  programs on different shards compile concurrently (each shard's lock
  serializes its own programs), bounded by the GIL;
* ``workers="processes"`` ships each miss to the service's worker-process
  pool and parks the request thread on the result, so ``jobs`` compilations
  proceed on ``jobs`` cores.

Operability
-----------

``SIGTERM`` triggers a *graceful drain*: the daemon stops accepting new
work, waits (up to ``drain_timeout`` seconds) for in-flight requests to
finish and their responses to be written, then exits -- a supervisor
restart never loses a compile that was already running.  The ``shutdown``
op accepts ``{"drain": true}`` for the same behaviour on request.  An
opt-in request log (``request_log=`` / ``--log-requests``) appends one JSON
line per request -- op, outcome, origin tier, duration -- to a file,
``"-"`` for stdout, or any writable stream.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
import json
import os
import signal
import socket
import stat
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, IO, Optional, Tuple, Union

from ..codegen.ir import GenerationStyle
from ..errors import (
    CausalityError,
    ClockCalculusError,
    CodeGenerationError,
    LexerError,
    ParseError,
    ResourceLimitExceeded,
    SignalError,
    SimulationError,
    TypeError_,
)
from ..lang.kernel import normalize
from ..lang.parser import parse_process
from ..runtime import ReactiveExecutor, random_oracle, timing_diagram
from .cache import LRUCache, source_digest
from .service import WORKER_MODES, CompilationService
from .store import (
    CompileStore,
    executable_from_record,
    key_from_record,
    linked_store_key,
    record_from_result,
    store_key,
    unit_store_key,
    types_from_record,
)

__all__ = ["PROTOCOL_VERSION", "CompilationDaemon", "ThreadedDaemon"]

#: bumped when the request/response schema changes incompatibly
PROTOCOL_VERSION = 1

#: maximum length of one request line (sources are inlined in requests)
MAX_LINE_BYTES = 16 * 1024 * 1024

#: artifact kinds a compile request may ask for via ``emit``
EMIT_KINDS = ("tree", "clocks", "kernel", "python", "c", "c_shared", "stats")

#: exception type -> protocol error code, most specific first
_ERROR_CODES = (
    (LexerError, "parse-error"),
    (ParseError, "parse-error"),
    (TypeError_, "type-error"),
    (CausalityError, "causality-error"),
    (ClockCalculusError, "clock-error"),
    (CodeGenerationError, "codegen-error"),
    (SimulationError, "simulation-error"),
    (ResourceLimitExceeded, "resource-limit"),
    (SignalError, "signal-error"),
)


def error_code(error: BaseException) -> str:
    """Map a toolchain exception to its protocol error code."""
    for exception_type, code in _ERROR_CODES:
        if isinstance(error, exception_type):
            return code
    return "internal-error"


def _error_response(code: str, message: str, op: Optional[str] = None) -> Dict[str, object]:
    response: Dict[str, object] = {"ok": False, "error": {"code": code, "message": message}}
    if op is not None:
        response["op"] = op
    return response


class _RequestError(Exception):
    """An invalid request field (reported as code ``invalid-request``)."""


def _field(request: Dict[str, object], name: str, expected_type: type, default):
    value = request.get(name, default)
    if expected_type is int:
        # bool is a subclass of int; a JSON true is not an acceptable count.
        if not isinstance(value, int) or isinstance(value, bool):
            raise _RequestError(f"field {name!r} must be an integer")
    elif not isinstance(value, expected_type):
        raise _RequestError(f"field {name!r} must be of type {expected_type.__name__}")
    return value


class CompilationDaemon:
    """Engine and server of the compilation daemon.

    The engine half (:meth:`compile_record`, :meth:`handle_request`) is
    synchronous and usable without any socket -- tests and benchmarks drive
    it directly; the server half (:meth:`serve`, :meth:`run`) exposes it
    over asyncio TCP / unix-socket streams.
    """

    def __init__(
        self,
        service: Optional[CompilationService] = None,
        store: Optional[Union[CompileStore, str, os.PathLike]] = None,
        max_entries: int = 128,
        max_pool_nodes: Optional[int] = None,
        shards: int = 1,
        workers: str = "threads",
        jobs: int = 1,
        request_log: Optional[Union[str, os.PathLike, IO[str]]] = None,
        store_max_bytes: Optional[int] = None,
        drain_timeout: float = 30.0,
    ):
        if workers not in WORKER_MODES:
            raise ValueError(f"workers must be one of {WORKER_MODES} (got {workers!r})")
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if store is not None and not isinstance(store, CompileStore):
            store = CompileStore(store)
        self.store: Optional[CompileStore] = store
        # A self-created service shares the daemon's store, so its process
        # workers warm-start from disk too (an injected service keeps
        # whatever store its owner configured).
        self.service = service if service is not None else CompilationService(
            max_entries=max_entries, max_pool_nodes=max_pool_nodes, shards=shards,
            store=store,
        )
        self._workers = workers
        self._jobs = jobs
        self._store_max_bytes = store_max_bytes
        self.drain_timeout = drain_timeout
        self._records: LRUCache[Dict[str, object]] = LRUCache(max_entries)
        self._digests: LRUCache[str] = LRUCache(max(max_entries * 4, 16))
        self._lock = threading.RLock()
        self._requests = 0
        self._compile_requests = 0
        self._memory_hits = 0
        self._store_hits = 0
        self._compiles = 0
        self._errors = 0
        self._store_put_failures = 0
        self._store_pruned_entries = 0
        # Request log (opened lazily; "-" = stdout, streams used as-is).
        self._request_log_target = request_log
        self._request_log: Optional[IO[str]] = None
        self._request_log_owned = False
        self._log_lock = threading.Lock()
        # Server state (populated by serve()).
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._drain_requested = False
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self.address: Optional[Union[str, Tuple[str, int]]] = None

    # -- engine --------------------------------------------------------------
    def compile_record(
        self,
        source: str,
        style: GenerationStyle = GenerationStyle.HIERARCHICAL,
        build_flat: bool = False,
        observable: bool = True,
        modular: bool = False,
    ) -> Tuple[Dict[str, object], str]:
        """Compile (or fetch) the artifact record for one source.

        Returns ``(record, origin)`` where origin is ``"memory"``,
        ``"store"`` or ``"compiled"``.

        ``modular`` changes only how a *miss* compiles: unit-by-unit
        against the service's unit cache and the daemon's store (which
        gains per-unit records any fleet member can ``store-get``).  The
        record tiers stay keyed by the whole-program fingerprint -- a
        monolithic record answers a modular request for the same program
        and vice versa, because both paths render equivalent artifacts.

        Thread-safe without a global compile lock: the record/digest LRUs
        and the store synchronize themselves, so ``jobs`` request threads
        probe the tiers and compile misses concurrently.  Two threads
        racing on the *same* key may both compile and both publish --
        wasteful but harmless, because compilation is deterministic and
        every tier is last-writer-wins.
        """
        with self._lock:
            self._compile_requests += 1
        digest = source_digest(source)
        # The digest memo lets repeat traffic reach the record tiers
        # without parsing; it must live here (not only in the service)
        # because a memory/store hit never enters the service at all.
        fingerprint = self._digests.get(digest)
        process = None
        program = None
        if fingerprint is None:
            process = parse_process(source)
            program = normalize(process)
            fingerprint = program.fingerprint()
            self._digests.put(digest, fingerprint)
        key = store_key(fingerprint, style, build_flat, observable)

        record = self._records.get(key)
        if record is not None:
            with self._lock:
                self._memory_hits += 1
            if self.store is not None:
                # Keep the disk entry's recency honest: without this, hot
                # records served from memory would look cold to prune().
                self.store.touch(key)
            return record, "memory"

        if self.store is not None:
            record = self.store.get(key)
            if record is not None:
                with self._lock:
                    self._store_hits += 1
                self._records.put(key, record)
                return record, "store"

        if self._workers == "processes":
            # Park this request thread on a worker process: the pipeline
            # runs on another core, and sibling request threads do the same.
            record = self.service.compile_record_in_process(
                source,
                style=style,
                build_flat=build_flat,
                observable=observable,
                jobs=self._jobs,
                modular=modular,
            )
        elif modular:
            if process is None:
                process = parse_process(source)
                program = normalize(process)
            linked = self.service.compile_modular(
                process=process,
                style=style,
                build_flat=build_flat,
                observable=observable,
                program=program,
                store=self.store,  # None falls back to the service's own
            )
            record = record_from_result(
                linked, style, build_flat=build_flat, observable=observable
            )
        else:
            if process is None:
                process = parse_process(source)
                program = normalize(process)
            result = self.service.compile_process(
                process,
                style=style,
                build_flat=build_flat,
                observable=observable,
                program=program,  # already normalized above; don't redo it
            )
            record = record_from_result(
                result, style, build_flat=build_flat, observable=observable
            )
        self._records.put(key, record)
        if self.store is not None:
            # Best-effort spill: the compile succeeded and the record is
            # served from memory either way; a full disk must not turn a
            # good compilation into an error response.
            try:
                self.store.put(key, record)
            except OSError:
                with self._lock:
                    self._store_put_failures += 1
            else:
                self._enforce_store_budget()
        with self._lock:
            self._compiles += 1
        return record, "compiled"

    def _enforce_store_budget(self) -> None:
        """Apply the ``--store-max-bytes`` policy after a successful spill."""
        if self._store_max_bytes is None or self.store is None:
            return
        try:
            report = self.store.enforce_budget(self._store_max_bytes)
        except OSError:  # pragma: no cover - scan raced a concurrent wipe
            return
        if report is not None and report["removed"]:
            with self._lock:
                self._store_pruned_entries += report["removed"]

    def statistics(self) -> Dict[str, object]:
        """The three-tier cache counters plus the wrapped layers' stats."""
        with self._lock:
            daemon = {
                "protocol": PROTOCOL_VERSION,
                "workers": self._workers,
                "jobs": self._jobs,
                "requests": self._requests,
                "compile_requests": self._compile_requests,
                "memory_hits": self._memory_hits,
                "store_hits": self._store_hits,
                "compiles": self._compiles,
                "errors": self._errors,
                "store_put_failures": self._store_put_failures,
                "store_max_bytes": self._store_max_bytes or 0,
                "store_pruned_entries": self._store_pruned_entries,
                "record_entries": len(self._records),
            }
        return {
            "daemon": daemon,
            "service": self.service.statistics(),
            "store": self.store.statistics() if self.store is not None else None,
        }

    def clear_caches(self, include_store: bool = False) -> None:
        with self._lock:
            self._records.clear()
            self._digests.clear()
            self.service.clear_cache()
            if include_store and self.store is not None:
                self.store.clear()

    # -- request logging -----------------------------------------------------
    def _log_stream(self) -> Optional[IO[str]]:
        if self._request_log_target is None:
            return None
        # The lazy open must happen under the log lock: with jobs > 1 two
        # request threads can race the first log line, and the loser's file
        # descriptor would leak.
        with self._log_lock:
            if self._request_log is None:
                target = self._request_log_target
                if target == "-":
                    self._request_log = sys.stdout
                elif hasattr(target, "write"):
                    self._request_log = target  # caller-owned stream, never closed
                else:
                    self._request_log = open(target, "a", encoding="utf-8")
                    self._request_log_owned = True
            return self._request_log

    def _log_request(
        self, op: Optional[object], response: Dict[str, object], elapsed: float
    ) -> None:
        """Append one JSON line per handled request (opt-in, best-effort).

        The log is an operability aid, not an audit trail: a full disk or a
        closed stream silently drops lines rather than failing requests.
        Sources are deliberately not logged (they can be megabytes); the
        origin tier and duration are what operators page through.
        """
        stream = self._log_stream()
        if stream is None:
            return
        entry: Dict[str, object] = {
            "ts": round(time.time(), 6),
            "op": op if isinstance(op, str) else None,
            "ok": bool(response.get("ok")),
            "elapsed_ms": round(elapsed * 1000.0, 3),
        }
        if "origin" in response:
            entry["origin"] = response["origin"]
        error = response.get("error")
        if isinstance(error, dict):
            entry["code"] = error.get("code")
        with self._log_lock:
            try:
                stream.write(json.dumps(entry) + "\n")
                stream.flush()
            except (OSError, ValueError):  # pragma: no cover - log must not kill requests
                pass

    def close_request_log(self) -> None:
        """Close a log file the daemon opened itself (idempotent)."""
        if self._request_log_owned and self._request_log is not None:
            with contextlib.suppress(OSError):
                self._request_log.close()
        self._request_log = None
        self._request_log_owned = False

    # -- request dispatch ----------------------------------------------------
    def handle_line(self, line: Union[str, bytes]) -> Dict[str, object]:
        """Parse one protocol line and dispatch it; never raises."""
        with self._lock:
            self._requests += 1
        started = time.perf_counter()
        try:
            request = json.loads(line)
        except (ValueError, UnicodeDecodeError) as error:
            response = self._count_error(
                _error_response("invalid-json", f"request is not valid JSON: {error}")
            )
            self._log_request(None, response, time.perf_counter() - started)
            return response
        if not isinstance(request, dict):
            response = self._count_error(
                _error_response("invalid-request", "request must be a JSON object")
            )
            self._log_request(None, response, time.perf_counter() - started)
            return response
        return self.handle_request(request)

    def handle_request(self, request: Dict[str, object]) -> Dict[str, object]:
        started = time.perf_counter()
        response = self._dispatch(request)
        self._log_request(request.get("op"), response, time.perf_counter() - started)
        return response

    def _dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op")
        try:
            return self._dispatch_op(op, request)
        except _RequestError as error:
            return self._count_error(_error_response("invalid-request", str(error), op))
        except SignalError as error:
            return self._count_error(_error_response(error_code(error), str(error), op))
        except Exception as error:  # noqa: BLE001 - the daemon must survive anything
            return self._count_error(
                _error_response("internal-error", f"{type(error).__name__}: {error}", op)
            )

    def _dispatch_op(self, op: object, request: Dict[str, object]) -> Dict[str, object]:
        """Route one validated request object by ``op``.

        Subclasses (the gateway) override this to reinterpret or add ops
        and fall through to ``super()`` for the rest; the exception ladder
        in :meth:`_dispatch` stays in force either way.
        """
        if op == "compile":
            return self._handle_compile(request)
        if op == "stats":
            return {"ok": True, "op": "stats", **self.statistics()}
        if op == "ping":
            return {"ok": True, "op": "ping", "protocol": PROTOCOL_VERSION}
        if op == "clear-cache":
            include_store = _field(request, "store", bool, False)
            self.clear_caches(include_store=include_store)
            return {"ok": True, "op": "clear-cache", "store": include_store}
        if op == "prune":
            return self._handle_prune(request)
        if op == "store-get":
            return self._handle_store_get(request)
        if op == "store-put":
            return self._handle_store_put(request)
        if op == "shutdown":
            drain = _field(request, "drain", bool, False)
            return {"ok": True, "op": "shutdown", "drain": drain}
        return self._count_error(
            _error_response(
                "invalid-request",
                f"unknown op {op!r} (expected compile/stats/ping/clear-cache/"
                "prune/store-get/store-put/shutdown)",
            )
        )

    def _store_request_key(self, request: Dict[str, object]):
        """Build the cache key a ``store-get`` request names.

        ``kind: "unit"`` addresses a per-unit artifact record by its unit
        fingerprint (modular compilation), ``kind: "linked"`` a composed
        linked record by its link fingerprint; the default kind
        ``"program"`` keeps the historical whole-program addressing.
        """
        fingerprint = request.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise _RequestError("field 'fingerprint' must be a non-empty string")
        kind = _field(request, "kind", str, "program")
        if kind == "unit":
            return unit_store_key(fingerprint)
        if kind == "linked":
            return linked_store_key(fingerprint)
        if kind != "program":
            raise _RequestError("field 'kind' must be 'program', 'unit' or 'linked'")
        style_name = _field(request, "style", str, GenerationStyle.HIERARCHICAL.value)
        try:
            style = GenerationStyle(style_name)
        except ValueError:
            raise _RequestError(
                f"field 'style' must be one of {[s.value for s in GenerationStyle]}"
            ) from None
        build_flat = _field(request, "build_flat", bool, False)
        observable = _field(request, "observable", bool, True)
        return store_key(fingerprint, style, build_flat, observable)

    def _handle_store_get(self, request: Dict[str, object]) -> Dict[str, object]:
        """The ``store-get`` op: read the artifact tier without compiling.

        Probes memory then disk (promoting a disk hit into memory, like a
        compile would).  A miss is a successful response with
        ``found: false`` -- the caller decides whether to compile.
        """
        key = self._store_request_key(request)
        record = self._records.get(key)
        origin = "memory"
        if record is None and self.store is not None:
            record = self.store.get(key)
            if record is not None:
                origin = "store"
                self._records.put(key, record)
        if record is None:
            return {"ok": True, "op": "store-get", "found": False}
        return {"ok": True, "op": "store-get", "found": True, "origin": origin,
                "record": record}

    def _handle_store_put(self, request: Dict[str, object]) -> Dict[str, object]:
        """The ``store-put`` op: inject an artifact record into the tiers.

        The record self-describes its key (fingerprint + options), so a
        node that compiled elsewhere -- another daemon, a batch run -- can
        warm this one.  The memory tier always takes the record; the disk
        write is best-effort like a compile's spill.  ``stored`` reports
        whether the record reached disk.
        """
        record = request.get("record")
        try:
            key = key_from_record(record)
        except ValueError as error:
            raise _RequestError(f"field 'record' is not a valid artifact record: {error}")
        self._records.put(key, record)
        stored = False
        if self.store is not None:
            try:
                self.store.put(key, record)
            except OSError:
                with self._lock:
                    self._store_put_failures += 1
            else:
                stored = True
                self._enforce_store_budget()
        return {"ok": True, "op": "store-put", "stored": stored}

    def _handle_prune(self, request: Dict[str, object]) -> Dict[str, object]:
        """The ``prune`` op: shrink the disk store to a byte budget."""
        if self.store is None:
            raise _RequestError(
                "no compile store configured (start the daemon with --store)"
            )
        max_bytes = request.get("max_bytes", self._store_max_bytes)
        if max_bytes is None:
            raise _RequestError(
                "field 'max_bytes' is required (no --store-max-bytes policy is set)"
            )
        if not isinstance(max_bytes, int) or isinstance(max_bytes, bool) or max_bytes < 0:
            raise _RequestError("field 'max_bytes' must be a non-negative integer")
        report = self.store.prune(max_bytes)
        if report["removed"]:
            with self._lock:
                self._store_pruned_entries += report["removed"]
        return {"ok": True, "op": "prune", "max_bytes": max_bytes, **report}

    def _count_error(self, response: Dict[str, object]) -> Dict[str, object]:
        with self._lock:
            self._errors += 1
        return response

    def _handle_compile(self, request: Dict[str, object]) -> Dict[str, object]:
        source = request.get("source")
        if not isinstance(source, str) or not source.strip():
            raise _RequestError("field 'source' must be a non-empty string")
        style_name = _field(request, "style", str, GenerationStyle.HIERARCHICAL.value)
        try:
            style = GenerationStyle(style_name)
        except ValueError:
            raise _RequestError(
                f"field 'style' must be one of {[s.value for s in GenerationStyle]}"
            ) from None
        build_flat = _field(request, "build_flat", bool, False)
        observable = _field(request, "observable", bool, True)
        modular = _field(request, "modular", bool, False)
        simulate = _field(request, "simulate", int, 0)
        seed = _field(request, "seed", int, 0)
        emit = request.get("emit", [])
        if not isinstance(emit, list) or not all(isinstance(kind, str) for kind in emit):
            raise _RequestError("field 'emit' must be a list of artifact names")
        unknown = [kind for kind in emit if kind not in EMIT_KINDS]
        if unknown:
            raise _RequestError(f"unknown emit kind(s) {unknown}; expected {list(EMIT_KINDS)}")

        record, origin = self.compile_record(
            source, style=style, build_flat=build_flat, observable=observable,
            modular=modular,
        )
        response: Dict[str, object] = {
            "ok": True,
            "op": "compile",
            "name": record["name"],
            "fingerprint": record["fingerprint"],
            "origin": origin,
            "statistics": record["statistics"],
        }
        if modular:
            response["modular"] = True
        if emit:
            artifacts = dict(record["artifacts"])
            artifacts["stats"] = record["statistics"]
            response["artifacts"] = {kind: artifacts[kind] for kind in emit}
        if simulate > 0:
            executable = executable_from_record(record)
            oracle = random_oracle(types_from_record(record), seed=seed)
            trace = ReactiveExecutor(executable).run(simulate, oracle)
            response["simulation"] = {
                "reactions": simulate,
                "seed": seed,
                "diagram": timing_diagram(trace.observations()),
            }
        return response

    # -- asyncio server ------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    response = _error_response(
                        "invalid-request", f"request line exceeds {MAX_LINE_BYTES} bytes"
                    )
                    writer.write((json.dumps(response) + "\n").encode("utf-8"))
                    await writer.drain()
                    break
                if not line:
                    break
                # Once a drain is requested, established connections stop
                # accepting new work too (the listener is already closed);
                # a chatty pipelining client must not extend the shutdown,
                # and a line read after the idle check must not start a
                # compile that gets cancelled unanswered.  This check and
                # the increment below run in one event-loop step (no await
                # between them), so the drain logic in serve() observes
                # either the refusal or the in-flight request, never a gap.
                if self._drain_requested:
                    break
                # The in-flight window covers the response write as well as
                # the compile, so a graceful drain never cancels a request
                # whose answer has not reached the client yet.
                self._inflight += 1
                if self._idle is not None:
                    self._idle.clear()
                try:
                    response = await loop.run_in_executor(
                        self._pool, self.handle_line, line
                    )
                    writer.write((json.dumps(response) + "\n").encode("utf-8"))
                    await writer.drain()
                finally:
                    self._inflight -= 1
                    if self._inflight == 0 and self._idle is not None:
                        self._idle.set()
                if response.get("ok") and response.get("op") == "shutdown":
                    self.request_shutdown(drain=bool(response.get("drain")))
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client died
            pass
        except asyncio.CancelledError:
            # Server shutting down mid-read: end the task cleanly so the
            # teardown is quiet; the client sees the connection close.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
        on_ready: Optional[Callable[[], None]] = None,
    ) -> None:
        """Serve until :meth:`request_shutdown` (or task cancellation).

        Binds a unix domain socket when ``socket_path`` is given, a TCP
        socket on ``host``/``port`` otherwise (``port=0`` picks a free
        port).  The bound address is published on ``self.address`` -- and
        ``on_ready`` (if any) is called -- before the first connection is
        accepted.  ``SIGTERM`` (where the platform and thread allow
        installing a handler) requests a graceful drain-then-exit.
        """
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._inflight = 0
        self._drain_requested = False
        self._connections = set()
        # `jobs` request workers; with one worker compilations serialize
        # exactly like the historical daemon, the event loop stays free.
        self._pool = ThreadPoolExecutor(
            max_workers=self._jobs, thread_name_prefix="repro-daemon"
        )
        sigterm_installed = False
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            # Fails on non-unix loops or when the loop does not run in the
            # main thread (e.g. ThreadedDaemon); supervisors only ever
            # SIGTERM real `python -m repro serve` processes, which do run
            # the loop in the main thread.
            self._loop.add_signal_handler(
                signal.SIGTERM, self.request_shutdown, True
            )
            sigterm_installed = True
        bound_socket_path = None  # only unlink a socket *this* process bound
        try:
            if socket_path is not None:
                # asyncio's start_unix_server silently unlinks an existing
                # socket file -- even one with a live listener -- so probe
                # first: a second daemon must fail loudly, not hijack the
                # path out from under the first.
                self._ensure_socket_path_free(socket_path)
                server = await asyncio.start_unix_server(
                    self._handle_connection, path=socket_path, limit=MAX_LINE_BYTES
                )
                bound_socket_path = socket_path
                self.address = socket_path
            else:
                server = await asyncio.start_server(
                    self._handle_connection, host, port, limit=MAX_LINE_BYTES
                )
                bound = server.sockets[0].getsockname()
                self.address = (bound[0], bound[1])
            self._ready.set()
            if on_ready is not None:
                on_ready()
            async with server:
                await self._shutdown.wait()
            # Graceful drain (SIGTERM / shutdown {"drain": true}): the
            # listening socket is closed, so no new work arrives; wait for
            # every in-flight request to finish and flush its response.
            if self._drain_requested and self._inflight > 0:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._idle.wait(), timeout=self.drain_timeout)
            # Drain open connections before tearing the loop down, so their
            # tasks end cleanly instead of being killed by asyncio.run().
            for connection in list(self._connections):
                connection.cancel()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)
        finally:
            if sigterm_installed:
                with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                    self._loop.remove_signal_handler(signal.SIGTERM)
            # cancel_futures drops requests still queued behind a running
            # one; wait=True lets the running request handler finish before
            # the service below is closed.  Both matter: a handler that ran
            # after close() would silently resurrect the worker-process
            # pool as an orphan.  (A pathologically hung compile would make
            # this wait block -- but its non-daemon executor thread would
            # block interpreter exit regardless.)
            self._pool.shutdown(wait=True, cancel_futures=True)
            if self._workers == "processes":
                # The daemon started the service's worker-process pool; a
                # clean exit must not leave orphan workers behind.  close()
                # is recoverable, so an injected service stays usable.
                self.service.close()
            self.close_request_log()
            if bound_socket_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(bound_socket_path)

    @staticmethod
    def _ensure_socket_path_free(socket_path: str) -> None:
        """Refuse to bind over a live daemon's unix socket.

        A leftover socket from a crashed daemon (nothing listening) is fine
        -- asyncio removes it and rebinds; a path with a live listener
        raises ``EADDRINUSE``; a non-socket file raises ``EEXIST`` rather
        than being deleted.
        """
        try:
            mode = os.stat(socket_path).st_mode
        except (FileNotFoundError, OSError):
            return
        if not stat.S_ISSOCK(mode):
            raise OSError(
                errno.EEXIST, f"{socket_path!r} exists and is not a socket"
            )
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(1.0)
            probe.connect(socket_path)
        except OSError:
            return  # stale socket: nobody answered, safe to rebind
        finally:
            probe.close()
        raise OSError(
            errno.EADDRINUSE,
            f"another daemon is already listening on {socket_path!r}",
        )

    def request_shutdown(self, drain: bool = False) -> None:
        """Ask a running server to stop (safe from any thread; idempotent).

        With ``drain=True`` (what ``SIGTERM`` requests) the server finishes
        and answers every in-flight request -- waiting up to
        ``drain_timeout`` seconds -- before closing connections; without it
        the stop is prompt and in-flight work is abandoned.
        """
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            if drain:
                self._drain_requested = True
            with contextlib.suppress(RuntimeError):  # loop already closed
                loop.call_soon_threadsafe(shutdown.set)

    def run(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
        on_ready: Optional[Callable[[], None]] = None,
    ) -> None:
        """Blocking entry point used by ``python -m repro serve``."""
        try:
            asyncio.run(
                self.serve(
                    host=host, port=port, socket_path=socket_path, on_ready=on_ready
                )
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass


class ThreadedDaemon:
    """Run a :class:`CompilationDaemon` on a background thread.

    Context-manager convenience for tests, benchmarks and applications that
    want an in-process daemon::

        with ThreadedDaemon(store="cache-dir") as daemon:
            client = RemoteCompiler(*daemon.address)

    ``daemon.address`` is the bound ``(host, port)`` tuple (or the socket
    path).  Exiting the context shuts the server down and joins the thread.
    """

    def __init__(
        self,
        daemon: Optional[CompilationDaemon] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
        **daemon_options,
    ):
        self.daemon = daemon if daemon is not None else CompilationDaemon(**daemon_options)
        self._host = host
        self._port = port
        self._socket_path = socket_path
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self):
        return self.daemon.address

    def start(self, timeout: float = 10.0) -> "ThreadedDaemon":
        if self._thread is not None:
            raise RuntimeError("daemon thread already started")
        self.daemon._ready.clear()
        self._error: Optional[BaseException] = None

        def target() -> None:
            try:
                self.daemon.run(
                    host=self._host, port=self._port, socket_path=self._socket_path
                )
            except BaseException as error:  # surfaced to start()'s caller
                self._error = error

        self._thread = threading.Thread(
            target=target, name="repro-daemon-server", daemon=True
        )
        self._thread.start()
        deadline = timeout
        while deadline > 0:
            if self.daemon._ready.wait(min(0.05, deadline)):
                return self
            deadline -= 0.05
            if not self._thread.is_alive():
                break
        self._thread = None
        if self._error is not None:
            raise RuntimeError(f"daemon failed to start: {self._error}") from self._error
        raise RuntimeError("daemon did not come up within the timeout")

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self.daemon.request_shutdown()
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "ThreadedDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
