"""Compilation-as-a-service layer: pooling, caching, daemon, persistence.

* :mod:`repro.service.cache` -- a thread-safe LRU plus the fingerprint
  helpers used to key compilation results;
* :mod:`repro.service.service` -- :class:`CompilationService`, the
  long-lived front end that pools a shared BDD manager across compilations
  (with per-program variable namespaces and node-watermark recycling),
  memoizes whole compilation results, and fans batches of sources out to
  worker threads;
* :mod:`repro.service.store` -- :class:`CompileStore`, disk persistence of
  rendered artifact records keyed by kernel fingerprint, so a restarted
  daemon begins warm;
* :mod:`repro.service.daemon` -- :class:`CompilationDaemon`, the asyncio
  JSON-line server (``python -m repro serve``) that lets many OS processes
  share one service, plus :class:`ThreadedDaemon` for in-process embedding;
* :mod:`repro.service.client` -- :class:`RemoteCompiler`, the blocking
  client library behind ``python -m repro remote-compile``;
* :mod:`repro.service.federation` -- :class:`CompileGateway`, the
  consistent-hash routing front-end (``python -m repro gateway``) that
  spreads compiles over a fleet of daemons with health checks, failover
  and local graceful degradation.
"""

from .cache import CacheStats, LRUCache, shard_for_fingerprint, source_digest
from .client import RemoteCompiler, RemoteError, RemoteResult
from .daemon import PROTOCOL_VERSION, CompilationDaemon, ThreadedDaemon
from .federation import BackendState, CompileGateway, HashRing, parse_backend_spec
from .service import WORKER_MODES, CompilationService
from .store import (
    UNIT_STYLE,
    CompileStore,
    executable_from_record,
    key_from_record,
    record_from_result,
    store_key,
    types_from_record,
    unit_store_key,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "source_digest",
    "shard_for_fingerprint",
    "CompilationService",
    "WORKER_MODES",
    "CompilationDaemon",
    "ThreadedDaemon",
    "PROTOCOL_VERSION",
    "CompileStore",
    "record_from_result",
    "executable_from_record",
    "types_from_record",
    "store_key",
    "key_from_record",
    "unit_store_key",
    "UNIT_STYLE",
    "RemoteCompiler",
    "RemoteError",
    "RemoteResult",
    "CompileGateway",
    "HashRing",
    "BackendState",
    "parse_backend_spec",
]
