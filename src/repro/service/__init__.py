"""Compilation-as-a-service layer: BDD pooling, compile caching, batching.

* :mod:`repro.service.cache` -- a thread-safe LRU plus the fingerprint
  helpers used to key compilation results;
* :mod:`repro.service.service` -- :class:`CompilationService`, the
  long-lived front end that pools a shared BDD manager across compilations
  (with per-program variable namespaces), memoizes whole compilation
  results, and fans batches of sources out to worker threads.
"""

from .cache import CacheStats, LRUCache, source_digest
from .service import CompilationService

__all__ = ["CacheStats", "LRUCache", "source_digest", "CompilationService"]
