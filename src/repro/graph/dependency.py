"""The conditional dependency graph of a SIGNAL program (Table 2).

Every kernel process contributes *conditioned* data dependencies: an edge
``X --k--> Y`` means that at every instant of the clock ``k``, the value of
``Y`` depends on the value of ``X``.  Following Table 2:

===================================  ==========================================
process                              dependencies
===================================  ==========================================
``X := f(X1, ..., Xn)``              ``Xi --x̂--> X`` for every signal operand
``ZX := X $ 1``                      none (this is what breaks feedback loops)
``X := U when C``                    ``U --x̂--> X``
``X := U default V``                 ``U --û--> X`` and ``V --v̂\\û--> X``
each condition ``C``                 ``C --ĉ--> [C]`` and ``C --ĉ--> [¬C]``
each signal ``X``                    ``x̂ --x̂--> X``
===================================  ==========================================

Nodes are either signal names (values) or clock atoms.  Cycle detection is
*clock-aware*: a static cycle is only reported as a causality error when the
conjunction of the clocks labelling its edges is non-empty, i.e. when there
exists an instant at which every dependency of the cycle is simultaneously
active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..clocks.algebra import (
    ClockAtom,
    ClockExpr,
    CondFalse,
    CondTrue,
    Diff,
    SignalClock,
    meet_all,
)
from ..clocks.resolution import ClockHierarchy
from ..errors import CausalityError
from ..lang.kernel import (
    KernelDefault,
    KernelDelay,
    KernelFunction,
    KernelProgram,
    KernelSynchro,
    KernelWhen,
    Literal,
)

__all__ = ["GraphNode", "DependencyEdge", "ConditionalDependencyGraph", "build_dependency_graph"]


#: A node of the graph: a signal name (its value) or a clock atom (its presence).
GraphNode = Union[str, ClockAtom]


def node_label(node: GraphNode) -> str:
    return node if isinstance(node, str) else str(node)


@dataclass(frozen=True)
class DependencyEdge:
    """A conditioned dependency ``source --clock--> target``."""

    source: GraphNode
    target: GraphNode
    clock: ClockExpr

    def __str__(self) -> str:
        return f"{node_label(self.source)} --{self.clock}--> {node_label(self.target)}"


class ConditionalDependencyGraph:
    """A labelled directed graph over signals and clocks."""

    def __init__(self) -> None:
        self.edges: List[DependencyEdge] = []
        self._successors: Dict[GraphNode, List[DependencyEdge]] = {}
        self._predecessors: Dict[GraphNode, List[DependencyEdge]] = {}
        self.nodes: List[GraphNode] = []
        self._node_set: Set[GraphNode] = set()

    # -- construction ------------------------------------------------------
    def add_node(self, node: GraphNode) -> None:
        if node not in self._node_set:
            self._node_set.add(node)
            self.nodes.append(node)
            self._successors[node] = []
            self._predecessors[node] = []

    def add_edge(self, source: GraphNode, target: GraphNode, clock: ClockExpr) -> DependencyEdge:
        self.add_node(source)
        self.add_node(target)
        edge = DependencyEdge(source, target, clock)
        self.edges.append(edge)
        self._successors[source].append(edge)
        self._predecessors[target].append(edge)
        return edge

    # -- queries --------------------------------------------------------------
    def successors(self, node: GraphNode) -> List[DependencyEdge]:
        return list(self._successors.get(node, []))

    def predecessors(self, node: GraphNode) -> List[DependencyEdge]:
        return list(self._predecessors.get(node, []))

    def value_predecessors(self, signal: str) -> List[str]:
        """Signals whose value feeds the computation of ``signal``."""
        return [e.source for e in self.predecessors(signal) if isinstance(e.source, str)]

    def edge_count(self) -> int:
        return len(self.edges)

    def node_count(self) -> int:
        return len(self.nodes)

    # -- cycle analysis ----------------------------------------------------------
    def strongly_connected_components(self) -> List[List[GraphNode]]:
        """Tarjan's algorithm (iterative) over the whole graph."""
        index_counter = 0
        indices: Dict[GraphNode, int] = {}
        lowlink: Dict[GraphNode, int] = {}
        on_stack: Set[GraphNode] = set()
        stack: List[GraphNode] = []
        components: List[List[GraphNode]] = []

        for start in self.nodes:
            if start in indices:
                continue
            work: List[Tuple[GraphNode, int]] = [(start, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    indices[node] = index_counter
                    lowlink[node] = index_counter
                    index_counter += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                successors = self._successors.get(node, [])
                while child_index < len(successors):
                    successor = successors[child_index].target
                    child_index += 1
                    if successor not in indices:
                        work[-1] = (node, child_index)
                        work.append((successor, 0))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[node] = min(lowlink[node], indices[successor])
                if advanced:
                    continue
                work[-1] = (node, child_index)
                if child_index >= len(successors):
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[node])
                    if lowlink[node] == indices[node]:
                        component = []
                        while True:
                            member = stack.pop()
                            on_stack.discard(member)
                            component.append(member)
                            if member == node:
                                break
                        components.append(component)
        return components

    def cyclic_components(self) -> List[List[GraphNode]]:
        """SCCs that actually contain a cycle (size > 1, or a self-loop)."""
        cyclic = []
        for component in self.strongly_connected_components():
            if len(component) > 1:
                cyclic.append(component)
            else:
                node = component[0]
                if any(e.target == node for e in self._successors.get(node, [])):
                    cyclic.append(component)
        return cyclic

    def check_causality(self, hierarchy: Optional[ClockHierarchy] = None) -> None:
        """Raise :class:`CausalityError` for cycles active at some instant.

        Without a hierarchy every static cycle is reported.  With a hierarchy
        the meet of the edge labels inside the strongly connected component is
        computed; the component is only rejected when that meet is non-empty
        (the paper's conditional dependencies: a dependency labelled by an
        empty clock never constrains the schedule).  This is a conservative
        approximation of per-cycle analysis, documented as such.
        """
        for component in self.cyclic_components():
            member_set = set(component)
            labels = [
                e.clock
                for node in component
                for e in self._successors.get(node, [])
                if e.target in member_set
            ]
            if hierarchy is not None and labels:
                meet = meet_all(tuple(labels))
                if hierarchy.is_empty(meet):
                    continue
            names = ", ".join(sorted(node_label(n) for n in component))
            raise CausalityError(
                f"instantaneous dependency cycle through: {names}"
            )

    def __str__(self) -> str:
        return "\n".join(str(e) for e in self.edges)


def build_dependency_graph(program: KernelProgram) -> ConditionalDependencyGraph:
    """Construct the conditional dependency graph of a kernel program (Table 2)."""
    graph = ConditionalDependencyGraph()

    # For each signal X, its clock constrains it: x̂ --x̂--> X.
    for name in program.signals:
        graph.add_edge(SignalClock(name), name, SignalClock(name))

    conditions_seen: Set[str] = set()

    for process in program.processes:
        if isinstance(process, KernelFunction):
            target_clock = SignalClock(process.target)
            for operand in process.operands:
                if isinstance(operand, Literal):
                    continue
                graph.add_edge(operand, process.target, target_clock)
        elif isinstance(process, KernelDelay):
            # No dependency: the delay's value is taken from the previous instant.
            continue
        elif isinstance(process, KernelWhen):
            target_clock = SignalClock(process.target)
            if not isinstance(process.source, Literal):
                graph.add_edge(process.source, process.target, target_clock)
            if process.condition not in conditions_seen:
                conditions_seen.add(process.condition)
                condition_clock = SignalClock(process.condition)
                graph.add_edge(process.condition, CondTrue(process.condition), condition_clock)
                graph.add_edge(process.condition, CondFalse(process.condition), condition_clock)
        elif isinstance(process, KernelDefault):
            left, right = process.left, process.right
            if not isinstance(left, Literal):
                graph.add_edge(left, process.target, SignalClock(left))
            if not isinstance(right, Literal):
                if isinstance(left, Literal):
                    right_clock: ClockExpr = SignalClock(right)
                else:
                    right_clock = Diff(SignalClock(right), SignalClock(left))
                graph.add_edge(right, process.target, right_clock)
        elif isinstance(process, KernelSynchro):
            continue
        else:  # pragma: no cover - exhaustive over kernel constructors
            raise TypeError(f"unknown kernel process {process!r}")

    return graph
