"""Triangular scheduling of clock and signal computations.

Code generation (both the flat and the hierarchical backends) needs a total
order in which

* the presence of every clock is computed after the clocks / condition
  values it is defined from (the triangular order exhibited by the
  resolution), and
* the value of every signal is computed after its clock and after the
  signals it depends on (the conditional dependency graph).

:`build_schedule` produces that order, or raises when the program has an
instantaneous cycle that the conditional analysis cannot discharge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..clocks.resolution import (
    ClockClass,
    ClockHierarchy,
    FormulaDefinition,
    PartitionDefinition,
)
from ..clocks.algebra import clock_atoms
from ..errors import CausalityError
from ..lang.kernel import KernelProgram, KernelSynchro
from .dependency import ConditionalDependencyGraph

__all__ = ["Action", "ComputeClock", "ComputeSignal", "Schedule", "build_schedule"]


@dataclass(frozen=True)
class ComputeClock:
    """Compute the presence flag of a clock class."""

    class_id: int

    def __str__(self) -> str:
        return f"clock#{self.class_id}"


@dataclass(frozen=True)
class ComputeSignal:
    """Compute (or read) the value of a signal at its clock."""

    signal: str

    def __str__(self) -> str:
        return f"signal {self.signal}"


Action = Union[ComputeClock, ComputeSignal]


@dataclass
class Schedule:
    """A triangular total order of clock and signal computations."""

    program: KernelProgram
    hierarchy: ClockHierarchy
    graph: ConditionalDependencyGraph
    actions: List[Action]
    prerequisites: Dict[Action, Set[Action]]
    #: clock class of every scheduled signal (null-clocked signals are omitted)
    signal_class: Dict[str, ClockClass]

    def ordered_signals(self) -> List[str]:
        return [a.signal for a in self.actions if isinstance(a, ComputeSignal)]

    def ordered_classes(self) -> List[int]:
        return [a.class_id for a in self.actions if isinstance(a, ComputeClock)]

    def depends_on(self, action: Action, other: Action) -> bool:
        """Whether ``action`` (transitively) requires ``other`` to run first."""
        seen: Set[Action] = set()
        stack = [action]
        while stack:
            current = stack.pop()
            for prerequisite in self.prerequisites.get(current, ()):
                if prerequisite == other:
                    return True
                if prerequisite not in seen:
                    seen.add(prerequisite)
                    stack.append(prerequisite)
        return False


def build_schedule(
    program: KernelProgram,
    hierarchy: ClockHierarchy,
    graph: ConditionalDependencyGraph,
) -> Schedule:
    """Compute the global triangular order of clock and signal actions."""
    class_by_id: Dict[int, ClockClass] = {c.id: c for c in hierarchy.classes}

    # Which signals are scheduled: every program signal whose clock is not null.
    signal_class: Dict[str, ClockClass] = {}
    for name in program.signals:
        clock_class = hierarchy.class_of_signal(name)
        if clock_class.is_null:
            continue
        signal_class[name] = clock_class

    actions: List[Action] = []
    action_set: Set[Action] = set()

    def add_action(action: Action) -> None:
        if action not in action_set:
            action_set.add(action)
            actions.append(action)

    # Clock actions in placement order (already triangular), then signal reads.
    for clock_class in hierarchy.placement_order:
        if clock_class.is_null:
            continue
        add_action(ComputeClock(clock_class.id))
    for name in program.signals:
        if name in signal_class:
            add_action(ComputeSignal(name))

    prerequisites: Dict[Action, Set[Action]] = {action: set() for action in actions}

    def add_edge(before: Action, after: Action) -> None:
        if before in action_set and after in action_set and before != after:
            prerequisites[after].add(before)

    # Clock-to-clock and value-to-clock constraints from the class definitions.
    for clock_class in hierarchy.classes:
        if clock_class.is_null:
            continue
        action = ComputeClock(clock_class.id)
        definition = clock_class.definition
        if isinstance(definition, PartitionDefinition):
            parent = class_by_id.get(definition.parent_id)
            if parent is None:
                # The recorded parent was merged; use the canonical class of the
                # condition signal's clock instead.
                parent = hierarchy.class_of_signal(definition.condition)
            add_edge(ComputeClock(parent.id), action)
            add_edge(ComputeSignal(definition.condition), action)
        elif isinstance(definition, FormulaDefinition):
            for atom in clock_atoms(definition.formula):
                operand = hierarchy.class_of_atom(atom)
                add_edge(ComputeClock(operand.id), action)

    # A signal is computed after its clock.
    for name, clock_class in signal_class.items():
        add_edge(ComputeClock(clock_class.id), ComputeSignal(name))

    # Value dependencies from the conditional dependency graph (signal-to-signal
    # edges only; clock-to-signal edges are covered above).
    for edge in graph.edges:
        if isinstance(edge.source, str) and isinstance(edge.target, str):
            add_edge(ComputeSignal(edge.source), ComputeSignal(edge.target))

    ordered = _topological_sort(actions, prerequisites)

    return Schedule(
        program=program,
        hierarchy=hierarchy,
        graph=graph,
        actions=ordered,
        prerequisites=prerequisites,
        signal_class=signal_class,
    )


def _topological_sort(
    actions: Sequence[Action], prerequisites: Dict[Action, Set[Action]]
) -> List[Action]:
    """Stable topological sort (Kahn); raises :class:`CausalityError` on cycles."""
    remaining_prereqs: Dict[Action, Set[Action]] = {
        action: set(prerequisites.get(action, ())) for action in actions
    }
    dependents: Dict[Action, List[Action]] = {action: [] for action in actions}
    for action, prereqs in remaining_prereqs.items():
        for prerequisite in prereqs:
            dependents[prerequisite].append(action)

    # Stable: keep the original declaration order among ready actions.
    order_index = {action: index for index, action in enumerate(actions)}
    ready = sorted(
        [a for a in actions if not remaining_prereqs[a]], key=order_index.__getitem__
    )
    result: List[Action] = []
    while ready:
        action = ready.pop(0)
        result.append(action)
        newly_ready = []
        for dependent in dependents[action]:
            remaining_prereqs[dependent].discard(action)
            if not remaining_prereqs[dependent]:
                newly_ready.append(dependent)
        if newly_ready:
            ready.extend(newly_ready)
            ready.sort(key=order_index.__getitem__)

    if len(result) != len(actions):
        stuck = [str(a) for a in actions if a not in set(result)]
        raise CausalityError(
            "cannot order computations (instantaneous cycle): " + ", ".join(stuck)
        )
    return result
