"""The conditional dependency graph (Table 2) and clock-aware causality analysis."""

from .dependency import ConditionalDependencyGraph, DependencyEdge, build_dependency_graph
from .scheduling import Action, ComputeClock, ComputeSignal, Schedule, build_schedule

__all__ = [
    "ConditionalDependencyGraph",
    "DependencyEdge",
    "build_dependency_graph",
    "Action",
    "ComputeClock",
    "ComputeSignal",
    "Schedule",
    "build_schedule",
]
