"""PROCESS_ALARM, the running example of the paper (Section 3.3, Figure 5).

Two versions are provided:

* :data:`SIMPLE_ALARM_SOURCE` -- the first, fully synchronous version where
  all the sensors are sampled at every reaction
  (``ALARM := BRAKE and LIMIT_REACHED and not STOP_OK``);
* :data:`ALARM_SOURCE` -- the refined version of Figure 5, where a sensor is
  sampled only when its value is needed: ``STOP_OK`` and ``LIMIT_REACHED``
  during a braking action, ``BRAKE`` otherwise.  The compilation of this
  version exhibits the free clock ``Ĉ`` discussed in Section 3.3 (the pace
  at which the sensors are sampled is left to the environment).
"""

SIMPLE_ALARM_SOURCE = """
process SIMPLE_ALARM =
  ( ? boolean BRAKE, STOP_OK, LIMIT_REACHED;
    ! boolean ALARM; )
  (| ALARM := BRAKE and LIMIT_REACHED and (not STOP_OK)
   |)
end;
"""

ALARM_SOURCE = """
process ALARM =
  ( ? boolean BRAKE, STOP_OK, LIMIT_REACHED;
    ! boolean ALARM; )
  (| BRAKING_STATE := BRAKING_NEXT_STATE $ 1 init false    % memorize the next state
   | BRAKING_NEXT_STATE :=
       (true when BRAKE) default                            % enter the braking state
       (false when STOP_OK) default                         % leave the braking state
       BRAKING_STATE                                        % stay in the previous state
   | synchro { when BRAKING_STATE, STOP_OK, LIMIT_REACHED } % sample in braking state
   | synchro { when (not BRAKING_STATE), BRAKE }            % sample when not braking
   | ALARM := LIMIT_REACHED and (not STOP_OK)               % brake need not be checked
   |)
  where boolean BRAKING_STATE, BRAKING_NEXT_STATE;
end;
"""

__all__ = ["ALARM_SOURCE", "SIMPLE_ALARM_SOURCE"]
