"""SIGNAL programs used by the examples, the tests and the benchmarks.

* :mod:`repro.programs.alarm` -- the PROCESS_ALARM of Figure 5 (verbatim)
  and its single-equation variant from Section 3.3;
* :mod:`repro.programs.basics` -- small pedagogical processes (counter,
  watchdog, resettable accumulator) used by the examples and tests;
* :mod:`repro.programs.generators` -- a parametric generator of hierarchical
  control programs (mode automata with sampled sensors, counters and
  filters) in the style of the paper's applications;
* :mod:`repro.programs.suite` -- the seven programs of Figure 13
  (STOPWATCH, WATCH, ALARM, CHRONO, SUPERVISOR, PACE_MAKER, ROBOT), rebuilt
  with the generator and sized to the variable counts reported in the paper
  (the original INRIA sources are not public; see DESIGN.md for the
  substitution argument).
"""

from .alarm import ALARM_SOURCE, SIMPLE_ALARM_SOURCE
from .basics import COUNTER_SOURCE, ACCUMULATOR_SOURCE, WATCHDOG_SOURCE
from .generators import (
    ControlProgramSpec,
    FleetSpec,
    fleet_member_modules,
    generate_control_program,
    generate_fleet,
    generate_fleet_member,
    library_module_source,
)
from .suite import (
    BENCHMARK_PROGRAMS,
    DEFAULT_FLEET_SPEC,
    benchmark_names,
    benchmark_source,
    fleet_sources,
    paper_reference,
)

__all__ = [
    "ALARM_SOURCE",
    "SIMPLE_ALARM_SOURCE",
    "COUNTER_SOURCE",
    "ACCUMULATOR_SOURCE",
    "WATCHDOG_SOURCE",
    "ControlProgramSpec",
    "generate_control_program",
    "FleetSpec",
    "fleet_member_modules",
    "generate_fleet",
    "generate_fleet_member",
    "library_module_source",
    "BENCHMARK_PROGRAMS",
    "benchmark_names",
    "benchmark_source",
    "paper_reference",
    "DEFAULT_FLEET_SPEC",
    "fleet_sources",
]
