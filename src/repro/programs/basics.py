"""Small pedagogical SIGNAL processes used in examples and tests."""

#: A resettable counter: ``N`` counts reactions and restarts at 0 on RESET.
COUNTER_SOURCE = """
process COUNT =
  ( ? boolean RESET;
    ! integer N; )
  (| N := (0 when RESET) default (ZN + 1)
   | ZN := N $ 1 init 0
   | synchro { N, RESET }
   |)
  where integer ZN;
end;
"""

#: An accumulator over an input stream, with a sampled emission of the total.
ACCUMULATOR_SOURCE = """
process ACCUMULATOR =
  ( ? integer X; boolean EMIT;
    ! integer TOTAL; )
  (| SUM := ZSUM + X
   | ZSUM := SUM $ 1 init 0
   | TOTAL := SUM when EMIT
   | synchro { X, EMIT }
   |)
  where integer SUM, ZSUM;
end;
"""

#: A watchdog: raises ALARM when no LIFE_SIGN arrived for LIMIT consecutive ticks.
WATCHDOG_SOURCE = """
process WATCHDOG =
  ( ? boolean LIFE_SIGN; integer LIMIT;
    ! boolean ALARM; )
  (| COUNT := (0 when LIFE_SIGN) default (ZCOUNT + 1)
   | ZCOUNT := COUNT $ 1 init 0
   | ALARM := COUNT >= LIMIT
   | synchro { LIFE_SIGN, LIMIT, COUNT }
   |)
  where integer COUNT, ZCOUNT;
end;
"""

__all__ = ["COUNTER_SOURCE", "ACCUMULATOR_SOURCE", "WATCHDOG_SOURCE"]
