"""Parametric generator of hierarchical control programs.

The Figure 13 evaluation uses seven real SIGNAL applications (a stopwatch, a
digital watch, an alarm controller, a chronometer, a supervisor, a pacemaker
and a robot controller) whose sources were never published.  What matters
for the comparison of equation-system representations is the *shape and
size* of the boolean system: hierarchies of sampled modes, state machines
driving which sensors are polled, counters and filters living on sampled
clocks.  This generator produces programs with exactly that structure:

* a tree of *modules*; each module is a mode automaton in the style of
  PROCESS_ALARM (a boolean state remembered with ``$``, entered with a
  START button polled while the mode is off, left with a STOP button polled
  while the mode is on);
* each non-root module's automaton is clocked by the instants at which its
  parent mode is *on*, which creates the deep partition hierarchies (watch
  mode -> submode -> setting position) that the arborescent representation
  is designed for;
* each module samples a configurable number of boolean sensors and one
  integer measurement while its mode is on, maintains a counter and a
  first-order filter on that sampled clock, and raises an alarm output.

The number of boolean variables of the resulting clock system grows linearly
with the number of modules, so each Figure 13 row can be matched in size by
choosing the module count (see :mod:`repro.programs.suite`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "ControlProgramSpec",
    "generate_control_program",
    "FleetSpec",
    "fleet_member_modules",
    "generate_fleet",
    "generate_fleet_member",
    "library_module_source",
]


@dataclass(frozen=True)
class ControlProgramSpec:
    """Parameters of a generated hierarchical control program.

    Attributes
    ----------
    name:
        Process name (uppercase identifier).
    modules:
        Number of mode-automaton modules (at least 1).
    branching:
        Number of child modules attached under each module (the module tree
        is filled breadth-first).
    sensors:
        Number of boolean sensors sampled by each module while its mode is on.
    with_filter:
        Whether each module maintains an integer filter on a sampled
        measurement (adds numeric data-path signals).
    with_counter:
        Whether each module maintains a resettable counter on its sampled
        clock.
    with_arithmetic:
        Whether each module computes an arithmetic block on its sampled
        clock: floored division and modulo of a sampled measurement by
        *negative* constant and signal-derived divisors, plus an ``xor``
        combination.  This is the corpus that distinguishes Python's
        floored ``//``/``%`` from C's truncate-toward-zero division -- a
        backend that lowers the operators naively diverges on the first
        negative operand.
    distributed:
        Whether the program is location-annotated for the partitioner:
        inputs are pinned ``at edge`` and each module gains a small
        ``at cloud`` post-processing layer (a relay of the alarm, plus an
        accumulator over the filter output when ``with_filter``), so the
        program cuts into an edge fragment feeding a cloud fragment over
        typed channels.  Off by default -- unannotated specs generate
        byte-identical sources to earlier revisions, preserving
        fingerprints and cached artifacts.
    """

    name: str
    modules: int = 4
    branching: int = 2
    sensors: int = 3
    with_filter: bool = True
    with_counter: bool = True
    with_arithmetic: bool = False
    distributed: bool = False

    def parent_of(self, module: int) -> Optional[int]:
        if module == 0:
            return None
        return (module - 1) // self.branching


def _module_equations(spec: ControlProgramSpec, module: int) -> List[str]:
    """The equations of one module."""
    m = module
    parent = spec.parent_of(module)
    lines: List[str] = []

    # Mode automaton (the PROCESS_ALARM pattern).
    lines.append(f"MODE_{m} := NMODE_{m} $ 1 init false")
    lines.append(
        f"NMODE_{m} := (true when START_{m}) default (false when STOP_{m}) default MODE_{m}"
    )
    if parent is not None:
        # The child automaton only reacts while the parent mode is on.
        lines.append(f"synchro {{ MODE_{m}, when MODE_{parent} }}")
    # Buttons and sensors are polled according to the mode.
    lines.append(f"synchro {{ when (not MODE_{m}), START_{m} }}")
    on_signals = [f"STOP_{m}"] + [f"S_{m}_{j}" for j in range(spec.sensors)]
    if spec.with_filter:
        on_signals.append(f"V_{m}")
    if spec.with_arithmetic:
        on_signals.append(f"W_{m}")
    lines.append("synchro { when MODE_" + str(m) + ", " + ", ".join(on_signals) + " }")

    # Alarm logic over the sampled sensors.
    if spec.sensors >= 2:
        alarm_expr = f"S_{m}_0 and (not S_{m}_1)"
        for j in range(2, spec.sensors):
            alarm_expr = f"({alarm_expr}) or S_{m}_{j}"
    elif spec.sensors == 1:
        alarm_expr = f"S_{m}_0"
    else:
        alarm_expr = f"STOP_{m}"
    if spec.with_counter:
        alarm_expr = f"({alarm_expr}) or (CNT_{m} >= 100)"
    lines.append(f"ALR_{m} := {alarm_expr}")

    # Resettable counter on the sampled clock.
    if spec.with_counter:
        reset = f"S_{m}_0" if spec.sensors >= 1 else f"STOP_{m}"
        lines.append(f"CNT_{m} := (0 when {reset}) default (ZCNT_{m} + 1)")
        lines.append(f"ZCNT_{m} := CNT_{m} $ 1 init 0")
        lines.append(f"synchro {{ CNT_{m}, {reset} }}")

    # First-order filter on the sampled measurement.
    if spec.with_filter:
        lines.append(f"FLT_{m} := (V_{m} + ZFLT_{m}) / 2")
        lines.append(f"ZFLT_{m} := FLT_{m} $ 1 init 0")

    # Arithmetic block: floored / and modulo against negative divisors
    # (constant and signal-derived, the divisor never reaching zero), and
    # an xor of two sampled booleans.
    if spec.with_arithmetic:
        lines.append(f"QUO_{m} := (W_{m} - 7) / 3")
        lines.append(f"REM_{m} := (W_{m} + 5) modulo (0 - 3)")
        lines.append(
            f"DEN_{m} := 0 - (((W_{m} modulo 5) * (W_{m} modulo 5)) + 1)"
        )
        lines.append(f"QD_{m} := (W_{m} - 3) / DEN_{m}")
        lines.append(f"RD_{m} := (W_{m} + 2) modulo DEN_{m}")
        lines.append(f"XR_{m} := (W_{m} >= 0) xor STOP_{m}")

    # Cloud post-processing layer: consumes edge-defined signals only, so
    # each line becomes a channel cut rather than a remote input read.
    if spec.distributed:
        lines.append(f"RLY_{m} := (not ALR_{m}) at cloud")
        if spec.with_filter:
            lines.append(f"AGG_{m} := (FLT_{m} + ZAGG_{m}) at cloud")
            lines.append(f"ZAGG_{m} := AGG_{m} $ 1 init 0 at cloud")

    return lines


def generate_control_program(spec: ControlProgramSpec) -> str:
    """Generate the SIGNAL source text of a hierarchical control program."""
    if spec.modules < 1:
        raise ValueError("a control program needs at least one module")

    input_booleans: List[str] = []
    input_integers: List[str] = []
    output_booleans: List[str] = []
    output_integers: List[str] = []
    local_booleans: List[str] = []
    local_integers: List[str] = []
    equations: List[str] = []

    for module in range(spec.modules):
        input_booleans.append(f"START_{module}")
        input_booleans.append(f"STOP_{module}")
        input_booleans.extend(f"S_{module}_{j}" for j in range(spec.sensors))
        if spec.with_filter:
            input_integers.append(f"V_{module}")
        if spec.with_arithmetic:
            input_integers.append(f"W_{module}")
        output_booleans.append(f"ALR_{module}")
        if spec.distributed:
            output_booleans.append(f"RLY_{module}")
        if spec.with_filter:
            output_integers.append(f"FLT_{module}")
            if spec.distributed:
                output_integers.append(f"AGG_{module}")
                local_integers.append(f"ZAGG_{module}")
        if spec.with_arithmetic:
            output_booleans.append(f"XR_{module}")
            output_integers.extend(
                f"{prefix}_{module}" for prefix in ("QUO", "REM", "QD", "RD")
            )
        local_booleans.extend([f"MODE_{module}", f"NMODE_{module}"])
        if spec.with_counter:
            local_integers.extend([f"CNT_{module}", f"ZCNT_{module}"])
        if spec.with_filter:
            local_integers.append(f"ZFLT_{module}")
        if spec.with_arithmetic:
            local_integers.append(f"DEN_{module}")
        equations.extend(_module_equations(spec, module))

    def declaration_block(
        booleans: List[str], integers: List[str], suffix: str = ""
    ) -> List[str]:
        block = []
        if booleans:
            block.append("boolean " + ", ".join(n + suffix for n in booleans) + ";")
        if integers:
            block.append("integer " + ", ".join(n + suffix for n in integers) + ";")
        return block

    # Pinning the inputs at the edge makes ``edge`` the first-annotated
    # (hence default) location, so everything except the explicit
    # ``at cloud`` layer stays edge-side.
    input_suffix = " at edge" if spec.distributed else ""
    lines: List[str] = [f"process {spec.name} ="]
    lines.append(
        "  ( ? "
        + " ".join(declaration_block(input_booleans, input_integers, input_suffix))
    )
    lines.append("    ! " + " ".join(declaration_block(output_booleans, output_integers)) + " )")
    lines.append("  (| " + "\n   | ".join(equations))
    lines.append("   |)")
    lines.append("  where " + " ".join(declaration_block(local_booleans, local_integers)))
    lines.append("end;")
    return "\n".join(lines)


# -- shared-module fleets ----------------------------------------------------
#
# Modular compilation is only interesting when *different* programs embed the
# *same* module.  A fleet is a family of programs assembled from a common
# module library: every member carries a core of ``shared_units`` library
# modules plus member-specific ones, so compiling the fleet modularly reuses
# the core's unit artifacts across members.  Signals are named by the
# module's *position inside the member* (not by its library index), so the
# same library module appears under different signal names in different
# members -- exactly the situation unit-fingerprint canonicalization must
# see through.


@dataclass(frozen=True)
class FleetSpec:
    """Parameters of a fleet of programs sharing a module library.

    Attributes
    ----------
    name:
        Prefix of the member process names (member ``i`` is ``{name}{i}``).
    programs:
        Number of fleet members (at least 1).
    library_size:
        Number of modules in the shared library.  Library modules are
        pairwise shape-distinct (different sensor counts, thresholds and
        filter divisors), so no two library modules canonicalize to the
        same unit fingerprint.
    units_per_program:
        Number of library modules embedded in each member.  Each module is
        a self-contained connected component, so this is exactly the
        member's unit count.
    shared_units:
        Size of the shared core: the first ``shared_units`` modules of the
        (seed-shuffled) library appear in *every* member.  The remaining
        ``units_per_program - shared_units`` modules of each member are
        assigned round-robin from the rest of the library.
    seed:
        Seed of the library shuffle; the same spec always generates the
        same fleet.
    """

    name: str = "FLEET"
    programs: int = 4
    library_size: int = 6
    units_per_program: int = 3
    shared_units: int = 2
    seed: int = 0

    def validate(self) -> None:
        if self.programs < 1:
            raise ValueError("a fleet needs at least one program")
        if self.units_per_program < 1:
            raise ValueError("fleet members need at least one unit")
        if not 0 <= self.shared_units <= self.units_per_program:
            raise ValueError("shared_units must be between 0 and units_per_program")
        if self.library_size < self.units_per_program:
            raise ValueError(
                "library_size must be at least units_per_program "
                "(a member embeds distinct library modules)"
            )


def _module_sensors(module_index: int) -> int:
    return 1 + module_index % 3


def _library_module_lines(module_index: int, position: int) -> List[str]:
    """The equations of library module ``module_index`` at ``position``.

    Signal names use the *position* suffix; the library index only shapes
    the module (sensor count, alarm threshold, filter divisor), keeping all
    library modules pairwise shape-distinct.
    """
    p = position
    sensors = _module_sensors(module_index)
    threshold = 100 + module_index
    divisor = 2 + module_index % 4
    lines = [
        f"MODE_{p} := NMODE_{p} $ 1 init false",
        f"NMODE_{p} := (true when START_{p}) default (false when STOP_{p}) default MODE_{p}",
        f"synchro {{ when (not MODE_{p}), START_{p} }}",
        "synchro { when MODE_" + str(p) + ", "
        + ", ".join([f"STOP_{p}"] + [f"S_{p}_{j}" for j in range(sensors)] + [f"V_{p}"])
        + " }",
    ]
    if sensors >= 2:
        alarm = f"S_{p}_0 and (not S_{p}_1)"
        for j in range(2, sensors):
            alarm = f"({alarm}) or S_{p}_{j}"
    else:
        alarm = f"S_{p}_0"
    lines += [
        f"ALR_{p} := ({alarm}) or (CNT_{p} >= {threshold})",
        f"CNT_{p} := (0 when S_{p}_0) default (ZCNT_{p} + 1)",
        f"ZCNT_{p} := CNT_{p} $ 1 init 0",
        f"synchro {{ CNT_{p}, S_{p}_0 }}",
        f"FLT_{p} := (V_{p} + ZFLT_{p}) / {divisor}",
        f"ZFLT_{p} := FLT_{p} $ 1 init 0",
    ]
    return lines


def _module_declarations(module_index: int, position: int):
    """(input booleans, input integers, output booleans, output integers,
    local booleans, local integers) of one embedded module."""
    p = position
    sensors = _module_sensors(module_index)
    return (
        [f"START_{p}", f"STOP_{p}"] + [f"S_{p}_{j}" for j in range(sensors)],
        [f"V_{p}"],
        [f"ALR_{p}"],
        [f"FLT_{p}"],
        [f"MODE_{p}", f"NMODE_{p}"],
        [f"CNT_{p}", f"ZCNT_{p}", f"ZFLT_{p}"],
    )


def _assemble_program(
    name: str, modules: List[int], positions: Optional[List[int]] = None
) -> str:
    if positions is None:
        positions = list(range(len(modules)))
    input_booleans: List[str] = []
    input_integers: List[str] = []
    output_booleans: List[str] = []
    output_integers: List[str] = []
    local_booleans: List[str] = []
    local_integers: List[str] = []
    equations: List[str] = []
    for position, module_index in zip(positions, modules):
        ib, ii, ob, oi, lb, li = _module_declarations(module_index, position)
        input_booleans += ib
        input_integers += ii
        output_booleans += ob
        output_integers += oi
        local_booleans += lb
        local_integers += li
        equations += _library_module_lines(module_index, position)

    def block(booleans: List[str], integers: List[str]) -> str:
        parts = []
        if booleans:
            parts.append("boolean " + ", ".join(booleans) + ";")
        if integers:
            parts.append("integer " + ", ".join(integers) + ";")
        return " ".join(parts)

    return "\n".join(
        [
            f"process {name} =",
            "  ( ? " + block(input_booleans, input_integers),
            "    ! " + block(output_booleans, output_integers) + " )",
            "  (| " + "\n   | ".join(equations),
            "   |)",
            "  where " + block(local_booleans, local_integers),
            "end;",
        ]
    )


def library_module_source(module_index: int, position: int = 0, name: Optional[str] = None) -> str:
    """A standalone program embedding exactly one library module.

    ``position`` picks the signal-name suffix, so two calls with different
    positions produce alpha-variants of the same module -- they must
    canonicalize to the same unit fingerprint.
    """
    return _assemble_program(
        name or f"MOD{module_index}", [module_index], positions=[position]
    )


def fleet_member_modules(spec: FleetSpec) -> List[List[int]]:
    """The library indices each fleet member embeds, in member order.

    This is the accounting ground truth for cache tests: compiling member
    ``i`` after members ``0..i-1`` must perform exactly
    ``len(set(modules[i]) - union(modules[:i]))`` unit compiles.
    """
    spec.validate()
    order = list(range(spec.library_size))
    random.Random(spec.seed).shuffle(order)
    core = order[: spec.shared_units]
    pool = order[spec.shared_units :]
    specific = spec.units_per_program - spec.shared_units
    members: List[List[int]] = []
    for i in range(spec.programs):
        extra = [pool[(i * specific + j) % len(pool)] for j in range(specific)] if specific else []
        members.append(core + extra)
    return members


def generate_fleet_member(spec: FleetSpec, index: int) -> str:
    """The SIGNAL source of fleet member ``index``."""
    modules = fleet_member_modules(spec)
    if not 0 <= index < len(modules):
        raise IndexError(f"fleet {spec.name} has {len(modules)} members")
    return _assemble_program(f"{spec.name}{index}", modules[index])


def generate_fleet(spec: FleetSpec) -> List[str]:
    """The SIGNAL sources of every fleet member, in member order."""
    return [
        _assemble_program(f"{spec.name}{i}", modules)
        for i, modules in enumerate(fleet_member_modules(spec))
    ]
