"""Parametric generator of hierarchical control programs.

The Figure 13 evaluation uses seven real SIGNAL applications (a stopwatch, a
digital watch, an alarm controller, a chronometer, a supervisor, a pacemaker
and a robot controller) whose sources were never published.  What matters
for the comparison of equation-system representations is the *shape and
size* of the boolean system: hierarchies of sampled modes, state machines
driving which sensors are polled, counters and filters living on sampled
clocks.  This generator produces programs with exactly that structure:

* a tree of *modules*; each module is a mode automaton in the style of
  PROCESS_ALARM (a boolean state remembered with ``$``, entered with a
  START button polled while the mode is off, left with a STOP button polled
  while the mode is on);
* each non-root module's automaton is clocked by the instants at which its
  parent mode is *on*, which creates the deep partition hierarchies (watch
  mode -> submode -> setting position) that the arborescent representation
  is designed for;
* each module samples a configurable number of boolean sensors and one
  integer measurement while its mode is on, maintains a counter and a
  first-order filter on that sampled clock, and raises an alarm output.

The number of boolean variables of the resulting clock system grows linearly
with the number of modules, so each Figure 13 row can be matched in size by
choosing the module count (see :mod:`repro.programs.suite`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["ControlProgramSpec", "generate_control_program"]


@dataclass(frozen=True)
class ControlProgramSpec:
    """Parameters of a generated hierarchical control program.

    Attributes
    ----------
    name:
        Process name (uppercase identifier).
    modules:
        Number of mode-automaton modules (at least 1).
    branching:
        Number of child modules attached under each module (the module tree
        is filled breadth-first).
    sensors:
        Number of boolean sensors sampled by each module while its mode is on.
    with_filter:
        Whether each module maintains an integer filter on a sampled
        measurement (adds numeric data-path signals).
    with_counter:
        Whether each module maintains a resettable counter on its sampled
        clock.
    with_arithmetic:
        Whether each module computes an arithmetic block on its sampled
        clock: floored division and modulo of a sampled measurement by
        *negative* constant and signal-derived divisors, plus an ``xor``
        combination.  This is the corpus that distinguishes Python's
        floored ``//``/``%`` from C's truncate-toward-zero division -- a
        backend that lowers the operators naively diverges on the first
        negative operand.
    """

    name: str
    modules: int = 4
    branching: int = 2
    sensors: int = 3
    with_filter: bool = True
    with_counter: bool = True
    with_arithmetic: bool = False

    def parent_of(self, module: int) -> Optional[int]:
        if module == 0:
            return None
        return (module - 1) // self.branching


def _module_equations(spec: ControlProgramSpec, module: int) -> List[str]:
    """The equations of one module."""
    m = module
    parent = spec.parent_of(module)
    lines: List[str] = []

    # Mode automaton (the PROCESS_ALARM pattern).
    lines.append(f"MODE_{m} := NMODE_{m} $ 1 init false")
    lines.append(
        f"NMODE_{m} := (true when START_{m}) default (false when STOP_{m}) default MODE_{m}"
    )
    if parent is not None:
        # The child automaton only reacts while the parent mode is on.
        lines.append(f"synchro {{ MODE_{m}, when MODE_{parent} }}")
    # Buttons and sensors are polled according to the mode.
    lines.append(f"synchro {{ when (not MODE_{m}), START_{m} }}")
    on_signals = [f"STOP_{m}"] + [f"S_{m}_{j}" for j in range(spec.sensors)]
    if spec.with_filter:
        on_signals.append(f"V_{m}")
    if spec.with_arithmetic:
        on_signals.append(f"W_{m}")
    lines.append("synchro { when MODE_" + str(m) + ", " + ", ".join(on_signals) + " }")

    # Alarm logic over the sampled sensors.
    if spec.sensors >= 2:
        alarm_expr = f"S_{m}_0 and (not S_{m}_1)"
        for j in range(2, spec.sensors):
            alarm_expr = f"({alarm_expr}) or S_{m}_{j}"
    elif spec.sensors == 1:
        alarm_expr = f"S_{m}_0"
    else:
        alarm_expr = f"STOP_{m}"
    if spec.with_counter:
        alarm_expr = f"({alarm_expr}) or (CNT_{m} >= 100)"
    lines.append(f"ALR_{m} := {alarm_expr}")

    # Resettable counter on the sampled clock.
    if spec.with_counter:
        reset = f"S_{m}_0" if spec.sensors >= 1 else f"STOP_{m}"
        lines.append(f"CNT_{m} := (0 when {reset}) default (ZCNT_{m} + 1)")
        lines.append(f"ZCNT_{m} := CNT_{m} $ 1 init 0")
        lines.append(f"synchro {{ CNT_{m}, {reset} }}")

    # First-order filter on the sampled measurement.
    if spec.with_filter:
        lines.append(f"FLT_{m} := (V_{m} + ZFLT_{m}) / 2")
        lines.append(f"ZFLT_{m} := FLT_{m} $ 1 init 0")

    # Arithmetic block: floored / and modulo against negative divisors
    # (constant and signal-derived, the divisor never reaching zero), and
    # an xor of two sampled booleans.
    if spec.with_arithmetic:
        lines.append(f"QUO_{m} := (W_{m} - 7) / 3")
        lines.append(f"REM_{m} := (W_{m} + 5) modulo (0 - 3)")
        lines.append(
            f"DEN_{m} := 0 - (((W_{m} modulo 5) * (W_{m} modulo 5)) + 1)"
        )
        lines.append(f"QD_{m} := (W_{m} - 3) / DEN_{m}")
        lines.append(f"RD_{m} := (W_{m} + 2) modulo DEN_{m}")
        lines.append(f"XR_{m} := (W_{m} >= 0) xor STOP_{m}")

    return lines


def generate_control_program(spec: ControlProgramSpec) -> str:
    """Generate the SIGNAL source text of a hierarchical control program."""
    if spec.modules < 1:
        raise ValueError("a control program needs at least one module")

    input_booleans: List[str] = []
    input_integers: List[str] = []
    output_booleans: List[str] = []
    output_integers: List[str] = []
    local_booleans: List[str] = []
    local_integers: List[str] = []
    equations: List[str] = []

    for module in range(spec.modules):
        input_booleans.append(f"START_{module}")
        input_booleans.append(f"STOP_{module}")
        input_booleans.extend(f"S_{module}_{j}" for j in range(spec.sensors))
        if spec.with_filter:
            input_integers.append(f"V_{module}")
        if spec.with_arithmetic:
            input_integers.append(f"W_{module}")
        output_booleans.append(f"ALR_{module}")
        if spec.with_filter:
            output_integers.append(f"FLT_{module}")
        if spec.with_arithmetic:
            output_booleans.append(f"XR_{module}")
            output_integers.extend(
                f"{prefix}_{module}" for prefix in ("QUO", "REM", "QD", "RD")
            )
        local_booleans.extend([f"MODE_{module}", f"NMODE_{module}"])
        if spec.with_counter:
            local_integers.extend([f"CNT_{module}", f"ZCNT_{module}"])
        if spec.with_filter:
            local_integers.append(f"ZFLT_{module}")
        if spec.with_arithmetic:
            local_integers.append(f"DEN_{module}")
        equations.extend(_module_equations(spec, module))

    def declaration_block(booleans: List[str], integers: List[str]) -> List[str]:
        block = []
        if booleans:
            block.append("boolean " + ", ".join(booleans) + ";")
        if integers:
            block.append("integer " + ", ".join(integers) + ";")
        return block

    lines: List[str] = [f"process {spec.name} ="]
    lines.append("  ( ? " + " ".join(declaration_block(input_booleans, input_integers)))
    lines.append("    ! " + " ".join(declaration_block(output_booleans, output_integers)) + " )")
    lines.append("  (| " + "\n   | ".join(equations))
    lines.append("   |)")
    lines.append("  where " + " ".join(declaration_block(local_booleans, local_integers)))
    lines.append("end;")
    return "\n".join(lines)
