"""The seven benchmark programs of Figure 13.

The paper reports, for each application, the number of boolean variables of
its clock system and the cost of three representations.  The original
sources are INRIA-internal; each program is rebuilt here with the
hierarchical control-program generator, sized so that its clock system has a
variable count close to the one reported in the paper (the exact counts
obtained with this reproduction are recorded in EXPERIMENTS.md).

======================  ==================  ============================
program                 paper variables     generator parameters
======================  ==================  ============================
STOPWATCH               1318                20 modules, branching 3
WATCH                   785                 12 modules, branching 3
ALARM                   465                 7 modules, branching 2
CHRONO                  282                 4 modules, branching 2
SUPERVISOR              202                 3 modules, branching 3
PACE_MAKER              96                  2 modules, branching 1
ROBOT                   99                  2 modules, branching 2
======================  ==================  ============================
"""

from __future__ import annotations

from typing import Dict, List

from .generators import (
    ControlProgramSpec,
    FleetSpec,
    fleet_member_modules,
    generate_control_program,
    generate_fleet,
)

__all__ = [
    "BENCHMARK_PROGRAMS",
    "PAPER_FIGURE_13",
    "benchmark_names",
    "benchmark_source",
    "paper_reference",
    "DEFAULT_FLEET_SPEC",
    "fleet_sources",
]


#: Generator parameters per Figure 13 program, ordered as in the paper.
BENCHMARK_PROGRAMS: Dict[str, ControlProgramSpec] = {
    "STOPWATCH": ControlProgramSpec("STOPWATCH", modules=20, branching=3, sensors=3),
    "WATCH": ControlProgramSpec("WATCH", modules=12, branching=3, sensors=3),
    "ALARM": ControlProgramSpec("ALARM", modules=7, branching=2, sensors=3),
    "CHRONO": ControlProgramSpec("CHRONO", modules=4, branching=2, sensors=4),
    "SUPERVISOR": ControlProgramSpec("SUPERVISOR", modules=3, branching=3, sensors=4),
    "PACE_MAKER": ControlProgramSpec(
        "PACE_MAKER", modules=2, branching=1, sensors=1, with_filter=False
    ),
    "ROBOT": ControlProgramSpec("ROBOT", modules=2, branching=2, sensors=1),
}


#: The measurements reported in Figure 13 of the paper (SPARC 10, 64 MB).
#: ``None`` marks the ``unable-cpu`` / ``unable-mem`` entries.
PAPER_FIGURE_13: Dict[str, Dict[str, object]] = {
    "STOPWATCH": {
        "variables": 1318,
        "tbdd_nodes": 61893,
        "tbdd_seconds": 27.07,
        "characteristic": "unable-cpu",
        "characteristic_after": "unable-cpu",
    },
    "WATCH": {
        "variables": 785,
        "tbdd_nodes": 34753,
        "tbdd_seconds": 14.67,
        "characteristic": "unable-cpu",
        "characteristic_after": "unable-cpu",
    },
    "ALARM": {
        "variables": 465,
        "tbdd_nodes": 3428,
        "tbdd_seconds": 2.19,
        "characteristic": "unable-mem",
        "characteristic_after": "unable-cpu",
    },
    "CHRONO": {
        "variables": 282,
        "tbdd_nodes": 1548,
        "tbdd_seconds": 0.92,
        "characteristic": "unable-mem",
        "characteristic_after": (422975, 409.09),
    },
    "SUPERVISOR": {
        "variables": 202,
        "tbdd_nodes": 425,
        "tbdd_seconds": 0.45,
        "characteristic": "unable-cpu",
        "characteristic_after": (226472, 146.32),
    },
    "PACE_MAKER": {
        "variables": 96,
        "tbdd_nodes": 50,
        "tbdd_seconds": 0.10,
        "characteristic": (53610, 160.50),
        "characteristic_after": (582, 0.36),
    },
    "ROBOT": {
        "variables": 99,
        "tbdd_nodes": 36,
        "tbdd_seconds": 0.27,
        "characteristic": "unable-cpu",
        "characteristic_after": (415, 0.31),
    },
}


def benchmark_names() -> List[str]:
    """The Figure 13 program names, largest first (paper order)."""
    return list(BENCHMARK_PROGRAMS.keys())


def benchmark_source(name: str) -> str:
    """The SIGNAL source of one Figure 13 program."""
    try:
        spec = BENCHMARK_PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark program {name!r}; known: {', '.join(BENCHMARK_PROGRAMS)}"
        ) from None
    return generate_control_program(spec)


def paper_reference(name: str) -> Dict[str, object]:
    """The Figure 13 numbers reported by the paper for one program."""
    return dict(PAPER_FIGURE_13[name])


#: The reference shared-module fleet used by the modular-compilation tests
#: and benchmarks: every member embeds the same 2-module core plus one
#: member-specific module, so a modular compile of the whole fleet performs
#: far fewer unit compiles than ``programs * units_per_program``.
DEFAULT_FLEET_SPEC = FleetSpec(
    name="FLEET",
    programs=4,
    library_size=6,
    units_per_program=3,
    shared_units=2,
    seed=7,
)


def fleet_sources(spec: FleetSpec = DEFAULT_FLEET_SPEC) -> List[str]:
    """The member sources of a shared-module fleet (default: the reference
    fleet).  ``fleet_member_modules(spec)`` gives the per-member library
    indices, the accounting ground truth for unit-cache tests."""
    return generate_fleet(spec)
