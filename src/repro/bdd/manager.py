"""Reduced Ordered Binary Decision Diagrams.

The implementation follows the classical design of Bryant's package and of
Brace/Rudell/Bryant's ``ite``-based packages:

* a *unique table* guarantees that structurally identical nodes are shared,
  which makes equality of boolean functions a pointer comparison;
* a *computed cache* memoizes ``ite`` calls;
* complement edges are **not** used -- negation is an ordinary ``ite`` --
  to keep the code straightforward and easy to audit.

Variables are identified by integer *levels*: smaller level means closer to
the root.  The :class:`BDDManager` hands out levels in declaration order and
keeps a name registry so clock encodings can declare meaningful variables
such as ``p_X`` (presence of signal X) or ``v_C`` (value of condition C).

Node budgets
------------

The manager accepts an optional ``max_nodes`` budget.  When the unique table
grows beyond the budget a :class:`~repro.errors.ResourceLimitExceeded` is
raised.  The Figure 13 benchmark uses this to reproduce the paper's
``unable-mem`` outcomes for the characteristic-function representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ResourceLimitExceeded

__all__ = ["BDDNode", "BDD", "BDDManager", "ScopedBDDManager"]


@dataclass(frozen=True)
class BDDNode:
    """An internal decision node: ``if var(level) then high else low``."""

    level: int
    low: int
    high: int


class BDD:
    """A handle on a boolean function owned by a :class:`BDDManager`.

    Handles compare equal iff they denote the same function (canonicity of
    ROBDDs) and support the usual operator syntax::

        f & g, f | g, ~f, f ^ g, f - g (difference), f >> g (implication)
    """

    __slots__ = ("manager", "ref")

    def __init__(self, manager: "BDDManager", ref: int):
        self.manager = manager
        self.ref = ref

    # -- comparisons ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BDD):
            return NotImplemented
        return self.manager is other.manager and self.ref == other.ref

    def __hash__(self) -> int:
        return hash((id(self.manager), self.ref))

    # -- boolean structure ----------------------------------------------
    @property
    def is_true(self) -> bool:
        return self.ref == self.manager.TRUE

    @property
    def is_false(self) -> bool:
        return self.ref == self.manager.FALSE

    @property
    def is_constant(self) -> bool:
        return self.is_true or self.is_false

    # -- operators -------------------------------------------------------
    def _coerce(self, other: object) -> "BDD":
        if isinstance(other, BDD):
            if other.manager is not self.manager:
                raise ValueError("cannot mix BDDs from different managers")
            return other
        if other is True:
            return self.manager.true
        if other is False:
            return self.manager.false
        raise TypeError(f"cannot combine BDD with {other!r}")

    def __and__(self, other: object) -> "BDD":
        return self.manager.apply_and(self, self._coerce(other))

    def __or__(self, other: object) -> "BDD":
        return self.manager.apply_or(self, self._coerce(other))

    def __xor__(self, other: object) -> "BDD":
        return self.manager.apply_xor(self, self._coerce(other))

    def __invert__(self) -> "BDD":
        return self.manager.apply_not(self)

    def __sub__(self, other: object) -> "BDD":
        return self & ~self._coerce(other)

    def __rshift__(self, other: object) -> "BDD":
        """Implication ``self -> other``."""
        return ~self | self._coerce(other)

    def equiv(self, other: "BDD") -> "BDD":
        """Bi-implication ``self <-> other`` as a BDD."""
        return ~(self ^ self._coerce(other))

    def implies(self, other: "BDD") -> bool:
        """Whether ``self -> other`` is a tautology (set inclusion)."""
        return (self & ~self._coerce(other)).is_false

    # -- queries -----------------------------------------------------------
    def node_count(self) -> int:
        """Number of decision nodes reachable from this function (terminals excluded)."""
        return self.manager.node_count(self)

    def support(self) -> Set[int]:
        """Set of variable levels the function depends on."""
        return self.manager.support(self)

    def restrict(self, assignment: Dict[int, bool]) -> "BDD":
        return self.manager.restrict(self, assignment)

    def exists(self, levels: Iterable[int]) -> "BDD":
        return self.manager.exists(self, levels)

    def forall(self, levels: Iterable[int]) -> "BDD":
        return self.manager.forall(self, levels)

    def satisfy_one(self) -> Optional[Dict[int, bool]]:
        return self.manager.satisfy_one(self)

    def satisfy_count(self, nvars: Optional[int] = None) -> int:
        return self.manager.satisfy_count(self, nvars)

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        return self.manager.evaluate(self, assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_true:
            return "BDD(TRUE)"
        if self.is_false:
            return "BDD(FALSE)"
        return f"BDD(ref={self.ref}, nodes={self.node_count()})"


class BDDManager:
    """Owner of the unique table, computed cache and variable registry."""

    FALSE = 0
    TRUE = 1

    def __init__(self, max_nodes: Optional[int] = None, use_computed_cache: bool = True):
        # Node storage: index -> (level, low, high).  Indices 0 and 1 are the
        # terminal nodes and use a sentinel level larger than any variable.
        self._nodes: List[Tuple[int, int, int]] = [
            (self._TERMINAL_LEVEL, 0, 0),
            (self._TERMINAL_LEVEL, 1, 1),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_names: List[str] = []
        self._name_to_level: Dict[str, int] = {}
        self.max_nodes = max_nodes
        #: memoize ``ite`` calls; disabling this is only useful for the
        #: cache-effect ablation benchmark
        self.use_computed_cache = use_computed_cache

    _TERMINAL_LEVEL = 1 << 30

    # -- variable registry ---------------------------------------------------
    def declare(self, name: str) -> BDD:
        """Declare (or fetch) a variable by name and return it as a function."""
        if name in self._name_to_level:
            return self.var(self._name_to_level[name])
        level = len(self._var_names)
        self._var_names.append(name)
        self._name_to_level[name] = level
        return self.var(level)

    def level_of(self, name: str) -> int:
        return self._name_to_level[name]

    def name_of(self, level: int) -> str:
        return self._var_names[level]

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    @property
    def num_nodes(self) -> int:
        """Total number of decision nodes ever created (terminals excluded)."""
        return len(self._nodes) - 2

    def statistics(self) -> Dict[str, int]:
        """Size counters for monitoring and pool-hygiene decisions.

        The unique table and the variable registry are append-only -- nodes
        interned by dead programs are never reclaimed individually.  A
        long-lived owner (the compilation service) therefore watches
        ``nodes`` against a watermark and *recycles* the whole manager when
        the budget is exceeded, rather than garbage-collecting inside it.
        """
        return {
            "nodes": self.num_nodes,
            "vars": self.num_vars,
            "unique_table_entries": len(self._unique),
            "ite_cache_entries": len(self._ite_cache),
        }

    def fresh_like(self) -> "BDDManager":
        """A new empty manager carrying this manager's configuration.

        This is the recycling primitive of the service's pool hygiene: the
        replacement manager must inherit the node budget and computed-cache
        setting, never the (grown) unique table.
        """
        return BDDManager(
            max_nodes=self.max_nodes, use_computed_cache=self.use_computed_cache
        )

    # -- terminals and variables ----------------------------------------------
    @property
    def true(self) -> BDD:
        return BDD(self, self.TRUE)

    @property
    def false(self) -> BDD:
        return BDD(self, self.FALSE)

    def var(self, level: int) -> BDD:
        if level < 0 or level >= len(self._var_names):
            raise ValueError(f"undeclared BDD variable level {level}")
        return BDD(self, self._mk(level, self.FALSE, self.TRUE))

    def nvar(self, level: int) -> BDD:
        return BDD(self, self._mk(level, self.TRUE, self.FALSE))

    # -- node construction ------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if self.max_nodes is not None and self.num_nodes >= self.max_nodes:
            raise ResourceLimitExceeded(
                f"BDD node budget of {self.max_nodes} nodes exceeded", kind="mem"
            )
        index = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = index
        return index

    def _level(self, ref: int) -> int:
        return self._nodes[ref][0]

    def _low(self, ref: int) -> int:
        return self._nodes[ref][1]

    def _high(self, ref: int) -> int:
        return self._nodes[ref][2]

    # -- ite kernel ----------------------------------------------------------------
    def _ite(self, f: int, g: int, h: int) -> int:
        # Terminal cases.
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        if self.use_computed_cache:
            cached = self._ite_cache.get(key)
            if cached is not None:
                return cached
        level = min(self._level(f), self._level(g), self._level(h))

        def cofactor(ref: int, positive: bool) -> int:
            if self._level(ref) != level:
                return ref
            return self._high(ref) if positive else self._low(ref)

        high = self._ite(cofactor(f, True), cofactor(g, True), cofactor(h, True))
        low = self._ite(cofactor(f, False), cofactor(g, False), cofactor(h, False))
        result = self._mk(level, low, high)
        if self.use_computed_cache:
            self._ite_cache[key] = result
        return result

    def ite(self, f: BDD, g: BDD, h: BDD) -> BDD:
        return BDD(self, self._ite(f.ref, g.ref, h.ref))

    # -- boolean connectives ---------------------------------------------------------
    def apply_and(self, f: BDD, g: BDD) -> BDD:
        return BDD(self, self._ite(f.ref, g.ref, self.FALSE))

    def apply_or(self, f: BDD, g: BDD) -> BDD:
        return BDD(self, self._ite(f.ref, self.TRUE, g.ref))

    def apply_not(self, f: BDD) -> BDD:
        return BDD(self, self._ite(f.ref, self.FALSE, self.TRUE))

    def apply_xor(self, f: BDD, g: BDD) -> BDD:
        not_g = self._ite(g.ref, self.FALSE, self.TRUE)
        return BDD(self, self._ite(f.ref, not_g, g.ref))

    def conjoin(self, functions: Sequence[BDD]) -> BDD:
        result = self.true
        for f in functions:
            result = result & f
        return result

    def disjoin(self, functions: Sequence[BDD]) -> BDD:
        result = self.false
        for f in functions:
            result = result | f
        return result

    # -- restriction and quantification ------------------------------------------------
    def restrict(self, f: BDD, assignment: Dict[int, bool]) -> BDD:
        def walk(ref: int, cache: Dict[int, int]) -> int:
            if ref <= self.TRUE:
                return ref
            cached = cache.get(ref)
            if cached is not None:
                return cached
            level, low, high = self._nodes[ref]
            if level in assignment:
                result = walk(high if assignment[level] else low, cache)
            else:
                result = self._mk(level, walk(low, cache), walk(high, cache))
            cache[ref] = result
            return result

        return BDD(self, walk(f.ref, {}))

    def compose(self, f: BDD, level: int, g: BDD) -> BDD:
        """Substitute function ``g`` for variable ``level`` inside ``f``."""
        f_high = self.restrict(f, {level: True})
        f_low = self.restrict(f, {level: False})
        return self.ite(g, f_high, f_low)

    def exists(self, f: BDD, levels: Iterable[int]) -> BDD:
        result = f
        for level in sorted(set(levels), reverse=True):
            high = self.restrict(result, {level: True})
            low = self.restrict(result, {level: False})
            result = high | low
        return result

    def forall(self, f: BDD, levels: Iterable[int]) -> BDD:
        result = f
        for level in sorted(set(levels), reverse=True):
            high = self.restrict(result, {level: True})
            low = self.restrict(result, {level: False})
            result = high & low
        return result

    # -- queries ---------------------------------------------------------------------------
    def node_count(self, f: BDD) -> int:
        seen: Set[int] = set()
        stack = [f.ref]
        while stack:
            ref = stack.pop()
            if ref <= self.TRUE or ref in seen:
                continue
            seen.add(ref)
            stack.append(self._low(ref))
            stack.append(self._high(ref))
        return len(seen)

    def support(self, f: BDD) -> Set[int]:
        levels: Set[int] = set()
        seen: Set[int] = set()
        stack = [f.ref]
        while stack:
            ref = stack.pop()
            if ref <= self.TRUE or ref in seen:
                continue
            seen.add(ref)
            levels.add(self._level(ref))
            stack.append(self._low(ref))
            stack.append(self._high(ref))
        return levels

    def evaluate(self, f: BDD, assignment: Dict[int, bool]) -> bool:
        ref = f.ref
        while ref > self.TRUE:
            level, low, high = self._nodes[ref]
            ref = high if assignment.get(level, False) else low
        return ref == self.TRUE

    def satisfy_one(self, f: BDD) -> Optional[Dict[int, bool]]:
        if f.ref == self.FALSE:
            return None
        assignment: Dict[int, bool] = {}
        ref = f.ref
        while ref > self.TRUE:
            level, low, high = self._nodes[ref]
            if high != self.FALSE:
                assignment[level] = True
                ref = high
            else:
                assignment[level] = False
                ref = low
        return assignment

    def satisfy_count(self, f: BDD, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        total_vars = self.num_vars if nvars is None else nvars

        cache: Dict[int, int] = {}

        def count(ref: int) -> int:
            # Returns the count over the variables strictly below the node's level.
            if ref == self.FALSE:
                return 0
            if ref == self.TRUE:
                return 1
            cached = cache.get(ref)
            if cached is not None:
                return cached
            level, low, high = self._nodes[ref]
            low_level = self._level(low) if low > self.TRUE else total_vars
            high_level = self._level(high) if high > self.TRUE else total_vars
            result = count(low) * (1 << (low_level - level - 1)) + count(high) * (
                1 << (high_level - level - 1)
            )
            cache[ref] = result
            return result

        root_level = self._level(f.ref) if f.ref > self.TRUE else total_vars
        return count(f.ref) * (1 << root_level)

    # -- iteration over the structure (used by emitters/tests) -----------------------------------
    def iter_nodes(self, f: BDD) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(ref, level, low, high)`` for every node reachable from ``f``."""
        seen: Set[int] = set()
        stack = [f.ref]
        while stack:
            ref = stack.pop()
            if ref <= self.TRUE or ref in seen:
                continue
            seen.add(ref)
            level, low, high = self._nodes[ref]
            yield ref, level, low, high
            stack.append(low)
            stack.append(high)

    def clear_caches(self) -> None:
        """Drop the computed cache (the unique table is kept)."""
        self._ite_cache.clear()

    # -- namespacing -----------------------------------------------------------
    def scoped(self, namespace: str) -> "ScopedBDDManager":
        """A view of this manager whose declared variables live in ``namespace``."""
        return ScopedBDDManager(self, namespace)


class ScopedBDDManager:
    """A namespaced view of a shared :class:`BDDManager`.

    The compilation service keeps one long-lived manager and hands each
    program a scope: every ``declare`` is transparently prefixed with the
    scope's namespace, so two unrelated programs that both declare ``v_X``
    receive *different* BDD variables, while recompiling the same program in
    the same scope reuses its variables (and therefore the manager's unique
    table and computed cache).  All BDD handles remain bound to the base
    manager, so functions built through different scopes *of the same base
    manager* can be combined and compared freely (functions from different
    base managers still cannot be mixed).
    """

    def __init__(self, base: BDDManager, namespace: str):
        if isinstance(base, ScopedBDDManager):
            base = base.base
        self.base = base
        self.namespace = namespace
        #: persistent value-encoding cache for this scope (see
        #: :class:`repro.clocks.encoding.ValueEncoder`): program fingerprint
        #: -> signal name -> ``(value BDD, is_opaque)``.
        self.encoding_cache: Dict[str, Dict[str, Tuple[BDD, bool]]] = {}

    def qualify(self, name: str) -> str:
        return f"{self.namespace}::{name}"

    def declare(self, name: str) -> BDD:
        return self.base.declare(self.qualify(name))

    def level_of(self, name: str) -> int:
        return self.base.level_of(self.qualify(name))

    def name_of(self, level: int) -> str:
        name = self.base.name_of(level)
        prefix = f"{self.namespace}::"
        return name[len(prefix):] if name.startswith(prefix) else name

    #: attributes stored on the wrapper itself; everything else belongs to base
    _OWN_ATTRIBUTES = frozenset({"base", "namespace", "encoding_cache"})

    def __getattr__(self, attribute: str):
        # Everything else (true/false/ite/apply_*/iter_nodes/num_nodes/...)
        # is the shared base manager's business.
        return getattr(self.base, attribute)

    def __setattr__(self, attribute: str, value) -> None:
        # Writes to manager settings (e.g. ``max_nodes``) must configure the
        # shared base manager, not silently shadow it on the wrapper.
        if attribute in self._OWN_ATTRIBUTES:
            object.__setattr__(self, attribute, value)
        else:
            setattr(self.base, attribute, value)
