"""A from-scratch Reduced Ordered Binary Decision Diagram (ROBDD) package.

The 1995 SIGNAL compiler relied on the UC Berkeley BDD package to give
clock formulas a canonical form and to build the characteristic-function
baseline of Figure 13.  This package is the pure-Python stand-in: it
provides a :class:`BDDManager` with a unique table, a computed cache, the
classical ``ite`` kernel, boolean connectives, quantification, restriction
and structural statistics (node counts) used throughout the clock calculus
and the benchmarks.
"""

from .manager import BDD, BDDManager, BDDNode, ScopedBDDManager

__all__ = ["BDD", "BDDManager", "BDDNode", "ScopedBDDManager"]
