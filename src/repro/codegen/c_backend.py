"""C source emission from the step IR.

Two C emitters share the expression lowering:

* :func:`generate_c_source` mirrors the sequential code of Section 2.6 of
  the paper (``if present(k) then ... endif``): one C function
  ``<process>_step`` performing one reaction, guarded reads/writes for
  every signal through ``extern`` environment hooks, and static variables
  for the delay registers.  It makes the nesting difference between the
  hierarchical and the flat styles (Figure 9) directly visible and is the
  human-readable artifact of ``--emit c``.
* :func:`generate_c_shared_source` is the **reentrant, columnar** variant
  executed by :mod:`repro.runtime.mass`: the delay registers live in an
  explicit ``<process>_state`` struct (no ``static`` locals), and a
  ``<process>_step_many`` entry point performs one reaction for *many*
  instances per call over struct-of-arrays columns (one value array per
  input/output signal, one presence byte-array per output, one byte-array
  per free clock).  Compiled with ``cc -shared`` and loaded through
  ``ctypes``, it is the execution backend for mass simulation.

Arithmetic matches the reference semantics exactly: SIGNAL integer ``/``
and ``modulo`` are **floored** division and modulo (Python ``//``/``%``),
not C's truncate-toward-zero ``/``/``%`` -- the emitters lower them to
helper functions so that negative operands agree with the reference
interpreter and the Python backend.  ``xor`` coerces both operands through
``!= 0`` so non-0/1 integers behave like Python's ``bool(...) != bool(...)``.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Optional, Set, Tuple, Union

from ..errors import CodeGenerationError
from ..lang.types import SignalType
from .ir import (
    Binary,
    ClockChoice,
    ComputeValue,
    EmitOutput,
    FlagAnd,
    FlagAndNot,
    FlagExpr,
    FlagOr,
    FlagRef,
    Guard,
    Lit,
    ReadInput,
    ReadRegister,
    SetFlagFormula,
    SetFlagPartition,
    SetFlagRoot,
    SigRef,
    StepIR,
    Stmt,
    Unary,
    UpdateRegister,
    ValueExpr,
)

__all__ = [
    "generate_c_source",
    "generate_c_shared_source",
    "render_c_module",
    "render_c_shared_module",
    "emit_statement_lines",
    "emit_shared_statement_lines",
    "scan_statement_arithmetic",
    "scan_statement_io",
    "nonfinite_initial",
]


_C_TYPES = {
    SignalType.EVENT: "int",
    SignalType.BOOLEAN: "int",
    SignalType.INTEGER: "long",
    SignalType.REAL: "double",
}

#: operators lowered 1:1 to a C infix operator; ``/``, ``modulo`` and
#: ``xor`` are handled specially in :func:`_c_value` (see module docstring)
_C_BINARY = {
    "+": "+",
    "-": "-",
    "*": "*",
    "and": "&&",
    "or": "||",
    "=": "==",
    "/=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}

#: decimal literals beyond this magnitude need an ``L`` suffix to be safe
#: on ILP32 targets where plain ``int`` constants are 32-bit
_INT_LITERAL_MAX = 2**31 - 1

#: helper functions the expression lowering may reference; emitted into the
#: translation unit only when actually used (``-Wall``-clean output)
_HELPER_SOURCES = {
    "repro_floor_div": [
        "static long repro_floor_div(long a, long b)",
        "{",
        "    long q = a / b;",
        "    if ((a % b) != 0 && ((a < 0) != (b < 0))) {",
        "        q -= 1;",
        "    }",
        "    return q;",
        "}",
    ],
    "repro_floor_mod": [
        "static long repro_floor_mod(long a, long b)",
        "{",
        "    long r = a % b;",
        "    if (r != 0 && ((r < 0) != (b < 0))) {",
        "        r += b;",
        "    }",
        "    return r;",
        "}",
    ],
    "repro_floor_fmod": [
        "static double repro_floor_fmod(double a, double b)",
        "{",
        "    double r = fmod(a, b);",
        "    if (r != 0.0 && ((r < 0.0) != (b < 0.0))) {",
        "        r += b;",
        "    }",
        "    return r;",
        "}",
    ],
}


def _c_literal(value: Union[bool, int, float]) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        # Beyond the guaranteed ``int`` range a bare decimal constant is
        # implementation-hazardous on ILP32; the ``L`` suffix pins it to the
        # ``long`` the INTEGER signals are declared as.
        if value > _INT_LITERAL_MAX or value < -_INT_LITERAL_MAX - 1:
            return f"{value}L"
        return repr(value)
    # Python's repr of non-finite floats (``inf``/``nan``) is not C; use the
    # <math.h> macros.  Finite floats repr as valid C double constants.
    if math.isinf(value):
        return "INFINITY" if value > 0 else "-INFINITY"
    if math.isnan(value):
        return "NAN"
    return repr(value)


def _c_value(expression: ValueExpr) -> str:
    if isinstance(expression, SigRef):
        return expression.signal
    if isinstance(expression, Lit):
        return _c_literal(expression.value)
    if isinstance(expression, Unary):
        if expression.operator == "not":
            return f"(!{_c_value(expression.operand)})"
        return f"(-{_c_value(expression.operand)})"
    if isinstance(expression, Binary):
        left = _c_value(expression.left)
        right = _c_value(expression.right)
        operator = expression.operator
        if operator == "/":
            # SIGNAL integer division is floored (Python ``//``), which
            # differs from C's truncation whenever exactly one operand is
            # negative; real division is true division in both languages.
            if expression.integer:
                return f"repro_floor_div({left}, {right})"
            return f"({left} / {right})"
        if operator == "modulo":
            # Floored modulo: the result takes the sign of the divisor,
            # matching Python ``%`` on both integers and reals.
            if expression.integer:
                return f"repro_floor_mod({left}, {right})"
            return f"repro_floor_fmod({left}, {right})"
        if operator == "xor":
            # Coerce through ``!= 0`` so values outside {0, 1} behave like
            # the Python backend's ``bool(a) != bool(b)``.
            return f"(({left} != 0) != ({right} != 0))"
        c_operator = _C_BINARY.get(operator)
        if c_operator is None:
            raise CodeGenerationError(f"unsupported operator {operator!r}")
        return f"({left} {c_operator} {right})"
    if isinstance(expression, ClockChoice):
        return (
            f"(h{expression.class_id} ? {_c_value(expression.then_value)}"
            f" : {_c_value(expression.else_value)})"
        )
    raise CodeGenerationError(f"unsupported value expression {expression!r}")


def _c_flag(expression: FlagExpr) -> str:
    if isinstance(expression, FlagRef):
        return f"h{expression.class_id}"
    if isinstance(expression, FlagAnd):
        return f"({_c_flag(expression.left)} && {_c_flag(expression.right)})"
    if isinstance(expression, FlagOr):
        return f"({_c_flag(expression.left)} || {_c_flag(expression.right)})"
    if isinstance(expression, FlagAndNot):
        return f"({_c_flag(expression.left)} && !{_c_flag(expression.right)})"
    raise CodeGenerationError(f"unsupported flag expression {expression!r}")


# ---------------------------------------------------------------------------
# Helper-usage scan
# ---------------------------------------------------------------------------


def _scan_value(expression: ValueExpr, helpers: Set[str], literals: List[object]) -> None:
    if isinstance(expression, Lit):
        literals.append(expression.value)
    elif isinstance(expression, Unary):
        _scan_value(expression.operand, helpers, literals)
    elif isinstance(expression, Binary):
        if expression.operator == "/" and expression.integer:
            helpers.add("repro_floor_div")
        elif expression.operator == "modulo":
            helpers.add("repro_floor_mod" if expression.integer else "repro_floor_fmod")
        _scan_value(expression.left, helpers, literals)
        _scan_value(expression.right, helpers, literals)
    elif isinstance(expression, ClockChoice):
        _scan_value(expression.then_value, helpers, literals)
        _scan_value(expression.else_value, helpers, literals)


def _scan_statements(
    statements: Iterable[Stmt], helpers: Set[str], literals: List[object]
) -> None:
    for statement in statements:
        if isinstance(statement, ComputeValue):
            _scan_value(statement.expression, helpers, literals)
        elif isinstance(statement, UpdateRegister):
            _scan_value(statement.source, helpers, literals)
        elif isinstance(statement, Guard):
            _scan_statements(statement.body, helpers, literals)


def _needed_helpers(ir: StepIR) -> Set[str]:
    """Names of the arithmetic helpers the IR's expressions reference."""
    helpers: Set[str] = set()
    literals: List[object] = []
    _scan_statements(ir.statements, helpers, literals)
    return helpers


def scan_statement_arithmetic(statements: Iterable[Stmt]) -> Tuple[Set[str], bool]:
    """``(helper names, any non-finite float literal)`` for a statement list.

    The per-unit emit cache stores this summary so the linker can decide,
    without re-walking any IR, which arithmetic helpers the merged
    translation unit needs and whether ``<math.h>`` must be included for
    ``INFINITY``/``NAN`` literals (register initials are checked separately
    from the register metadata).
    """
    helpers: Set[str] = set()
    literals: List[object] = []
    _scan_statements(statements, helpers, literals)
    nonfinite = any(
        isinstance(value, float) and not math.isfinite(value) for value in literals
    )
    return helpers, nonfinite


def nonfinite_initial(value: object) -> bool:
    """Whether a register initial needs the ``<math.h>`` non-finite macros."""
    return isinstance(value, float) and not math.isfinite(value)


def scan_statement_io(statements: Iterable[Stmt]) -> Tuple[List[str], List[str], bool]:
    """``(sorted reads, sorted writes, uses_clock_input)`` of a statement list."""
    reads: Set[str] = set()
    writes: Set[str] = set()
    uses_clock_input = False

    def visit(statement: Stmt) -> None:
        nonlocal uses_clock_input
        if isinstance(statement, SetFlagRoot):
            uses_clock_input = True
        elif isinstance(statement, ReadInput):
            reads.add(statement.signal)
        elif isinstance(statement, EmitOutput):
            writes.add(statement.signal)
        elif isinstance(statement, Guard):
            for inner in statement.body:
                visit(inner)

    for statement in statements:
        visit(statement)
    return sorted(reads), sorted(writes), uses_clock_input


def _needs_math_header(ir: StepIR, helpers: Set[str]) -> bool:
    """Whether the translation unit references anything from ``<math.h>``."""
    if "repro_floor_fmod" in helpers:
        return True
    scan_helpers: Set[str] = set()
    literals: List[object] = [register.initial for register in ir.registers]
    _scan_statements(ir.statements, scan_helpers, literals)
    return any(
        isinstance(value, float) and not math.isfinite(value) for value in literals
    )


def _helper_lines(helpers: Set[str]) -> List[str]:
    lines: List[str] = []
    for name in sorted(helpers):
        lines.extend(_HELPER_SOURCES[name])
        lines.append("")
    return lines


# ---------------------------------------------------------------------------
# Classic emitter: one static-state step over extern environment hooks
# ---------------------------------------------------------------------------


def _emit(
    statement: Stmt,
    lines: List[str],
    indent: int,
    root_line: Optional[Callable[[SetFlagRoot, str], str]] = None,
) -> None:
    pad = "    " * indent
    if isinstance(statement, SetFlagRoot):
        if root_line is not None:
            lines.append(root_line(statement, pad))
            return
        lines.append(f"{pad}h{statement.class_id} = read_clock_input(\"{statement.input_key}\");")
    elif isinstance(statement, SetFlagPartition):
        test = statement.condition if statement.polarity else f"!{statement.condition}"
        if statement.parent_id is None:
            lines.append(f"{pad}h{statement.class_id} = {test};")
        else:
            lines.append(f"{pad}h{statement.class_id} = h{statement.parent_id} && {test};")
    elif isinstance(statement, SetFlagFormula):
        lines.append(f"{pad}h{statement.class_id} = {_c_flag(statement.formula)};")
    elif isinstance(statement, ReadInput):
        lines.append(f"{pad}{statement.signal} = read_input_{statement.signal}();")
    elif isinstance(statement, ReadRegister):
        lines.append(f"{pad}{statement.signal} = {statement.register};")
    elif isinstance(statement, ComputeValue):
        lines.append(f"{pad}{statement.signal} = {_c_value(statement.expression)};")
    elif isinstance(statement, EmitOutput):
        lines.append(f"{pad}write_output_{statement.signal}({statement.signal});")
    elif isinstance(statement, UpdateRegister):
        lines.append(f"{pad}{statement.register} = {_c_value(statement.source)};")
    elif isinstance(statement, Guard):
        lines.append(f"{pad}if (h{statement.class_id}) {{")
        for inner in statement.body:
            _emit(inner, lines, indent + 1, root_line)
        lines.append(f"{pad}}}")
    else:  # pragma: no cover - exhaustive over statement kinds
        raise CodeGenerationError(f"unsupported statement {statement!r}")


def emit_statement_lines(
    statements: Iterable[Stmt],
    indent: int = 1,
    root_line: Optional[Callable[[SetFlagRoot, str], str]] = None,
) -> List[str]:
    """The classic emitter's statement body as a list of source lines.

    ``root_line`` substitutes for ``SetFlagRoot`` emission (link-time
    placeholders in the per-unit cache, see the python backend).
    """
    lines: List[str] = []
    for statement in statements:
        _emit(statement, lines, indent, root_line)
    return lines


def io_prototypes(
    reads: List[str], writes: List[str], uses_clock_input: bool, types
) -> List[str]:
    """Extern prototypes for the environment hooks the step function calls.

    With these declarations the generated file compiles cleanly as a
    translation unit (``cc -c``); the environment supplies the definitions
    at link time, exactly like the original compiler's runtime library.
    """
    prototypes: List[str] = []
    if uses_clock_input:
        prototypes.append("extern int read_clock_input(const char *name);")
    for signal in sorted(reads):
        c_type = _C_TYPES[types[signal]]
        prototypes.append(f"extern {c_type} read_input_{signal}(void);")
    for signal in sorted(writes):
        c_type = _C_TYPES[types[signal]]
        prototypes.append(f"extern void write_output_{signal}({c_type} value);")
    return prototypes


def _io_prototypes(ir: StepIR) -> List[str]:
    reads, writes, uses_clock_input = scan_statement_io(ir.statements)
    return io_prototypes(reads, writes, uses_clock_input, ir.types)


def render_c_module(
    name: str,
    style_value: str,
    needs_math: bool,
    prototypes: List[str],
    helpers: Set[str],
    register_lines: List[str],
    flag_ids: List[int],
    signal_declarations: List[str],
    body_lines: List[str],
) -> str:
    """Frame a statement body as the full classic C translation unit.

    Shared by :func:`generate_c_source` and the linker's incremental path
    (concatenated per-unit bodies) so both produce byte-identical output.
    ``signal_declarations`` may arrive in any order; the frame sorts them,
    exactly like whole-IR emission always has.
    """
    lines: List[str] = []
    lines.append(f"/* Generated by the SIGNAL reproduction compiler -- process {name} */")
    lines.append(f"/* style: {style_value} */")
    lines.append("#include <stdbool.h>")
    if needs_math:
        lines.append("#include <math.h>")
    lines.append("")
    if prototypes:
        lines.extend(prototypes)
        lines.append("")
    lines.extend(_helper_lines(helpers))

    lines.extend(register_lines)
    if register_lines:
        lines.append("")

    lines.append(f"void {name}_step(void)")
    lines.append("{")
    for class_id in flag_ids:
        lines.append(f"    bool h{class_id} = false;")
    lines.extend(sorted(signal_declarations))
    lines.append("")
    lines.extend(body_lines)
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


def generate_c_source(ir: StepIR) -> str:
    """Render the step IR as a self-contained C-like translation unit."""
    helpers = _needed_helpers(ir)
    register_lines = [
        f"static {_C_TYPES[register.type]} {register.register} = "
        f"{_c_literal(register.initial)};"
        for register in ir.registers
    ]
    hierarchy = ir.schedule.hierarchy
    flag_ids = sorted(c.id for c in hierarchy.classes if not c.is_null)
    signal_declarations = [
        f"    {_C_TYPES[ir.types[signal]]} {signal};"
        for signal in ir.schedule.signal_class
    ]
    return render_c_module(
        ir.name,
        ir.style.value,
        _needs_math_header(ir, helpers),
        _io_prototypes(ir),
        helpers,
        register_lines,
        flag_ids,
        signal_declarations,
        emit_statement_lines(ir.statements, indent=1),
    )


# ---------------------------------------------------------------------------
# Reentrant columnar emitter: explicit state struct + step_many entry point
# ---------------------------------------------------------------------------
#
# ABI contract with repro.runtime.mass (all orders are taken verbatim from
# the IR metadata that also persists in artifact records, so a record alone
# suffices to drive the library):
#
#   typedef struct { <one member per delay register, IR order> } <name>_state;
#   long <name>_state_bytes(void);             /* sizeof the state struct  */
#   void <name>_init(<name>_state *, long n);  /* reset registers of n     */
#   void <name>_step_many(
#       <name>_state *states, long n,
#       const unsigned char *roots,            /* root-major: [r*n + i];   */
#                                              /* NULL when no free clock  */
#       const <ctype> *in_<signal>, ...        /* one per input, IR order  */
#       <ctype> *out_<signal>,                 /* per output, IR order ... */
#       unsigned char *out_<signal>_present,   /* ... value + presence     */
#       ...);
#
# Presence bytes are written 0 at the top of every instance's reaction and
# set to 1 by the guarded emit -- absent values are explicit per tick, the
# value slot of an absent output is left untouched (garbage by contract).


def _emit_shared(
    statement: Stmt,
    lines: List[str],
    indent: int,
    root_index: dict,
    root_line: Optional[Callable[[SetFlagRoot, str], str]] = None,
) -> None:
    pad = "    " * indent
    if isinstance(statement, SetFlagRoot):
        if root_line is not None:
            lines.append(root_line(statement, pad))
            return
        position = root_index[statement.class_id]
        lines.append(
            f"{pad}h{statement.class_id} = "
            f"repro_roots[{position} * repro_n + repro_i] != 0;"
        )
    elif isinstance(statement, SetFlagPartition):
        test = statement.condition if statement.polarity else f"!{statement.condition}"
        if statement.parent_id is None:
            lines.append(f"{pad}h{statement.class_id} = {test};")
        else:
            lines.append(f"{pad}h{statement.class_id} = h{statement.parent_id} && {test};")
    elif isinstance(statement, SetFlagFormula):
        lines.append(f"{pad}h{statement.class_id} = {_c_flag(statement.formula)};")
    elif isinstance(statement, ReadInput):
        lines.append(f"{pad}{statement.signal} = in_{statement.signal}[repro_i];")
    elif isinstance(statement, ReadRegister):
        lines.append(f"{pad}{statement.signal} = repro_self->{statement.register};")
    elif isinstance(statement, ComputeValue):
        lines.append(f"{pad}{statement.signal} = {_c_value(statement.expression)};")
    elif isinstance(statement, EmitOutput):
        lines.append(f"{pad}out_{statement.signal}[repro_i] = {statement.signal};")
        lines.append(f"{pad}out_{statement.signal}_present[repro_i] = 1;")
    elif isinstance(statement, UpdateRegister):
        lines.append(
            f"{pad}repro_self->{statement.register} = {_c_value(statement.source)};"
        )
    elif isinstance(statement, Guard):
        lines.append(f"{pad}if (h{statement.class_id}) {{")
        for inner in statement.body:
            _emit_shared(inner, lines, indent + 1, root_index, root_line)
        lines.append(f"{pad}}}")
    else:  # pragma: no cover - exhaustive over statement kinds
        raise CodeGenerationError(f"unsupported statement {statement!r}")


def emit_shared_statement_lines(
    statements: Iterable[Stmt],
    root_index: dict,
    indent: int = 2,
    root_line: Optional[Callable[[SetFlagRoot, str], str]] = None,
) -> List[str]:
    """The columnar emitter's statement body as a list of source lines.

    With ``root_line`` set, ``root_index`` is never consulted (root
    positions are only known at link time) -- pass ``{}``.
    """
    lines: List[str] = []
    for statement in statements:
        _emit_shared(statement, lines, indent, root_index, root_line)
    return lines


def render_c_shared_module(
    name: str,
    style_value: str,
    needs_math: bool,
    helpers: Set[str],
    register_members: List[Tuple[str, str, str]],
    input_params: List[Tuple[str, str]],
    output_params: List[Tuple[str, str]],
    has_root_flags: bool,
    flag_ids: List[int],
    signal_declarations: List[str],
    body_lines: List[str],
) -> str:
    """Frame a statement body as the full reentrant columnar source.

    Shared by :func:`generate_c_shared_source` and the linker's incremental
    path.  ``register_members`` is ``(c_type, register_name,
    initial_literal_text)`` in IR order; ``input_params``/``output_params``
    are ``(c_type, signal)`` in interface order; ``signal_declarations``
    may arrive unsorted (the frame sorts, as whole-IR emission always has).
    """
    lines: List[str] = []
    lines.append(f"/* Generated by the SIGNAL reproduction compiler -- process {name} */")
    lines.append(f"/* style: {style_value}; reentrant columnar step (mass simulation) */")
    if needs_math:
        lines.append("#include <math.h>")
    lines.append("")

    # The explicit state struct: one member per delay register.  An empty
    # struct is not valid C, so stateless programs carry a padding byte.
    lines.append("typedef struct {")
    if register_members:
        for c_type, register, _literal in register_members:
            lines.append(f"    {c_type} {register};")
    else:
        lines.append("    char repro_unused;")
    lines.append(f"}} {name}_state;")
    lines.append("")
    lines.extend(_helper_lines(helpers))

    lines.append(f"long {name}_state_bytes(void)")
    lines.append("{")
    lines.append(f"    return (long) sizeof({name}_state);")
    lines.append("}")
    lines.append("")

    lines.append(f"void {name}_init({name}_state *repro_states, long repro_n)")
    lines.append("{")
    lines.append("    long repro_i;")
    lines.append("    for (repro_i = 0; repro_i < repro_n; ++repro_i) {")
    if register_members:
        for _c_type, register, literal in register_members:
            lines.append(
                f"        repro_states[repro_i].{register} = {literal};"
            )
    else:
        lines.append("        repro_states[repro_i].repro_unused = 0;")
    lines.append("    }")
    lines.append("}")
    lines.append("")

    # Entry-point signature: states, count, roots, input columns, output
    # value/presence columns -- all orders from the IR metadata.
    parameters = [f"{name}_state *repro_states", "long repro_n"]
    parameters.append("const unsigned char *repro_roots")
    for c_type, signal in input_params:
        parameters.append(f"const {c_type} *in_{signal}")
    for c_type, signal in output_params:
        parameters.append(f"{c_type} *out_{signal}")
        parameters.append(f"unsigned char *out_{signal}_present")

    lines.append(f"void {name}_step_many(")
    for position, parameter in enumerate(parameters):
        comma = "," if position < len(parameters) - 1 else ")"
        lines.append(f"    {parameter}{comma}")
    lines.append("{")
    lines.append("    long repro_i;")
    if not has_root_flags:
        lines.append("    (void) repro_roots;")
    lines.append("    for (repro_i = 0; repro_i < repro_n; ++repro_i) {")
    lines.append(f"        {name}_state *repro_self = &repro_states[repro_i];")
    if not register_members:
        lines.append("        (void) repro_self;")

    for class_id in flag_ids:
        lines.append(f"        int h{class_id} = 0;")
    lines.extend(sorted(signal_declarations))
    for _c_type, signal in output_params:
        lines.append(f"        out_{signal}_present[repro_i] = 0;")
    lines.append("")

    lines.extend(body_lines)
    lines.append("    }")
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


def generate_c_shared_source(ir: StepIR) -> str:
    """Render the step IR as a reentrant, columnar shared-library source.

    See the ABI comment above; :class:`repro.runtime.mass.SharedCProgram`
    compiles the result with ``cc -shared`` and drives it through ctypes.
    """
    helpers = _needed_helpers(ir)
    register_members = [
        (_C_TYPES[register.type], register.register, _c_literal(register.initial))
        for register in ir.registers
    ]
    hierarchy = ir.schedule.hierarchy
    flag_ids = sorted(c.id for c in hierarchy.classes if not c.is_null)
    signal_declarations = [
        f"        {_C_TYPES[ir.types[signal]]} {signal};"
        for signal in ir.schedule.signal_class
    ]
    root_index = {class_id: position for position, (class_id, _, _) in enumerate(ir.root_flags)}
    return render_c_shared_module(
        ir.name,
        ir.style.value,
        _needs_math_header(ir, helpers),
        helpers,
        register_members,
        [(_C_TYPES[ir.types[signal]], signal) for signal in ir.inputs],
        [(_C_TYPES[ir.types[signal]], signal) for signal in ir.outputs],
        bool(ir.root_flags),
        flag_ids,
        signal_declarations,
        emit_shared_statement_lines(ir.statements, root_index, indent=2),
    )
