"""C source emission from the step IR.

The C backend mirrors the structure of the sequential code described in
Section 2.6 of the paper (``if present(k) then ... endif``): one C function
``<process>_step`` performing one reaction, guarded reads/writes for every
signal, and static variables for the delay registers.  It is an *emitter
only* -- the reproduction executes the Python backend -- but it makes the
nesting difference between the hierarchical and the flat styles (Figure 9)
directly visible, and it is exercised by the tests for structural properties
(guard counts, nesting depth).
"""

from __future__ import annotations

from typing import Dict, List, Union

from ..errors import CodeGenerationError
from ..lang.types import SignalType
from .ir import (
    Binary,
    ClockChoice,
    ComputeValue,
    EmitOutput,
    FlagAnd,
    FlagAndNot,
    FlagExpr,
    FlagOr,
    FlagRef,
    Guard,
    Lit,
    ReadInput,
    ReadRegister,
    SetFlagFormula,
    SetFlagPartition,
    SetFlagRoot,
    SigRef,
    StepIR,
    Stmt,
    Unary,
    UpdateRegister,
    ValueExpr,
)

__all__ = ["generate_c_source"]


_C_TYPES = {
    SignalType.EVENT: "int",
    SignalType.BOOLEAN: "int",
    SignalType.INTEGER: "long",
    SignalType.REAL: "double",
}

_C_BINARY = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "modulo": "%",
    "and": "&&",
    "or": "||",
    "=": "==",
    "/=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "xor": "!=",
}


def _c_literal(value: Union[bool, int, float]) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(value)


def _c_value(expression: ValueExpr) -> str:
    if isinstance(expression, SigRef):
        return expression.signal
    if isinstance(expression, Lit):
        return _c_literal(expression.value)
    if isinstance(expression, Unary):
        if expression.operator == "not":
            return f"(!{_c_value(expression.operand)})"
        return f"(-{_c_value(expression.operand)})"
    if isinstance(expression, Binary):
        operator = _C_BINARY.get(expression.operator)
        if operator is None:
            raise CodeGenerationError(f"unsupported operator {expression.operator!r}")
        return f"({_c_value(expression.left)} {operator} {_c_value(expression.right)})"
    if isinstance(expression, ClockChoice):
        return (
            f"(h{expression.class_id} ? {_c_value(expression.then_value)}"
            f" : {_c_value(expression.else_value)})"
        )
    raise CodeGenerationError(f"unsupported value expression {expression!r}")


def _c_flag(expression: FlagExpr) -> str:
    if isinstance(expression, FlagRef):
        return f"h{expression.class_id}"
    if isinstance(expression, FlagAnd):
        return f"({_c_flag(expression.left)} && {_c_flag(expression.right)})"
    if isinstance(expression, FlagOr):
        return f"({_c_flag(expression.left)} || {_c_flag(expression.right)})"
    if isinstance(expression, FlagAndNot):
        return f"({_c_flag(expression.left)} && !{_c_flag(expression.right)})"
    raise CodeGenerationError(f"unsupported flag expression {expression!r}")


def _emit(statement: Stmt, lines: List[str], indent: int) -> None:
    pad = "    " * indent
    if isinstance(statement, SetFlagRoot):
        lines.append(f"{pad}h{statement.class_id} = read_clock_input(\"{statement.input_key}\");")
    elif isinstance(statement, SetFlagPartition):
        test = statement.condition if statement.polarity else f"!{statement.condition}"
        if statement.parent_id is None:
            lines.append(f"{pad}h{statement.class_id} = {test};")
        else:
            lines.append(f"{pad}h{statement.class_id} = h{statement.parent_id} && {test};")
    elif isinstance(statement, SetFlagFormula):
        lines.append(f"{pad}h{statement.class_id} = {_c_flag(statement.formula)};")
    elif isinstance(statement, ReadInput):
        lines.append(f"{pad}{statement.signal} = read_input_{statement.signal}();")
    elif isinstance(statement, ReadRegister):
        lines.append(f"{pad}{statement.signal} = {statement.register};")
    elif isinstance(statement, ComputeValue):
        lines.append(f"{pad}{statement.signal} = {_c_value(statement.expression)};")
    elif isinstance(statement, EmitOutput):
        lines.append(f"{pad}write_output_{statement.signal}({statement.signal});")
    elif isinstance(statement, UpdateRegister):
        lines.append(f"{pad}{statement.register} = {_c_value(statement.source)};")
    elif isinstance(statement, Guard):
        lines.append(f"{pad}if (h{statement.class_id}) {{")
        for inner in statement.body:
            _emit(inner, lines, indent + 1)
        lines.append(f"{pad}}}")
    else:  # pragma: no cover - exhaustive over statement kinds
        raise CodeGenerationError(f"unsupported statement {statement!r}")


def _io_prototypes(ir: StepIR) -> List[str]:
    """Extern prototypes for the environment hooks the step function calls.

    With these declarations the generated file compiles cleanly as a
    translation unit (``cc -c``); the environment supplies the definitions
    at link time, exactly like the original compiler's runtime library.
    """
    reads: set = set()
    writes: set = set()
    uses_clock_input = False

    def visit(statement: Stmt) -> None:
        nonlocal uses_clock_input
        if isinstance(statement, SetFlagRoot):
            uses_clock_input = True
        elif isinstance(statement, ReadInput):
            reads.add(statement.signal)
        elif isinstance(statement, EmitOutput):
            writes.add(statement.signal)
        elif isinstance(statement, Guard):
            for inner in statement.body:
                visit(inner)

    for statement in ir.statements:
        visit(statement)

    prototypes: List[str] = []
    if uses_clock_input:
        prototypes.append("extern int read_clock_input(const char *name);")
    for signal in sorted(reads):
        c_type = _C_TYPES[ir.types[signal]]
        prototypes.append(f"extern {c_type} read_input_{signal}(void);")
    for signal in sorted(writes):
        c_type = _C_TYPES[ir.types[signal]]
        prototypes.append(f"extern void write_output_{signal}({c_type} value);")
    return prototypes


def generate_c_source(ir: StepIR) -> str:
    """Render the step IR as a self-contained C-like translation unit."""
    lines: List[str] = []
    lines.append(f"/* Generated by the SIGNAL reproduction compiler -- process {ir.name} */")
    lines.append(f"/* style: {ir.style.value} */")
    lines.append("#include <stdbool.h>")
    lines.append("")
    prototypes = _io_prototypes(ir)
    if prototypes:
        lines.extend(prototypes)
        lines.append("")

    for register in ir.registers:
        c_type = _C_TYPES[register.type]
        lines.append(f"static {c_type} {register.register} = {_c_literal(register.initial)};")
    if ir.registers:
        lines.append("")

    hierarchy = ir.schedule.hierarchy
    flag_ids = sorted(c.id for c in hierarchy.classes if not c.is_null)
    signal_declarations = []
    for signal, clock_class in ir.schedule.signal_class.items():
        c_type = _C_TYPES[ir.types[signal]]
        signal_declarations.append(f"    {c_type} {signal};")

    lines.append(f"void {ir.name}_step(void)")
    lines.append("{")
    for class_id in flag_ids:
        lines.append(f"    bool h{class_id} = false;")
    lines.extend(sorted(signal_declarations))
    lines.append("")
    for statement in ir.statements:
        _emit(statement, lines, 1)
    lines.append("}")
    lines.append("")
    return "\n".join(lines)
