"""Python emission and in-process compilation of the step IR.

The generated code is a plain Python class with

* one attribute per delay register (``self.z_<signal>``),
* a ``step(inputs, oracle=None, observe=None)`` method performing one
  reaction: ``inputs`` maps input signal names (and, for programs with
  several free clocks, root presence flags) to values; ``oracle`` is an
  optional callable used to fetch the value of an input that the clock
  calculus requires but that is missing from ``inputs``; ``observe``, when a
  dict is supplied, receives the value of every signal present at this
  reaction (used by the test harness to compare against the reference
  interpreter).

``compile_step`` executes the generated source and returns a
:class:`CompiledProcess` handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..errors import CodeGenerationError, SimulationError
from ..graph.scheduling import Schedule
from ..lang.types import SignalType
from .ir import (
    Binary,
    ClockChoice,
    ComputeValue,
    EmitOutput,
    FlagAnd,
    FlagAndNot,
    FlagExpr,
    FlagOr,
    FlagRef,
    GenerationStyle,
    Guard,
    Lit,
    ReadInput,
    ReadRegister,
    SetFlagFormula,
    SetFlagPartition,
    SetFlagRoot,
    SigRef,
    StepIR,
    Stmt,
    Unary,
    UpdateRegister,
    ValueExpr,
    build_step_ir,
)

__all__ = [
    "generate_python_source",
    "render_python_module",
    "emit_statement_lines",
    "compile_step",
    "CompiledProcess",
]


_BINARY_OPERATORS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "modulo": "%",
    "and": "and",
    "or": "or",
    "=": "==",
    "/=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


def _literal(value: Union[bool, int, float]) -> str:
    return repr(value)


def _flag(class_id: int) -> str:
    return f"h{class_id}"


def _signal_var(name: str) -> str:
    return f"s_{name}"


def _value_expr(expression: ValueExpr) -> str:
    if isinstance(expression, SigRef):
        return _signal_var(expression.signal)
    if isinstance(expression, Lit):
        return _literal(expression.value)
    if isinstance(expression, Unary):
        if expression.operator == "not":
            return f"(not {_value_expr(expression.operand)})"
        return f"(- {_value_expr(expression.operand)})"
    if isinstance(expression, Binary):
        operator = expression.operator
        if operator == "xor":
            return f"(bool({_value_expr(expression.left)}) != bool({_value_expr(expression.right)}))"
        if operator == "/" and expression.integer:
            return f"({_value_expr(expression.left)} // {_value_expr(expression.right)})"
        python_operator = _BINARY_OPERATORS.get(operator)
        if python_operator is None:
            raise CodeGenerationError(f"unsupported operator {operator!r}")
        return f"({_value_expr(expression.left)} {python_operator} {_value_expr(expression.right)})"
    if isinstance(expression, ClockChoice):
        return (
            f"({_value_expr(expression.then_value)} if {_flag(expression.class_id)}"
            f" else {_value_expr(expression.else_value)})"
        )
    raise CodeGenerationError(f"unsupported value expression {expression!r}")


def _flag_expr(expression: FlagExpr) -> str:
    if isinstance(expression, FlagRef):
        return _flag(expression.class_id)
    if isinstance(expression, FlagAnd):
        return f"({_flag_expr(expression.left)} and {_flag_expr(expression.right)})"
    if isinstance(expression, FlagOr):
        return f"({_flag_expr(expression.left)} or {_flag_expr(expression.right)})"
    if isinstance(expression, FlagAndNot):
        return f"({_flag_expr(expression.left)} and not {_flag_expr(expression.right)})"
    raise CodeGenerationError(f"unsupported flag expression {expression!r}")


def _emit_statement(
    statement: Stmt,
    lines: List[str],
    indent: int,
    observable: bool,
    root_line: Optional[Callable[[SetFlagRoot, str], str]] = None,
) -> None:
    pad = "    " * indent
    if isinstance(statement, SetFlagRoot):
        if root_line is not None:
            # Per-unit emission caches statement bodies *before* linking,
            # when the root presence keys/defaults of the enclosing program
            # are unknown; the hook emits a placeholder the linker fills.
            lines.append(root_line(statement, pad))
            return
        lines.append(
            f"{pad}{_flag(statement.class_id)} = bool(inputs.get({statement.input_key!r}, "
            f"{statement.default!r}))"
        )
    elif isinstance(statement, SetFlagPartition):
        value = _signal_var(statement.condition)
        test = f"bool({value})" if statement.polarity else f"(not {value})"
        if statement.parent_id is None:
            lines.append(f"{pad}{_flag(statement.class_id)} = {test}")
        else:
            lines.append(
                f"{pad}{_flag(statement.class_id)} = {_flag(statement.parent_id)} and {test}"
            )
    elif isinstance(statement, SetFlagFormula):
        lines.append(f"{pad}{_flag(statement.class_id)} = {_flag_expr(statement.formula)}")
    elif isinstance(statement, ReadInput):
        variable = _signal_var(statement.signal)
        lines.append(f"{pad}if {statement.signal!r} in inputs:")
        lines.append(f"{pad}    {variable} = inputs[{statement.signal!r}]")
        lines.append(f"{pad}elif oracle is not None:")
        lines.append(f"{pad}    {variable} = oracle({statement.signal!r})")
        lines.append(f"{pad}else:")
        lines.append(
            f"{pad}    raise SimulationError("
            f"'input signal {statement.signal} is required at this instant')"
        )
        if observable:
            lines.append(f"{pad}if observe is not None:")
            lines.append(f"{pad}    observe[{statement.signal!r}] = {variable}")
    elif isinstance(statement, ReadRegister):
        lines.append(f"{pad}{_signal_var(statement.signal)} = self.{statement.register}")
        if observable:
            lines.append(f"{pad}if observe is not None:")
            lines.append(
                f"{pad}    observe[{statement.signal!r}] = {_signal_var(statement.signal)}"
            )
    elif isinstance(statement, ComputeValue):
        lines.append(
            f"{pad}{_signal_var(statement.signal)} = {_value_expr(statement.expression)}"
        )
        if observable:
            lines.append(f"{pad}if observe is not None:")
            lines.append(
                f"{pad}    observe[{statement.signal!r}] = {_signal_var(statement.signal)}"
            )
    elif isinstance(statement, EmitOutput):
        lines.append(
            f"{pad}outputs[{statement.signal!r}] = {_signal_var(statement.signal)}"
        )
    elif isinstance(statement, UpdateRegister):
        lines.append(f"{pad}self.{statement.register} = {_value_expr(statement.source)}")
    elif isinstance(statement, Guard):
        lines.append(f"{pad}if {_flag(statement.class_id)}:")
        if statement.body:
            for inner in statement.body:
                _emit_statement(inner, lines, indent + 1, observable, root_line)
        else:
            lines.append(f"{pad}    pass")
    else:  # pragma: no cover - exhaustive over statement kinds
        raise CodeGenerationError(f"unsupported statement {statement!r}")


def emit_statement_lines(
    statements: List[Stmt],
    indent: int = 2,
    observable: bool = True,
    root_line: Optional[Callable[[SetFlagRoot, str], str]] = None,
) -> List[str]:
    """The statement body of the generated step, as a list of source lines.

    ``root_line``, when given, is called for every ``SetFlagRoot`` instead
    of the normal emission -- per-unit caching uses it to leave link-time
    placeholders (root keys and defaults depend on the enclosing program).
    """
    lines: List[str] = []
    for statement in statements:
        _emit_statement(statement, lines, indent, observable, root_line)
    return lines


def render_python_module(
    name: str,
    style_value: str,
    register_inits: List[Tuple[str, str]],
    initialized_flags: List[int],
    body_lines: List[str],
    observable: bool = True,
) -> str:
    """Frame a statement body as the full generated step module.

    Shared by :func:`generate_python_source` (whole-IR emission) and the
    linker's incremental path (concatenated per-unit bodies): both render
    through this one function, which is what guarantees the two paths
    produce byte-identical modules.  ``register_inits`` is a list of
    ``(register_name, initial_literal_text)`` pairs in IR order.
    """
    class_name = f"{name}_step".replace("-", "_")
    lines: List[str] = []
    lines.append('"""Generated by the SIGNAL reproduction compiler -- do not edit."""')
    lines.append("")
    lines.append("from repro.errors import SimulationError")
    lines.append("")
    lines.append("")
    lines.append(f"class {class_name}:")
    lines.append(f'    """Reaction function of process {name} ({style_value} style)."""')
    lines.append("")
    lines.append("    def __init__(self):")
    if register_inits:
        for register, literal in register_inits:
            lines.append(f"        self.{register} = {literal}")
    else:
        lines.append("        pass")
    lines.append("")
    lines.append("    def reset(self):")
    if register_inits:
        for register, literal in register_inits:
            lines.append(f"        self.{register} = {literal}")
    else:
        lines.append("        pass")
    lines.append("")
    if observable:
        lines.append("    def step(self, inputs, oracle=None, observe=None):")
    else:
        lines.append("    def step(self, inputs, oracle=None):")
    lines.append("        outputs = {}")
    for class_id in initialized_flags:
        lines.append(f"        {_flag(class_id)} = False")
    lines.extend(body_lines)
    lines.append("        return outputs")
    lines.append("")
    return "\n".join(lines)


def generate_python_source(ir: StepIR, observable: bool = True) -> str:
    """Render the step IR as Python source defining a ``Step`` class."""
    return render_python_module(
        ir.name,
        ir.style.value,
        [(register.register, _literal(register.initial)) for register in ir.registers],
        list(ir.initialized_flags),
        emit_statement_lines(ir.statements, indent=2, observable=observable),
        observable=observable,
    )


@dataclass
class CompiledProcess:
    """An executable compiled SIGNAL process."""

    name: str
    style: GenerationStyle
    source: str
    #: the step IR the source was generated from; ``None`` for executables
    #: rehydrated from a stored artifact record, where only the generated
    #: source survives serialization
    ir: Optional[StepIR]
    step_instance: object
    inputs: List[str]
    outputs: List[str]
    #: (input key, default) for every free clock of the program
    root_flags: List[Tuple[int, str, bool]]
    types: Dict[str, SignalType] = field(default_factory=dict)
    #: whether the generated step supports the ``observe=`` parameter
    observable: bool = True

    def step(
        self,
        inputs: Optional[Mapping[str, object]] = None,
        oracle: Optional[Callable[[str], object]] = None,
        observe: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Run one reaction and return the present outputs."""
        arguments = dict(inputs or {})
        return self.step_instance.step(arguments, oracle, observe)

    def run(
        self,
        input_trace: List[Mapping[str, object]],
        oracle: Optional[Callable[[str], object]] = None,
    ) -> List[Dict[str, object]]:
        """Run one reaction per element of ``input_trace`` and collect outputs."""
        return [self.step(instant, oracle) for instant in input_trace]

    def reset(self) -> None:
        self.step_instance.reset()

    def fresh(self) -> "CompiledProcess":
        """A new executable instance of the same compiled code.

        The returned process shares the immutable artifacts (source, IR,
        types) but has its own step instance with freshly initialized delay
        registers, so its state is fully isolated from this one.  The
        already-built step class is re-instantiated directly (the
        ``observable=False`` wrapper lives on instances, never the class, so
        the class is always pristine) -- no re-exec of the source.
        """
        instance = _prepare_step_instance(type(self.step_instance)(), self.observable)
        return replace(self, step_instance=instance)

    @classmethod
    def from_generated_source(
        cls,
        source: str,
        name: str,
        style: GenerationStyle,
        inputs: List[str],
        outputs: List[str],
        root_flags: List[Tuple[int, str, bool]],
        types: Dict[str, SignalType],
        observable: bool = True,
    ) -> "CompiledProcess":
        """Rebuild an executable from previously generated step source.

        Used by the artifact store (:mod:`repro.service.store`) to rehydrate
        a runnable process from a persisted record without re-running the
        pipeline: the generated source is re-executed and wrapped exactly
        like a fresh compilation, but no IR is available (``ir`` is None).
        """
        instance = _instantiate_step(source, name, observable)
        return cls(
            name=name,
            style=style,
            source=source,
            ir=None,
            step_instance=instance,
            inputs=list(inputs),
            outputs=list(outputs),
            root_flags=[tuple(flag) for flag in root_flags],
            types=dict(types),
            observable=observable,
        )


def _prepare_step_instance(instance: object, observable: bool) -> object:
    if not observable:
        # Normalize the signature so CompiledProcess.step can always pass observe.
        original_step = instance.step

        def step_without_observe(inputs, oracle=None, observe=None):  # noqa: ANN001
            return original_step(inputs, oracle)

        instance.step = step_without_observe  # type: ignore[method-assign]
    return instance


def _instantiate_step(source: str, name: str, observable: bool) -> object:
    """Execute generated step source and return a ready step instance."""
    namespace: Dict[str, object] = {"SimulationError": SimulationError}
    exec(compile(source, f"<generated {name}>", "exec"), namespace)
    class_name = f"{name}_step".replace("-", "_")
    step_class = namespace[class_name]
    return _prepare_step_instance(step_class(), observable)  # type: ignore[operator]


def compile_step(
    schedule: Schedule,
    types: Dict[str, SignalType],
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    observable: bool = True,
    name: Optional[str] = None,
) -> CompiledProcess:
    """Generate, execute and wrap the Python step for a scheduled program."""
    ir = build_step_ir(schedule, types, style, name)
    source = generate_python_source(ir, observable=observable)
    instance = _instantiate_step(source, ir.name, observable)
    return CompiledProcess(
        name=ir.name,
        style=style,
        source=source,
        ir=ir,
        step_instance=instance,
        inputs=list(ir.inputs),
        outputs=list(ir.outputs),
        root_flags=list(ir.root_flags),
        types=dict(types),
        observable=observable,
    )
