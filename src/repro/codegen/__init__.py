"""Sequential code generation from the clock hierarchy and dependency graph.

Two generation styles are provided, mirroring Figure 9 of the paper:

* the **hierarchical** style (Figure 9, code *a*) nests if-then-else
  control structures following the clock tree, so that when a clock is
  absent the tests for all the clocks included in it are skipped;
* the **flat** style (Figure 9, code *b*) guards every computation
  individually, testing every clock at every reaction -- the single-loop
  baseline the paper compares against.

Both styles share the same intermediate representation
(:mod:`repro.codegen.ir`) and are emitted either as executable Python
(:mod:`repro.codegen.python_backend`) or as readable C
(:mod:`repro.codegen.c_backend`).
"""

from .ir import (
    GenerationStyle,
    StepIR,
    build_step_ir,
)
from .python_backend import CompiledProcess, compile_step, generate_python_source
from .c_backend import generate_c_shared_source, generate_c_source

__all__ = [
    "GenerationStyle",
    "StepIR",
    "build_step_ir",
    "CompiledProcess",
    "compile_step",
    "generate_python_source",
    "generate_c_source",
    "generate_c_shared_source",
]
