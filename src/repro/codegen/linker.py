"""Serialization and linking of per-unit step IR.

The modular pipeline compiles each :class:`~repro.lang.units.ProgramUnit`
under its *canonical* names and caches the resulting step IR as a JSON
payload (part of the unit artifact record, see
:func:`repro.compiler.compile_unit_record`).  This module provides

* a lossless JSON encoding of :class:`~repro.codegen.ir.StepIR` statement
  lists and registers (``ir_to_payload`` / the ``materialize_*`` readers),
* the **link-time materialization** of a cached unit payload into the
  enclosing program: canonical signal names are renamed back to the
  program's actual names, clock-class ids are shifted by a per-unit offset
  so units never collide, and every free clock's presence key and root
  default are *recomputed* for the linked program (a unit alone is its own
  master clock; embedded next to other units it is one root among many,
  so ``SetFlagRoot`` defaults flip from "present unless said otherwise"
  to "absent unless driven"),
* :func:`link_step_ir`, which concatenates the materialized parts into a
  single :class:`StepIR` whose schedule is a lightweight stub carrying
  exactly what the backends read (non-null class ids and the signal ->
  class map); all three backends (python, c, c_shared) then emit from the
  linked IR unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.types import SignalType
from .ir import (
    Binary,
    ClockChoice,
    ComputeValue,
    EmitOutput,
    FlagAnd,
    FlagAndNot,
    FlagExpr,
    FlagOr,
    FlagRef,
    GenerationStyle,
    Guard,
    Lit,
    ReadInput,
    ReadRegister,
    RegisterInfo,
    SetFlagFormula,
    SetFlagPartition,
    SetFlagRoot,
    SigRef,
    StepIR,
    Stmt,
    Unary,
    UpdateRegister,
    ValueExpr,
)

__all__ = [
    "ir_to_payload",
    "link_step_ir",
    "presence_key_for_atoms",
    "rename_atoms",
    "LinkedClockClass",
    "LinkedHierarchy",
    "LinkedSchedule",
]


# ---------------------------------------------------------------------------
# JSON encoding of IR
# ---------------------------------------------------------------------------

def _value_to_json(expression: ValueExpr) -> list:
    if isinstance(expression, SigRef):
        return ["sig", expression.signal]
    if isinstance(expression, Lit):
        return ["lit", expression.value]
    if isinstance(expression, Unary):
        return ["un", expression.operator, _value_to_json(expression.operand)]
    if isinstance(expression, Binary):
        return [
            "bin",
            expression.operator,
            _value_to_json(expression.left),
            _value_to_json(expression.right),
            expression.integer,
        ]
    if isinstance(expression, ClockChoice):
        return [
            "choice",
            expression.class_id,
            _value_to_json(expression.then_value),
            _value_to_json(expression.else_value),
        ]
    raise TypeError(f"unsupported value expression {expression!r}")


def _flag_to_json(expression: FlagExpr) -> list:
    if isinstance(expression, FlagRef):
        return ["fref", expression.class_id]
    if isinstance(expression, FlagAnd):
        return ["fand", _flag_to_json(expression.left), _flag_to_json(expression.right)]
    if isinstance(expression, FlagOr):
        return ["for", _flag_to_json(expression.left), _flag_to_json(expression.right)]
    if isinstance(expression, FlagAndNot):
        return ["fandnot", _flag_to_json(expression.left), _flag_to_json(expression.right)]
    raise TypeError(f"unsupported flag expression {expression!r}")


def _stmt_to_json(statement: Stmt) -> list:
    if isinstance(statement, SetFlagRoot):
        return ["root", statement.class_id, statement.input_key, statement.default]
    if isinstance(statement, SetFlagPartition):
        return [
            "part",
            statement.class_id,
            statement.parent_id,
            statement.condition,
            statement.polarity,
        ]
    if isinstance(statement, SetFlagFormula):
        return ["formula", statement.class_id, _flag_to_json(statement.formula)]
    if isinstance(statement, ReadInput):
        return ["readin", statement.signal]
    if isinstance(statement, ReadRegister):
        return ["readreg", statement.signal, statement.register]
    if isinstance(statement, ComputeValue):
        return ["compute", statement.signal, _value_to_json(statement.expression)]
    if isinstance(statement, EmitOutput):
        return ["emit", statement.signal]
    if isinstance(statement, UpdateRegister):
        return ["update", statement.register, _value_to_json(statement.source)]
    if isinstance(statement, Guard):
        return ["guard", statement.class_id, [_stmt_to_json(s) for s in statement.body]]
    raise TypeError(f"unsupported statement {statement!r}")


def _ids_in_stmt(statement: Stmt, into: set) -> None:
    if isinstance(statement, (SetFlagRoot, SetFlagFormula)):
        into.add(statement.class_id)
    elif isinstance(statement, SetFlagPartition):
        into.add(statement.class_id)
        if statement.parent_id is not None:
            into.add(statement.parent_id)
    elif isinstance(statement, Guard):
        into.add(statement.class_id)
        for inner in statement.body:
            _ids_in_stmt(inner, into)


def ir_to_payload(ir: StepIR) -> dict:
    """Encode the portable part of a step IR as a JSON-safe payload.

    The schedule is *not* encoded; the unit record carries the class-id /
    signal-class summaries the link stage needs to rebuild a stub.
    """
    referenced: set = set()
    for statement in ir.statements:
        _ids_in_stmt(statement, referenced)
    return {
        "style": ir.style.value,
        "statements": [_stmt_to_json(s) for s in ir.statements],
        "registers": [
            [r.register, r.target, r.source, r.initial, r.type.value]
            for r in ir.registers
        ],
        "inputs": list(ir.inputs),
        "outputs": list(ir.outputs),
        "initialized_flags": list(ir.initialized_flags),
        "root_flags": [[cid, key, default] for cid, key, default in ir.root_flags],
        "referenced_class_ids": sorted(referenced),
    }


# ---------------------------------------------------------------------------
# Presence-key recomputation
# ---------------------------------------------------------------------------

def rename_atoms(atoms: Sequence[Sequence[str]], rename: Dict[str, str]) -> List[Tuple[str, str]]:
    """Rename serialized clock atoms ``(kind, signal)`` through ``rename``."""
    return [(kind, rename.get(signal, signal)) for kind, signal in atoms]


def presence_key_for_atoms(atoms: Sequence[Tuple[str, str]], class_id: int) -> str:
    """The root presence-flag input key for a free class, from its atoms.

    Reproduces ``ClockClass.display_name`` / ``presence_name`` exactly
    (same atom renderings, same ``sorted`` tie-breaks) so a linked
    executable exposes the *same* root keys as the monolithic compile of
    the same program -- the differential fuzz suite asserts this.
    """
    renderings = {
        "signal": "^{0}",
        "cond_true": "[{0}]",
        "cond_false": "[~{0}]",
    }
    rendered = [(kind, renderings[kind].format(signal)) for kind, signal in atoms]
    signal_atoms = sorted(text for kind, text in rendered if kind == "signal")
    if signal_atoms:
        base = signal_atoms[0]
    else:
        sampled = sorted(text for _, text in rendered)
        base = sampled[0] if sampled else f"k{class_id}"
    cleaned = (
        base.replace("^", "C_").replace("[~", "NOT_").replace("[", "AT_").replace("]", "")
    )
    return f"h_{cleaned}"


# ---------------------------------------------------------------------------
# Link-time materialization
# ---------------------------------------------------------------------------

def _rename_register(register: str, rename: Dict[str, str]) -> str:
    if register.startswith("z_"):
        target = register[2:]
        if target in rename:
            return f"z_{rename[target]}"
    return register


class _Materializer:
    """Rename + offset one unit's serialized IR into the linked program."""

    def __init__(
        self,
        rename: Dict[str, str],
        offset: int,
        root_info: Dict[int, Tuple[str, bool]],
    ):
        self.rename = rename
        self.offset = offset
        self.root_info = root_info

    def signal(self, name: str) -> str:
        return self.rename.get(name, name)

    def value(self, payload: list) -> ValueExpr:
        tag = payload[0]
        if tag == "sig":
            return SigRef(self.signal(payload[1]))
        if tag == "lit":
            return Lit(payload[1])
        if tag == "un":
            return Unary(payload[1], self.value(payload[2]))
        if tag == "bin":
            return Binary(payload[1], self.value(payload[2]), self.value(payload[3]), payload[4])
        if tag == "choice":
            return ClockChoice(payload[1] + self.offset, self.value(payload[2]), self.value(payload[3]))
        raise ValueError(f"unknown value-expression tag {tag!r}")

    def flag(self, payload: list) -> FlagExpr:
        tag = payload[0]
        if tag == "fref":
            return FlagRef(payload[1] + self.offset)
        if tag == "fand":
            return FlagAnd(self.flag(payload[1]), self.flag(payload[2]))
        if tag == "for":
            return FlagOr(self.flag(payload[1]), self.flag(payload[2]))
        if tag == "fandnot":
            return FlagAndNot(self.flag(payload[1]), self.flag(payload[2]))
        raise ValueError(f"unknown flag-expression tag {tag!r}")

    def statement(self, payload: list) -> Stmt:
        tag = payload[0]
        if tag == "root":
            class_id = payload[1]
            key, default = self.root_info[class_id]
            return SetFlagRoot(class_id + self.offset, key, default)
        if tag == "part":
            parent = payload[2]
            return SetFlagPartition(
                payload[1] + self.offset,
                None if parent is None else parent + self.offset,
                self.signal(payload[3]),
                payload[4],
            )
        if tag == "formula":
            return SetFlagFormula(payload[1] + self.offset, self.flag(payload[2]))
        if tag == "readin":
            return ReadInput(self.signal(payload[1]))
        if tag == "readreg":
            return ReadRegister(self.signal(payload[1]), _rename_register(payload[2], self.rename))
        if tag == "compute":
            return ComputeValue(self.signal(payload[1]), self.value(payload[2]))
        if tag == "emit":
            return EmitOutput(self.signal(payload[1]))
        if tag == "update":
            return UpdateRegister(_rename_register(payload[1], self.rename), self.value(payload[2]))
        if tag == "guard":
            return Guard(payload[1] + self.offset, [self.statement(s) for s in payload[2]])
        raise ValueError(f"unknown statement tag {tag!r}")

    def register(self, payload: list) -> RegisterInfo:
        register, target, source, initial, type_value = payload
        return RegisterInfo(
            register=_rename_register(register, self.rename),
            target=self.signal(target),
            source=self.signal(source),
            initial=initial,
            type=SignalType(type_value),
        )


# ---------------------------------------------------------------------------
# The stub schedule carried by linked IR
# ---------------------------------------------------------------------------

class LinkedClockClass:
    """Minimal stand-in for :class:`ClockClass` inside linked IR."""

    __slots__ = ("id", "is_null")

    def __init__(self, class_id: int, is_null: bool = False):
        self.id = class_id
        self.is_null = is_null

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkedClockClass({self.id})"


class LinkedHierarchy:
    """Carries exactly what backends read from ``schedule.hierarchy``."""

    __slots__ = ("classes",)

    def __init__(self, classes: List[LinkedClockClass]):
        self.classes = classes


class LinkedSchedule:
    """Carries exactly what backends read from ``ir.schedule``."""

    __slots__ = ("hierarchy", "signal_class")

    def __init__(self, hierarchy: LinkedHierarchy, signal_class: Dict[str, LinkedClockClass]):
        self.hierarchy = hierarchy
        self.signal_class = signal_class


# ---------------------------------------------------------------------------
# Linking
# ---------------------------------------------------------------------------

def link_step_ir(
    name: str,
    style: GenerationStyle,
    parts: Sequence[dict],
    input_order: Sequence[str],
    output_order: Sequence[str],
) -> StepIR:
    """Compose cached unit artifacts into one linked :class:`StepIR`.

    ``parts`` is one dict per unit, in program order::

        {
            "ir": <ir payload for the requested style>,
            "rename": {canonical -> actual signal name},
            "class_ids": [non-null class ids of the unit hierarchy],
            "max_class_id": <largest id of any class, null included>,
            "signal_class": {canonical signal -> class id},
            "free_classes": [{"id": id, "atoms": [[kind, signal], ...]}],
            "types": {actual signal -> SignalType},
        }

    ``input_order`` / ``output_order`` give the enclosing program's
    declaration order, so the linked interface lists the same signals in
    the same order as a monolithic compile.
    """
    total_free = sum(len(part["free_classes"]) for part in parts)
    root_default = total_free == 1

    statements: List[Stmt] = []
    registers: List[RegisterInfo] = []
    initialized_flags: List[int] = []
    root_flags: List[Tuple[int, str, bool]] = []
    classes: List[LinkedClockClass] = []
    signal_class: Dict[str, LinkedClockClass] = {}
    types: Dict[str, SignalType] = {}
    inputs_seen: set = set()
    outputs_seen: set = set()

    offset = 0
    for part in parts:
        rename = part["rename"]
        root_info: Dict[int, Tuple[str, bool]] = {}
        for free in part["free_classes"]:
            atoms = rename_atoms(free["atoms"], rename)
            key = presence_key_for_atoms(atoms, free["id"] + offset)
            root_info[free["id"]] = (key, root_default)

        materializer = _Materializer(rename, offset, root_info)
        payload = part["ir"]
        statements.extend(materializer.statement(s) for s in payload["statements"])
        registers.extend(materializer.register(r) for r in payload["registers"])
        initialized_flags.extend(cid + offset for cid in payload["initialized_flags"])
        for cid, _key, _default in payload["root_flags"]:
            key, default = root_info[cid]
            root_flags.append((cid + offset, key, default))
        for cid in part["class_ids"]:
            classes.append(LinkedClockClass(cid + offset))
        for canonical, cid in part["signal_class"].items():
            actual = rename.get(canonical, canonical)
            signal_class[actual] = LinkedClockClass(cid + offset)
        types.update(part["types"])
        inputs_seen.update(rename.get(s, s) for s in payload["inputs"])
        outputs_seen.update(rename.get(s, s) for s in payload["outputs"])

        offset += part["max_class_id"] + 1

    schedule = LinkedSchedule(LinkedHierarchy(classes), signal_class)
    return StepIR(
        name=name,
        style=style,
        statements=statements,
        registers=registers,
        inputs=[s for s in input_order if s in inputs_seen],
        outputs=[s for s in output_order if s in outputs_seen],
        initialized_flags=initialized_flags,
        root_flags=root_flags,
        schedule=schedule,  # type: ignore[arg-type]
        types=types,
    )
