"""Serialization and linking of per-unit step IR.

The modular pipeline compiles each :class:`~repro.lang.units.ProgramUnit`
under its *canonical* names and caches the resulting step IR as a JSON
payload (part of the unit artifact record, see
:func:`repro.compiler.compile_unit_record`).  This module provides

* a lossless JSON encoding of :class:`~repro.codegen.ir.StepIR` statement
  lists and registers (``ir_to_payload`` / the ``materialize_*`` readers),
* the **link-time materialization** of a cached unit payload into the
  enclosing program: canonical signal names are renamed back to the
  program's actual names, clock-class ids are shifted by a per-unit offset
  so units never collide, and every free clock's presence key and root
  default are *recomputed* for the linked program (a unit alone is its own
  master clock; embedded next to other units it is one root among many,
  so ``SetFlagRoot`` defaults flip from "present unless said otherwise"
  to "absent unless driven"),
* :func:`link_step_ir`, which concatenates the materialized parts into a
  single :class:`StepIR` whose schedule is a lightweight stub carrying
  exactly what the backends read (non-null class ids and the signal ->
  class map); all three backends (python, c, c_shared) then emit from the
  linked IR unchanged.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..lang.types import SignalType
from ..lang.units import rename_text
from . import c_backend as _c_backend
from . import python_backend as _python_backend
from .ir import (
    Binary,
    ClockChoice,
    ComputeValue,
    EmitOutput,
    FlagAnd,
    FlagAndNot,
    FlagExpr,
    FlagOr,
    FlagRef,
    GenerationStyle,
    Guard,
    Lit,
    ReadInput,
    ReadRegister,
    RegisterInfo,
    SetFlagFormula,
    SetFlagPartition,
    SetFlagRoot,
    SigRef,
    StepIR,
    Stmt,
    Unary,
    UpdateRegister,
    ValueExpr,
)

__all__ = [
    "ir_to_payload",
    "link_step_ir",
    "link_interface",
    "link_python_source",
    "link_c_source",
    "link_c_shared_source",
    "root_placeholder_line",
    "presence_key_for_atoms",
    "rename_atoms",
    "LinkedClockClass",
    "LinkedHierarchy",
    "LinkedSchedule",
]


# ---------------------------------------------------------------------------
# JSON encoding of IR
# ---------------------------------------------------------------------------

def _value_to_json(expression: ValueExpr) -> list:
    if isinstance(expression, SigRef):
        return ["sig", expression.signal]
    if isinstance(expression, Lit):
        return ["lit", expression.value]
    if isinstance(expression, Unary):
        return ["un", expression.operator, _value_to_json(expression.operand)]
    if isinstance(expression, Binary):
        return [
            "bin",
            expression.operator,
            _value_to_json(expression.left),
            _value_to_json(expression.right),
            expression.integer,
        ]
    if isinstance(expression, ClockChoice):
        return [
            "choice",
            expression.class_id,
            _value_to_json(expression.then_value),
            _value_to_json(expression.else_value),
        ]
    raise TypeError(f"unsupported value expression {expression!r}")


def _flag_to_json(expression: FlagExpr) -> list:
    if isinstance(expression, FlagRef):
        return ["fref", expression.class_id]
    if isinstance(expression, FlagAnd):
        return ["fand", _flag_to_json(expression.left), _flag_to_json(expression.right)]
    if isinstance(expression, FlagOr):
        return ["for", _flag_to_json(expression.left), _flag_to_json(expression.right)]
    if isinstance(expression, FlagAndNot):
        return ["fandnot", _flag_to_json(expression.left), _flag_to_json(expression.right)]
    raise TypeError(f"unsupported flag expression {expression!r}")


def _stmt_to_json(statement: Stmt) -> list:
    if isinstance(statement, SetFlagRoot):
        return ["root", statement.class_id, statement.input_key, statement.default]
    if isinstance(statement, SetFlagPartition):
        return [
            "part",
            statement.class_id,
            statement.parent_id,
            statement.condition,
            statement.polarity,
        ]
    if isinstance(statement, SetFlagFormula):
        return ["formula", statement.class_id, _flag_to_json(statement.formula)]
    if isinstance(statement, ReadInput):
        return ["readin", statement.signal]
    if isinstance(statement, ReadRegister):
        return ["readreg", statement.signal, statement.register]
    if isinstance(statement, ComputeValue):
        return ["compute", statement.signal, _value_to_json(statement.expression)]
    if isinstance(statement, EmitOutput):
        return ["emit", statement.signal]
    if isinstance(statement, UpdateRegister):
        return ["update", statement.register, _value_to_json(statement.source)]
    if isinstance(statement, Guard):
        return ["guard", statement.class_id, [_stmt_to_json(s) for s in statement.body]]
    raise TypeError(f"unsupported statement {statement!r}")


def _ids_in_stmt(statement: Stmt, into: set) -> None:
    if isinstance(statement, (SetFlagRoot, SetFlagFormula)):
        into.add(statement.class_id)
    elif isinstance(statement, SetFlagPartition):
        into.add(statement.class_id)
        if statement.parent_id is not None:
            into.add(statement.parent_id)
    elif isinstance(statement, Guard):
        into.add(statement.class_id)
        for inner in statement.body:
            _ids_in_stmt(inner, into)


def ir_to_payload(ir: StepIR) -> dict:
    """Encode the portable part of a step IR as a JSON-safe payload.

    The schedule is *not* encoded; the unit record carries the class-id /
    signal-class summaries the link stage needs to rebuild a stub.
    """
    referenced: set = set()
    for statement in ir.statements:
        _ids_in_stmt(statement, referenced)
    return {
        "style": ir.style.value,
        "statements": [_stmt_to_json(s) for s in ir.statements],
        "registers": [
            [r.register, r.target, r.source, r.initial, r.type.value]
            for r in ir.registers
        ],
        "inputs": list(ir.inputs),
        "outputs": list(ir.outputs),
        "initialized_flags": list(ir.initialized_flags),
        "root_flags": [[cid, key, default] for cid, key, default in ir.root_flags],
        "referenced_class_ids": sorted(referenced),
    }


# ---------------------------------------------------------------------------
# Presence-key recomputation
# ---------------------------------------------------------------------------

def rename_atoms(atoms: Sequence[Sequence[str]], rename: Dict[str, str]) -> List[Tuple[str, str]]:
    """Rename serialized clock atoms ``(kind, signal)`` through ``rename``."""
    return [(kind, rename.get(signal, signal)) for kind, signal in atoms]


def presence_key_for_atoms(atoms: Sequence[Tuple[str, str]], class_id: int) -> str:
    """The root presence-flag input key for a free class, from its atoms.

    Reproduces ``ClockClass.display_name`` / ``presence_name`` exactly
    (same atom renderings, same ``sorted`` tie-breaks) so a linked
    executable exposes the *same* root keys as the monolithic compile of
    the same program -- the differential fuzz suite asserts this.
    """
    renderings = {
        "signal": "^{0}",
        "cond_true": "[{0}]",
        "cond_false": "[~{0}]",
    }
    rendered = [(kind, renderings[kind].format(signal)) for kind, signal in atoms]
    signal_atoms = sorted(text for kind, text in rendered if kind == "signal")
    if signal_atoms:
        base = signal_atoms[0]
    else:
        sampled = sorted(text for _, text in rendered)
        base = sampled[0] if sampled else f"k{class_id}"
    cleaned = (
        base.replace("^", "C_").replace("[~", "NOT_").replace("[", "AT_").replace("]", "")
    )
    return f"h_{cleaned}"


# ---------------------------------------------------------------------------
# Link-time materialization
# ---------------------------------------------------------------------------

def _rename_register(register: str, rename: Dict[str, str]) -> str:
    if register.startswith("z_"):
        target = register[2:]
        if target in rename:
            return f"z_{rename[target]}"
    return register


class _Materializer:
    """Rename + offset one unit's serialized IR into the linked program."""

    def __init__(
        self,
        rename: Dict[str, str],
        offset: int,
        root_info: Dict[int, Tuple[str, bool]],
    ):
        self.rename = rename
        self.offset = offset
        self.root_info = root_info

    def signal(self, name: str) -> str:
        return self.rename.get(name, name)

    def value(self, payload: list) -> ValueExpr:
        tag = payload[0]
        if tag == "sig":
            return SigRef(self.signal(payload[1]))
        if tag == "lit":
            return Lit(payload[1])
        if tag == "un":
            return Unary(payload[1], self.value(payload[2]))
        if tag == "bin":
            return Binary(payload[1], self.value(payload[2]), self.value(payload[3]), payload[4])
        if tag == "choice":
            return ClockChoice(payload[1] + self.offset, self.value(payload[2]), self.value(payload[3]))
        raise ValueError(f"unknown value-expression tag {tag!r}")

    def flag(self, payload: list) -> FlagExpr:
        tag = payload[0]
        if tag == "fref":
            return FlagRef(payload[1] + self.offset)
        if tag == "fand":
            return FlagAnd(self.flag(payload[1]), self.flag(payload[2]))
        if tag == "for":
            return FlagOr(self.flag(payload[1]), self.flag(payload[2]))
        if tag == "fandnot":
            return FlagAndNot(self.flag(payload[1]), self.flag(payload[2]))
        raise ValueError(f"unknown flag-expression tag {tag!r}")

    def statement(self, payload: list) -> Stmt:
        tag = payload[0]
        if tag == "root":
            class_id = payload[1]
            key, default = self.root_info[class_id]
            return SetFlagRoot(class_id + self.offset, key, default)
        if tag == "part":
            parent = payload[2]
            return SetFlagPartition(
                payload[1] + self.offset,
                None if parent is None else parent + self.offset,
                self.signal(payload[3]),
                payload[4],
            )
        if tag == "formula":
            return SetFlagFormula(payload[1] + self.offset, self.flag(payload[2]))
        if tag == "readin":
            return ReadInput(self.signal(payload[1]))
        if tag == "readreg":
            return ReadRegister(self.signal(payload[1]), _rename_register(payload[2], self.rename))
        if tag == "compute":
            return ComputeValue(self.signal(payload[1]), self.value(payload[2]))
        if tag == "emit":
            return EmitOutput(self.signal(payload[1]))
        if tag == "update":
            return UpdateRegister(_rename_register(payload[1], self.rename), self.value(payload[2]))
        if tag == "guard":
            return Guard(payload[1] + self.offset, [self.statement(s) for s in payload[2]])
        raise ValueError(f"unknown statement tag {tag!r}")

    def register(self, payload: list) -> RegisterInfo:
        register, target, source, initial, type_value = payload
        return RegisterInfo(
            register=_rename_register(register, self.rename),
            target=self.signal(target),
            source=self.signal(source),
            initial=initial,
            type=SignalType(type_value),
        )


# ---------------------------------------------------------------------------
# The stub schedule carried by linked IR
# ---------------------------------------------------------------------------

class LinkedClockClass:
    """Minimal stand-in for :class:`ClockClass` inside linked IR."""

    __slots__ = ("id", "is_null")

    def __init__(self, class_id: int, is_null: bool = False):
        self.id = class_id
        self.is_null = is_null

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkedClockClass({self.id})"


class LinkedHierarchy:
    """Carries exactly what backends read from ``schedule.hierarchy``."""

    __slots__ = ("classes",)

    def __init__(self, classes: List[LinkedClockClass]):
        self.classes = classes


class LinkedSchedule:
    """Carries exactly what backends read from ``ir.schedule``."""

    __slots__ = ("hierarchy", "signal_class")

    def __init__(self, hierarchy: LinkedHierarchy, signal_class: Dict[str, LinkedClockClass]):
        self.hierarchy = hierarchy
        self.signal_class = signal_class


# ---------------------------------------------------------------------------
# Linking
# ---------------------------------------------------------------------------

def link_step_ir(
    name: str,
    style: GenerationStyle,
    parts: Sequence[dict],
    input_order: Sequence[str],
    output_order: Sequence[str],
) -> StepIR:
    """Compose cached unit artifacts into one linked :class:`StepIR`.

    ``parts`` is one dict per unit, in program order::

        {
            "ir": <ir payload for the requested style>,
            "rename": {canonical -> actual signal name},
            "class_ids": [non-null class ids of the unit hierarchy],
            "max_class_id": <largest id of any class, null included>,
            "signal_class": {canonical signal -> class id},
            "free_classes": [{"id": id, "atoms": [[kind, signal], ...]}],
            "types": {actual signal -> SignalType},
        }

    ``input_order`` / ``output_order`` give the enclosing program's
    declaration order, so the linked interface lists the same signals in
    the same order as a monolithic compile.
    """
    total_free = sum(len(part["free_classes"]) for part in parts)
    root_default = total_free == 1

    statements: List[Stmt] = []
    registers: List[RegisterInfo] = []
    initialized_flags: List[int] = []
    root_flags: List[Tuple[int, str, bool]] = []
    classes: List[LinkedClockClass] = []
    signal_class: Dict[str, LinkedClockClass] = {}
    types: Dict[str, SignalType] = {}
    inputs_seen: set = set()
    outputs_seen: set = set()

    offset = 0
    for part in parts:
        rename = part["rename"]
        root_info: Dict[int, Tuple[str, bool]] = {}
        for free in part["free_classes"]:
            atoms = rename_atoms(free["atoms"], rename)
            key = presence_key_for_atoms(atoms, free["id"] + offset)
            root_info[free["id"]] = (key, root_default)

        materializer = _Materializer(rename, offset, root_info)
        payload = part["ir"]
        statements.extend(materializer.statement(s) for s in payload["statements"])
        registers.extend(materializer.register(r) for r in payload["registers"])
        initialized_flags.extend(cid + offset for cid in payload["initialized_flags"])
        for cid, _key, _default in payload["root_flags"]:
            key, default = root_info[cid]
            root_flags.append((cid + offset, key, default))
        for cid in part["class_ids"]:
            classes.append(LinkedClockClass(cid + offset))
        for canonical, cid in part["signal_class"].items():
            actual = rename.get(canonical, canonical)
            signal_class[actual] = LinkedClockClass(cid + offset)
        types.update(part["types"])
        inputs_seen.update(rename.get(s, s) for s in payload["inputs"])
        outputs_seen.update(rename.get(s, s) for s in payload["outputs"])

        offset += part["max_class_id"] + 1

    schedule = LinkedSchedule(LinkedHierarchy(classes), signal_class)
    return StepIR(
        name=name,
        style=style,
        statements=statements,
        registers=registers,
        inputs=[s for s in input_order if s in inputs_seen],
        outputs=[s for s in output_order if s in outputs_seen],
        initialized_flags=initialized_flags,
        root_flags=root_flags,
        schedule=schedule,  # type: ignore[arg-type]
        types=types,
    )


# ---------------------------------------------------------------------------
# Incremental source linking (per-unit emission)
# ---------------------------------------------------------------------------
#
# Unit records carry, next to the serialized IR, the *generated statement
# bodies* of every backend (see ``compile_unit_record``): the expensive
# statement-by-statement emission runs once per unit and is cached.  At link
# time the cached text is adapted with three passes -- offset the ``h<id>``
# clock-flag tokens into the unit's id range, rename canonical signals to
# the program's actual names, and replace the ``@@ROOT <id>@@`` placeholders
# (root presence keys, defaults and columnar positions only exist for the
# linked program) by calling the real backend emitters on freshly built
# ``SetFlagRoot`` statements -- then the concatenated bodies are framed by
# the same ``render_*_module`` functions whole-IR emission uses.  Byte
# identity with re-emitting the fully linked IR is asserted by the
# differential fuzzer's modular legs.

#: placeholder a unit's cached body carries for each ``SetFlagRoot``; the
#: id is the unit-local class id (offset applied at link time)
def root_placeholder_line(statement, pad: str) -> str:
    return f"{pad}@@ROOT {statement.class_id}@@"


_FLAG_TOKEN = re.compile(r"(?<![A-Za-z0-9_])h(\d+)(?![A-Za-z0-9_])")
_ROOT_PLACEHOLDER_LINE = re.compile(r"^([ ]*)@@ROOT (\d+)@@$")


def _materialized_body(
    lines: Sequence[str],
    rename: Dict[str, str],
    offset: int,
    emit_root: Callable[[int, int, List[str]], None],
) -> List[str]:
    """Adapt one unit's cached statement body into the linked program.

    ``emit_root(unit_local_class_id, indent, out)`` appends the final root
    line(s).  The flag-token offset runs *before* the rename (canonical
    text only contains ``h<digits>`` as flag references; after renaming, an
    actual signal name could coincidentally look like one), and the
    placeholder pass runs last (root presence keys embed actual names that
    must not be renamed again).
    """
    if not lines:
        return []
    text = "\n".join(lines)
    if offset:
        text = _FLAG_TOKEN.sub(lambda match: f"h{int(match.group(1)) + offset}", text)
    text = rename_text(text, rename)
    out: List[str] = []
    for line in text.split("\n"):
        match = _ROOT_PLACEHOLDER_LINE.match(line)
        if match is None:
            out.append(line)
        else:
            emit_root(int(match.group(2)), len(match.group(1)) // 4, out)
    return out


def _layout(parts: Sequence[dict]) -> Iterator[Tuple[dict, Dict[str, str], int, Dict[int, Tuple[str, bool]]]]:
    """Yield ``(part, rename, offset, root_info)`` exactly as linking does.

    Mirrors the id-offset and presence-key recomputation of
    :func:`link_step_ir` so the incremental source paths and the IR path
    agree on every link-time value.
    """
    total_free = sum(len(part["free_classes"]) for part in parts)
    root_default = total_free == 1
    offset = 0
    for part in parts:
        rename = part["rename"]
        root_info: Dict[int, Tuple[str, bool]] = {}
        for free in part["free_classes"]:
            atoms = rename_atoms(free["atoms"], rename)
            key = presence_key_for_atoms(atoms, free["id"] + offset)
            root_info[free["id"]] = (key, root_default)
        yield part, rename, offset, root_info
        offset += part["max_class_id"] + 1


def _emit_cache(part: dict, backend: str) -> Optional[Sequence[str]]:
    emit = part.get("emit")
    if not isinstance(emit, dict) or backend not in emit:
        return None
    return emit[backend]


def link_interface(
    parts: Sequence[dict],
    input_order: Sequence[str],
    output_order: Sequence[str],
) -> dict:
    """The linked program's interface without materializing any statement.

    Returns ``{"inputs", "outputs", "root_flags"}`` with exactly the values
    the fully linked :class:`StepIR` would carry; the incremental
    executable path builds its :class:`CompiledProcess` metadata from this.
    """
    inputs_seen: set = set()
    outputs_seen: set = set()
    root_flags: List[Tuple[int, str, bool]] = []
    for part, rename, offset, root_info in _layout(parts):
        payload = part["ir"]
        for cid, _key, _default in payload["root_flags"]:
            key, default = root_info[cid]
            root_flags.append((cid + offset, key, default))
        inputs_seen.update(rename.get(s, s) for s in payload["inputs"])
        outputs_seen.update(rename.get(s, s) for s in payload["outputs"])
    return {
        "inputs": [s for s in input_order if s in inputs_seen],
        "outputs": [s for s in output_order if s in outputs_seen],
        "root_flags": root_flags,
    }


def link_python_source(
    name: str,
    style: GenerationStyle,
    parts: Sequence[dict],
    input_order: Sequence[str],
    output_order: Sequence[str],
    observable: bool = True,
) -> Optional[str]:
    """Compose cached per-unit python bodies into the full generated module.

    Returns ``None`` when any unit record predates per-unit emission (the
    caller falls back to emitting from the linked IR) or when a
    non-observable module is requested (the cache stores the observable
    variant; the observe hooks change the body).
    """
    if not observable:
        return None
    bodies = [_emit_cache(part, "python") for part in parts]
    if any(body is None for body in bodies):
        return None
    register_inits: List[Tuple[str, str]] = []
    initialized_flags: List[int] = []
    lines: List[str] = []
    for (part, rename, offset, root_info), body in zip(_layout(parts), bodies):
        payload = part["ir"]
        for register, _target, _source, initial, _type in payload["registers"]:
            register_inits.append(
                (_rename_register(register, rename), _python_backend._literal(initial))
            )
        initialized_flags.extend(cid + offset for cid in payload["initialized_flags"])

        def emit_root(cid: int, indent: int, out: List[str], _offset=offset, _info=root_info) -> None:
            key, default = _info[cid]
            statement = SetFlagRoot(cid + _offset, key, default)
            out.extend(
                _python_backend.emit_statement_lines([statement], indent=indent)
            )

        lines.extend(_materialized_body(body, rename, offset, emit_root))
    return _python_backend.render_python_module(
        name, style.value, register_inits, initialized_flags, lines, observable=True
    )


def _linked_c_frame_data(parts: Sequence[dict]) -> Optional[dict]:
    """Frame metadata shared by both C emitters, from the emit caches.

    ``None`` when any part lacks an emit cache.  Registers, flag ids and
    signal declarations follow the same part-order traversal as
    :func:`link_step_ir`, so the frames match whole-IR emission exactly
    (per-part sorted class ids under monotonically increasing offsets
    concatenate into a globally sorted list).
    """
    helpers: set = set()
    nonfinite = False
    reads: set = set()
    writes: set = set()
    uses_clock_input = False
    types: Dict[str, SignalType] = {}
    registers: List[Tuple[str, str, str]] = []  # (c_type, name, literal)
    flag_ids: List[int] = []
    signal_names: List[str] = []
    for part, rename, offset, _root_info in _layout(parts):
        emit = part.get("emit")
        if not isinstance(emit, dict):
            return None
        helpers.update(emit.get("helpers", ()))
        nonfinite = nonfinite or emit.get("nonfinite", False)
        reads.update(rename.get(s, s) for s in emit.get("reads", ()))
        writes.update(rename.get(s, s) for s in emit.get("writes", ()))
        uses_clock_input = uses_clock_input or emit.get("uses_clock_input", False)
        types.update(part["types"])
        payload = part["ir"]
        for register, _target, _source, initial, type_value in payload["registers"]:
            nonfinite = nonfinite or _c_backend.nonfinite_initial(initial)
            registers.append(
                (
                    _c_backend._C_TYPES[SignalType(type_value)],
                    _rename_register(register, rename),
                    _c_backend._c_literal(initial),
                )
            )
        flag_ids.extend(cid + offset for cid in part["class_ids"])
        signal_names.extend(
            rename.get(canonical, canonical) for canonical in part["signal_class"]
        )
    needs_math = "repro_floor_fmod" in helpers or nonfinite
    return {
        "helpers": helpers,
        "needs_math": needs_math,
        "reads": sorted(reads),
        "writes": sorted(writes),
        "uses_clock_input": uses_clock_input,
        "types": types,
        "registers": registers,
        "flag_ids": flag_ids,
        "signal_names": signal_names,
    }


def link_c_source(
    name: str,
    style: GenerationStyle,
    parts: Sequence[dict],
    input_order: Sequence[str],
    output_order: Sequence[str],
) -> Optional[str]:
    """Compose cached per-unit classic-C bodies into the translation unit."""
    bodies = [_emit_cache(part, "c") for part in parts]
    if any(body is None for body in bodies):
        return None
    frame = _linked_c_frame_data(parts)
    if frame is None:
        return None
    lines: List[str] = []
    for (part, rename, offset, root_info), body in zip(_layout(parts), bodies):
        def emit_root(cid: int, indent: int, out: List[str], _offset=offset, _info=root_info) -> None:
            key, default = _info[cid]
            statement = SetFlagRoot(cid + _offset, key, default)
            out.extend(_c_backend.emit_statement_lines([statement], indent=indent))

        lines.extend(_materialized_body(body, rename, offset, emit_root))
    prototypes = _c_backend.io_prototypes(
        frame["reads"], frame["writes"], frame["uses_clock_input"], frame["types"]
    )
    register_lines = [
        f"static {c_type} {register} = {literal};"
        for c_type, register, literal in frame["registers"]
    ]
    signal_declarations = [
        f"    {_c_backend._C_TYPES[frame['types'][signal]]} {signal};"
        for signal in frame["signal_names"]
    ]
    return _c_backend.render_c_module(
        name,
        style.value,
        frame["needs_math"],
        prototypes,
        frame["helpers"],
        register_lines,
        frame["flag_ids"],
        signal_declarations,
        lines,
    )


def link_c_shared_source(
    name: str,
    style: GenerationStyle,
    parts: Sequence[dict],
    input_order: Sequence[str],
    output_order: Sequence[str],
) -> Optional[str]:
    """Compose cached per-unit columnar-C bodies into the shared source."""
    bodies = [_emit_cache(part, "c_shared") for part in parts]
    if any(body is None for body in bodies):
        return None
    frame = _linked_c_frame_data(parts)
    if frame is None:
        return None
    interface = link_interface(parts, input_order, output_order)
    root_index = {
        class_id: position
        for position, (class_id, _key, _default) in enumerate(interface["root_flags"])
    }
    lines: List[str] = []
    for (part, rename, offset, root_info), body in zip(_layout(parts), bodies):
        def emit_root(cid: int, indent: int, out: List[str], _offset=offset, _info=root_info) -> None:
            key, default = _info[cid]
            statement = SetFlagRoot(cid + _offset, key, default)
            out.extend(
                _c_backend.emit_shared_statement_lines(
                    [statement], root_index, indent=indent
                )
            )

        lines.extend(_materialized_body(body, rename, offset, emit_root))
    types = frame["types"]
    signal_declarations = [
        f"        {_c_backend._C_TYPES[types[signal]]} {signal};"
        for signal in frame["signal_names"]
    ]
    return _c_backend.render_c_shared_module(
        name,
        style.value,
        frame["needs_math"],
        frame["helpers"],
        frame["registers"],
        [(_c_backend._C_TYPES[types[signal]], signal) for signal in interface["inputs"]],
        [(_c_backend._C_TYPES[types[signal]], signal) for signal in interface["outputs"]],
        bool(interface["root_flags"]),
        frame["flag_ids"],
        signal_declarations,
        lines,
    )
