"""Backend-independent intermediate representation of the generated step.

The step of a compiled SIGNAL program is a straight-line program over

* clock *presence flags* (one boolean per clock class),
* signal *values* (one variable per signal), and
* *delay registers* (one state variable per ``$`` operator),

structured by ``Guard`` blocks.  The **flat** builder produces one guard per
computation (Figure 9, code *b*); the **hierarchical** builder nests guards
following the clock tree so that absent subtrees are skipped entirely
(Figure 9, code *a*).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..clocks.algebra import ClockExpr, CondFalse, CondTrue, Diff, Join, Meet, NullClock, SignalClock
from ..clocks.resolution import (
    ClockClass,
    ClockHierarchy,
    FormulaDefinition,
    FreeDefinition,
    NullDefinition,
    PartitionDefinition,
)
from ..clocks.tree import ClockNode
from ..errors import CodeGenerationError
from ..graph.scheduling import Action, ComputeClock, ComputeSignal, Schedule
from ..lang.kernel import (
    KernelDefault,
    KernelDelay,
    KernelFunction,
    KernelProcess,
    KernelSynchro,
    KernelWhen,
    Literal,
    Operand,
)
from ..lang.types import SignalType, default_value

__all__ = [
    "GenerationStyle",
    "ValueExpr",
    "SigRef",
    "Lit",
    "Unary",
    "Binary",
    "ClockChoice",
    "FlagExpr",
    "FlagRef",
    "FlagAnd",
    "FlagOr",
    "FlagAndNot",
    "Stmt",
    "SetFlagRoot",
    "SetFlagPartition",
    "SetFlagFormula",
    "ReadInput",
    "ReadRegister",
    "ComputeValue",
    "EmitOutput",
    "UpdateRegister",
    "Guard",
    "RegisterInfo",
    "StepIR",
    "build_step_ir",
]


class GenerationStyle(enum.Enum):
    """The two code generation styles compared in Figure 9."""

    HIERARCHICAL = "hierarchical"
    FLAT = "flat"


# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------


class ValueExpr:
    """Base class of value expressions."""


@dataclass(frozen=True)
class SigRef(ValueExpr):
    signal: str


@dataclass(frozen=True)
class Lit(ValueExpr):
    value: Union[bool, int, float]


@dataclass(frozen=True)
class Unary(ValueExpr):
    operator: str
    operand: ValueExpr


@dataclass(frozen=True)
class Binary(ValueExpr):
    operator: str
    left: ValueExpr
    right: ValueExpr
    integer: bool = False


@dataclass(frozen=True)
class ClockChoice(ValueExpr):
    """``then_value`` when the flag of ``class_id`` is true, else ``else_value``."""

    class_id: int
    then_value: ValueExpr
    else_value: ValueExpr


# ---------------------------------------------------------------------------
# Flag (presence) expressions
# ---------------------------------------------------------------------------


class FlagExpr:
    """Base class of presence-flag expressions."""


@dataclass(frozen=True)
class FlagRef(FlagExpr):
    class_id: int


@dataclass(frozen=True)
class FlagAnd(FlagExpr):
    left: FlagExpr
    right: FlagExpr


@dataclass(frozen=True)
class FlagOr(FlagExpr):
    left: FlagExpr
    right: FlagExpr


@dataclass(frozen=True)
class FlagAndNot(FlagExpr):
    left: FlagExpr
    right: FlagExpr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of step statements."""


@dataclass(frozen=True)
class SetFlagRoot(Stmt):
    """Presence of a free clock, provided by the environment."""

    class_id: int
    input_key: str
    default: bool


@dataclass(frozen=True)
class SetFlagPartition(Stmt):
    """Presence of a sampled clock ``[C]`` / ``[¬C]``."""

    class_id: int
    parent_id: Optional[int]  # None when the parent flag is known true in context
    condition: str
    polarity: bool


@dataclass(frozen=True)
class SetFlagFormula(Stmt):
    """Presence of a clock defined by a formula over other clocks."""

    class_id: int
    formula: FlagExpr


@dataclass(frozen=True)
class ReadInput(Stmt):
    signal: str


@dataclass(frozen=True)
class ReadRegister(Stmt):
    signal: str
    register: str


@dataclass(frozen=True)
class ComputeValue(Stmt):
    signal: str
    expression: ValueExpr


@dataclass(frozen=True)
class EmitOutput(Stmt):
    signal: str


@dataclass(frozen=True)
class UpdateRegister(Stmt):
    register: str
    source: ValueExpr


@dataclass
class Guard(Stmt):
    """``if present(class_id): body``."""

    class_id: int
    body: List[Stmt] = field(default_factory=list)


@dataclass(frozen=True)
class RegisterInfo:
    """A delay register: holds the previous value of ``source`` for ``target``."""

    register: str
    target: str
    source: str
    initial: Union[bool, int, float]
    type: SignalType


@dataclass
class StepIR:
    """The complete intermediate representation of one reaction."""

    name: str
    style: GenerationStyle
    statements: List[Stmt]
    registers: List[RegisterInfo]
    inputs: List[str]
    outputs: List[str]
    #: class ids whose flag must be initialized to false before the statements
    initialized_flags: List[int]
    #: (class_id, input key, default) for every free clock
    root_flags: List[Tuple[int, str, bool]]
    schedule: Schedule
    types: Dict[str, SignalType]

    def flag_names(self) -> Dict[int, str]:
        return {c.id: f"h{c.id}" for c in self.schedule.hierarchy.classes}


# ---------------------------------------------------------------------------
# Shared construction helpers
# ---------------------------------------------------------------------------


class _StepBuilder:
    """Shared logic between the flat and the hierarchical builders."""

    def __init__(self, schedule: Schedule, types: Dict[str, SignalType]):
        self.schedule = schedule
        self.types = types
        self.program = schedule.program
        self.hierarchy = schedule.hierarchy
        self.class_by_id: Dict[int, ClockClass] = {c.id: c for c in self.hierarchy.classes}
        self.definitions: Dict[str, KernelProcess] = {}
        for process in self.program.processes:
            if not isinstance(process, KernelSynchro):
                self.definitions[process.target] = process
        self.registers: List[RegisterInfo] = []
        self._register_by_target: Dict[str, RegisterInfo] = {}
        self._collect_registers()
        free = [c for c in self.hierarchy.free_classes() if not c.is_null]
        self._single_root = len(free) == 1

    # -- registers -------------------------------------------------------------
    def _collect_registers(self) -> None:
        for process in self.program.processes:
            if not isinstance(process, KernelDelay):
                continue
            if process.target not in self.schedule.signal_class:
                continue  # null-clocked delay: never present
            target_type = self.types[process.target]
            initial = process.initial
            if initial is None:
                initial = default_value(target_type)
            register = RegisterInfo(
                register=f"z_{process.target}",
                target=process.target,
                source=process.source,
                initial=initial,
                type=target_type,
            )
            self.registers.append(register)
            self._register_by_target[process.target] = register

    # -- operand/value expressions -----------------------------------------------
    def operand_expr(self, operand: Operand) -> ValueExpr:
        if isinstance(operand, Literal):
            return Lit(operand.value)
        return SigRef(operand)

    def value_statement(self, signal: str) -> Stmt:
        """The statement that gives ``signal`` its value at its instants."""
        definition = self.definitions.get(signal)
        if definition is None:
            # No definition: an input signal, read from the environment.
            return ReadInput(signal)
        if isinstance(definition, KernelDelay):
            register = self._register_by_target[signal]
            return ReadRegister(signal, register.register)
        if isinstance(definition, KernelFunction):
            return ComputeValue(signal, self._function_expr(definition))
        if isinstance(definition, KernelWhen):
            return ComputeValue(signal, self.operand_expr(definition.source))
        if isinstance(definition, KernelDefault):
            return ComputeValue(signal, self._default_expr(definition))
        raise CodeGenerationError(f"cannot generate a value for signal {signal!r}")

    def _function_expr(self, definition: KernelFunction) -> ValueExpr:
        operator = definition.operator
        operands = [self.operand_expr(op) for op in definition.operands]
        if operator == "id":
            return operands[0]
        if operator == "event":
            return Lit(True)
        if operator in ("not",):
            return Unary("not", operands[0])
        if operator == "-" and len(operands) == 1:
            return Unary("-", operands[0])
        if len(operands) != 2:
            raise CodeGenerationError(
                f"operator {operator!r} expects two operands, got {len(operands)}"
            )
        integer = self.types[definition.target] is SignalType.INTEGER
        return Binary(operator, operands[0], operands[1], integer=integer)

    def _default_expr(self, definition: KernelDefault) -> ValueExpr:
        left, right = definition.left, definition.right
        if isinstance(left, Literal):
            # A constant branch is always available; it always wins the merge.
            return Lit(left.value)
        left_class = self.hierarchy.class_of_signal(left)
        if left_class.is_null:
            return self.operand_expr(right)
        right_expr = self.operand_expr(right)
        return ClockChoice(left_class.id, SigRef(left), right_expr)

    # -- flags -----------------------------------------------------------------------
    def root_default(self) -> bool:
        return self._single_root

    def flag_statement(self, clock_class: ClockClass, in_parent_guard: bool) -> Stmt:
        definition = clock_class.definition
        if isinstance(definition, FreeDefinition):
            return SetFlagRoot(
                clock_class.id, clock_class.presence_name(), self.root_default()
            )
        if isinstance(definition, PartitionDefinition):
            parent = self.class_by_id.get(definition.parent_id)
            if parent is None:
                parent = self.hierarchy.class_of_signal(definition.condition)
            parent_id = None if in_parent_guard else parent.id
            return SetFlagPartition(
                clock_class.id, parent_id, definition.condition, definition.polarity
            )
        if isinstance(definition, FormulaDefinition):
            return SetFlagFormula(
                clock_class.id, self._flag_expr(definition.formula)
            )
        raise CodeGenerationError(
            f"cannot compute the presence of clock {clock_class.display_name()}"
        )

    def _flag_expr(self, formula: ClockExpr) -> FlagExpr:
        if isinstance(formula, (SignalClock, CondTrue, CondFalse)):
            return FlagRef(self.hierarchy.class_of_atom(formula).id)
        if isinstance(formula, Meet):
            return FlagAnd(self._flag_expr(formula.left), self._flag_expr(formula.right))
        if isinstance(formula, Join):
            return FlagOr(self._flag_expr(formula.left), self._flag_expr(formula.right))
        if isinstance(formula, Diff):
            return FlagAndNot(self._flag_expr(formula.left), self._flag_expr(formula.right))
        raise CodeGenerationError(f"cannot encode clock formula {formula}")

    # -- signal statements ------------------------------------------------------------
    def signal_statements(self, signal: str) -> List[Stmt]:
        statements = [self.value_statement(signal)]
        if signal in self.program.outputs:
            statements.append(EmitOutput(signal))
        return statements

    def update_statements_for_class(self, clock_class: ClockClass) -> List[Stmt]:
        """Register updates for delays whose clock is ``clock_class``."""
        updates = []
        for register in self.registers:
            target_class = self.schedule.signal_class.get(register.target)
            if target_class is not None and target_class.id == clock_class.id:
                updates.append(UpdateRegister(register.register, SigRef(register.source)))
        return updates

    def root_flag_descriptions(self) -> List[Tuple[int, str, bool]]:
        descriptions = []
        for clock_class in self.hierarchy.free_classes():
            if clock_class.is_null:
                continue
            descriptions.append(
                (clock_class.id, clock_class.presence_name(), self.root_default())
            )
        return descriptions


# ---------------------------------------------------------------------------
# Flat (single-loop) builder -- Figure 9, code b
# ---------------------------------------------------------------------------


def _build_flat(builder: _StepBuilder) -> List[Stmt]:
    schedule = builder.schedule
    statements: List[Stmt] = []
    for action in schedule.actions:
        if isinstance(action, ComputeClock):
            clock_class = builder.class_by_id.get(action.class_id)
            if clock_class is None:
                continue
            statements.append(builder.flag_statement(clock_class, in_parent_guard=False))
        else:
            clock_class = schedule.signal_class[action.signal]
            statements.append(
                Guard(clock_class.id, builder.signal_statements(action.signal))
            )
    # Register updates happen once all values of the reaction are computed.
    for register in builder.registers:
        clock_class = schedule.signal_class[register.target]
        statements.append(
            Guard(clock_class.id, [UpdateRegister(register.register, SigRef(register.source))])
        )
    return statements


# ---------------------------------------------------------------------------
# Hierarchical (nested) builder -- Figure 9, code a
# ---------------------------------------------------------------------------


class _HierarchicalBuilder:
    """Builds nested guards following the clock forest.

    Within every tree node, the signals computed at that node and the child
    subtrees are ordered so that every direct scheduling constraint whose two
    endpoints fall under this node (their lowest common ancestor) is
    respected.  When no such block-compatible order exists the program cannot
    be emitted in the nested style and an error is raised.
    """

    def __init__(self, builder: _StepBuilder):
        self.builder = builder
        self.schedule = builder.schedule
        self.hierarchy = builder.hierarchy
        self.forest = self.hierarchy.forest
        self._rank = {action: index for index, action in enumerate(self.schedule.actions)}
        # Signals grouped by the tree node of their clock class.
        self.node_signals: Dict[int, List[str]] = {}
        for signal, clock_class in self.schedule.signal_class.items():
            self.node_signals.setdefault(clock_class.id, []).append(signal)
        for signals in self.node_signals.values():
            signals.sort(key=self._signal_rank)

    def _signal_rank(self, signal: str) -> int:
        return self._action_rank(ComputeSignal(signal))

    def _action_rank(self, action: Action) -> int:
        return self._rank.get(action, len(self._rank))

    # -- home nodes and LCAs ------------------------------------------------------------
    def _home_node(self, action: Action) -> Optional[ClockNode]:
        if isinstance(action, ComputeSignal):
            clock_class = self.schedule.signal_class.get(action.signal)
        else:
            clock_class = self.builder.class_by_id.get(action.class_id)
        if clock_class is None:
            return None
        return clock_class.node

    @staticmethod
    def _ancestor_chain(node: ClockNode) -> List[ClockNode]:
        return list(node.ancestors())

    def _item_of(self, node: ClockNode, descendant: ClockNode):
        """The item of ``node`` that contains ``descendant`` (a child, or the node itself)."""
        if descendant is node:
            return ("self", None)
        chain = self._ancestor_chain(descendant)
        for index, ancestor in enumerate(chain):
            if ancestor is node:
                child = chain[index - 1]
                return ("child", child)
        return (None, None)

    # -- emission --------------------------------------------------------------------------
    def build(self) -> List[Stmt]:
        # Treat the forest as a single virtual node whose children are the roots.
        local_edges, items = self._local_items(None, self.forest.roots, [])
        statements: List[Stmt] = []
        for kind, payload in self._order_items(items, local_edges, node_label="<forest>"):
            assert kind == "child"
            root_node = payload
            clock_class = root_node.clock_class
            statements.append(
                self.builder.flag_statement(clock_class, in_parent_guard=False)
            )
            body = self._emit_node(root_node)
            if body:
                statements.append(Guard(clock_class.id, body))
        return statements

    def _emit_node(self, node: ClockNode) -> List[Stmt]:
        signals = self.node_signals.get(node.clock_class.id, [])
        local_edges, items = self._local_items(node, node.children, signals)
        body: List[Stmt] = []
        for kind, payload in self._order_items(
            items, local_edges, node_label=node.clock_class.display_name()
        ):
            if kind == "signal":
                body.extend(self.builder.signal_statements(payload))
            else:
                child = payload
                clock_class = child.clock_class
                in_parent_guard = (
                    isinstance(clock_class.definition, PartitionDefinition)
                    and self._partition_parent_is(clock_class, node.clock_class)
                )
                body.append(
                    self.builder.flag_statement(clock_class, in_parent_guard=in_parent_guard)
                )
                child_body = self._emit_node(child)
                if child_body:
                    # Leaf clocks with no computation of their own still get
                    # their presence flag (other clocks/choices may test it),
                    # but an empty guarded block would be dead code.
                    body.append(Guard(clock_class.id, child_body))
        body.extend(self.builder.update_statements_for_class(node.clock_class))
        return body

    def _partition_parent_is(self, clock_class: ClockClass, parent_class: ClockClass) -> bool:
        definition = clock_class.definition
        if not isinstance(definition, PartitionDefinition):
            return False
        recorded = self.builder.class_by_id.get(definition.parent_id)
        if recorded is None:
            recorded = self.hierarchy.class_of_signal(definition.condition)
        return recorded.id == parent_class.id

    # -- local ordering ------------------------------------------------------------------------
    def _local_items(
        self,
        node: Optional[ClockNode],
        children: Sequence[ClockNode],
        signals: Sequence[str],
    ):
        items: List[Tuple[str, object]] = [("signal", s) for s in signals]
        items += [("child", c) for c in children]

        # Map every action under this node to its item.
        action_item: Dict[Action, Tuple[str, object]] = {}
        for signal in signals:
            action_item[ComputeSignal(signal)] = ("signal", signal)
        for child in children:
            for descendant in child.iter_subtree():
                action_item[ComputeClock(descendant.clock_class.id)] = ("child", child)
                for signal in self.node_signals.get(descendant.clock_class.id, []):
                    action_item[ComputeSignal(signal)] = ("child", child)

        edges: Set[Tuple[int, int]] = set()
        item_index = {
            self._item_key(item): index for index, item in enumerate(items)
        }

        def key_of(item: Tuple[str, object]) -> int:
            return item_index[self._item_key(item)]

        for action, prerequisites in self.schedule.prerequisites.items():
            target_item = action_item.get(action)
            if target_item is None:
                continue
            for prerequisite in prerequisites:
                source_item = action_item.get(prerequisite)
                if source_item is None:
                    continue
                source_key = key_of(source_item)
                target_key = key_of(target_item)
                if source_key != target_key:
                    edges.add((source_key, target_key))
        return edges, items

    @staticmethod
    def _item_key(item: Tuple[str, object]):
        kind, payload = item
        if kind == "signal":
            return ("signal", payload)
        return ("child", id(payload))

    def _order_items(
        self,
        items: List[Tuple[str, object]],
        edges: Set[Tuple[int, int]],
        node_label: str,
    ) -> List[Tuple[str, object]]:
        count = len(items)
        prerequisites: Dict[int, Set[int]] = {i: set() for i in range(count)}
        for source, target in edges:
            prerequisites[target].add(source)

        def item_rank(index: int) -> int:
            kind, payload = items[index]
            if kind == "signal":
                return self._action_rank(ComputeSignal(payload))
            ranks = [
                self._action_rank(ComputeClock(d.clock_class.id))
                for d in payload.iter_subtree()
            ]
            return min(ranks) if ranks else 0

        remaining = set(range(count))
        ordered: List[int] = []
        while remaining:
            ready = [i for i in remaining if not (prerequisites[i] & remaining)]
            if not ready:
                names = ", ".join(
                    items[i][1] if items[i][0] == "signal" else items[i][1].clock_class.display_name()
                    for i in sorted(remaining)
                )
                raise CodeGenerationError(
                    "cannot nest code for clock "
                    f"{node_label}: interleaved dependencies between {names}"
                )
            ready.sort(key=item_rank)
            chosen = ready[0]
            remaining.remove(chosen)
            ordered.append(chosen)
        return [items[i] for i in ordered]


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_step_ir(
    schedule: Schedule,
    types: Dict[str, SignalType],
    style: GenerationStyle = GenerationStyle.HIERARCHICAL,
    name: Optional[str] = None,
) -> StepIR:
    """Build the step IR for a scheduled program in the requested style."""
    builder = _StepBuilder(schedule, types)
    if style is GenerationStyle.FLAT:
        statements = _build_flat(builder)
        initialized_flags: List[int] = []
    else:
        statements = _HierarchicalBuilder(builder).build()
        initialized_flags = [
            c.id
            for c in schedule.hierarchy.classes
            if not c.is_null and not isinstance(c.definition, FreeDefinition)
        ]

    program = schedule.program
    inputs = [s for s in program.inputs if s in schedule.signal_class]
    outputs = [s for s in program.outputs if s in schedule.signal_class]

    return StepIR(
        name=name or program.name,
        style=style,
        statements=statements,
        registers=builder.registers,
        inputs=inputs,
        outputs=outputs,
        initialized_flags=initialized_flags,
        root_flags=builder.root_flag_descriptions(),
        schedule=schedule,
        types=types,
    )
