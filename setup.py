"""Setup shim so legacy editable installs work in offline environments.

The project metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e . --no-use-pep517`` (which avoids the ``wheel`` build
dependency) has a ``setup.py`` to call.
"""

from setuptools import setup

setup()
