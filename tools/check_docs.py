#!/usr/bin/env python
"""Smoke-run the fenced code snippets of the project documentation.

Extracts every fenced ``bash`` and ``python`` block from README.md and
docs/ARCHITECTURE.md and executes it, so the documentation cannot silently
rot: a renamed flag, a changed API or a stale output claim fails CI.

Rules
-----

* Only blocks whose fence info string is exactly ``bash`` or ``python``
  run; ``text``, ``json``, ``signal`` and bare fences are illustrations.
* A line containing ``<!-- docs-check: skip -->`` (prefix match, so a
  reason may follow) immediately above the fence skips the next block --
  used for snippets that are environment-specific (``pip install``) or
  deliberately long-running.
* All blocks of one document run **in order in one shared scratch
  directory**, so a quickstart that writes ``count.sig`` can be reused by
  later blocks, exactly as a reader would do.
* Blocks run with ``PYTHONPATH`` pointing at the repository ``src`` tree;
  bash blocks run under ``bash -euo pipefail``.

Usage::

    python tools/check_docs.py              # check the default documents
    python tools/check_docs.py README.md    # check specific files
    python tools/check_docs.py --list       # show the blocks without running
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from typing import List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_DOCUMENTS = ["README.md", "docs/ARCHITECTURE.md"]
SKIP_MARKER = "<!-- docs-check: skip"
RUNNABLE_LANGUAGES = ("bash", "python")
BLOCK_TIMEOUT_SECONDS = 600

_FENCE = re.compile(r"^```([A-Za-z0-9_+-]*)\s*$")


@dataclass
class Snippet:
    document: pathlib.Path
    line: int  # 1-based line of the opening fence
    language: str
    body: str
    skipped: bool

    @property
    def label(self) -> str:
        return f"{self.document}:{self.line} [{self.language}]"


def extract_snippets(document: pathlib.Path) -> List[Snippet]:
    snippets: List[Snippet] = []
    lines = document.read_text(encoding="utf-8").splitlines()
    index = 0
    pending_skip = False
    while index < len(lines):
        stripped = lines[index].strip()
        if stripped.startswith(SKIP_MARKER):
            pending_skip = True
            index += 1
            continue
        fence = _FENCE.match(stripped)
        if fence is None:
            if stripped:
                pending_skip = False
            index += 1
            continue
        language = fence.group(1)
        start = index
        index += 1
        body_lines: List[str] = []
        while index < len(lines) and lines[index].strip() != "```":
            body_lines.append(lines[index])
            index += 1
        if index >= len(lines):
            raise SystemExit(f"{document}:{start + 1}: unterminated code fence")
        index += 1  # closing fence
        if language in RUNNABLE_LANGUAGES:
            snippets.append(
                Snippet(
                    document=document,
                    line=start + 1,
                    language=language,
                    body="\n".join(body_lines) + "\n",
                    skipped=pending_skip,
                )
            )
        pending_skip = False
    return snippets


def run_snippet(snippet: Snippet, workdir: str, env: dict) -> subprocess.CompletedProcess:
    if snippet.language == "bash":
        command = ["bash", "-euo", "pipefail", "-c", snippet.body]
    else:
        command = [sys.executable, "-c", snippet.body]
    return subprocess.run(
        command,
        cwd=workdir,
        env=env,
        capture_output=True,
        text=True,
        timeout=BLOCK_TIMEOUT_SECONDS,
    )


def check_document(document: pathlib.Path, verbose: bool) -> int:
    snippets = extract_snippets(document)
    if not snippets:
        print(f"{document}: no runnable snippets")
        return 0
    failures = 0
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory(prefix="docs-check-") as workdir:
        for snippet in snippets:
            if snippet.skipped:
                print(f"SKIP  {snippet.label}")
                continue
            try:
                completed = run_snippet(snippet, workdir, env)
            except subprocess.TimeoutExpired:
                print(f"FAIL  {snippet.label}: timed out after {BLOCK_TIMEOUT_SECONDS}s")
                failures += 1
                continue
            if completed.returncode != 0:
                failures += 1
                print(f"FAIL  {snippet.label}: exit code {completed.returncode}")
                for stream_name, text in (
                    ("stdout", completed.stdout),
                    ("stderr", completed.stderr),
                ):
                    if text.strip():
                        indented = "\n".join(
                            "        " + line for line in text.strip().splitlines()
                        )
                        print(f"      {stream_name}:\n{indented}")
            else:
                print(f"PASS  {snippet.label}")
                if verbose and completed.stdout.strip():
                    print(completed.stdout)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "documents",
        nargs="*",
        default=DEFAULT_DOCUMENTS,
        help=f"markdown files to check (default: {DEFAULT_DOCUMENTS})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the blocks without running them"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print the output of passing blocks"
    )
    arguments = parser.parse_args(argv)

    failures = 0
    for name in arguments.documents:
        document = (REPO_ROOT / name) if not os.path.isabs(name) else pathlib.Path(name)
        if not document.exists():
            print(f"error: no such document: {document}", file=sys.stderr)
            return 2
        if arguments.list:
            for snippet in extract_snippets(document):
                status = "skip" if snippet.skipped else "run"
                print(f"{status:>4}  {snippet.label}")
            continue
        failures += check_document(document, arguments.verbose)
    if failures:
        print(f"\n{failures} snippet(s) failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
