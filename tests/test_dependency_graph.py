"""Tests for Table 2: the conditional dependency graph."""

import pytest

from repro.clocks.algebra import CondFalse, CondTrue, Diff, SignalClock
from repro.errors import CausalityError
from repro.graph.dependency import build_dependency_graph
from repro.lang.kernel import normalize
from repro.lang.parser import parse_process
from repro.lang.types import infer_types
from repro.clocks.equations import extract_clock_system
from repro.clocks.resolution import resolve
from repro.programs import ALARM_SOURCE, COUNTER_SOURCE


def graph_of(source):
    program = normalize(parse_process(source))
    return program, build_dependency_graph(program)


def edges_between(graph, source, target):
    return [e for e in graph.edges if e.source == source and e.target == target]


class TestTable2:
    def test_function_dependencies(self):
        _, graph = graph_of(
            "process P = ( ? integer A, B; ! integer C; ) (| C := A + B |) end;"
        )
        assert edges_between(graph, "A", "C")
        assert edges_between(graph, "B", "C")
        # Labelled by the clock of the defined signal.
        assert edges_between(graph, "A", "C")[0].clock == SignalClock("C")

    def test_delay_has_no_dependency(self):
        _, graph = graph_of(
            "process P = ( ? integer X; ! integer ZX; ) (| ZX := X $ 1 init 0 |) end;"
        )
        assert not edges_between(graph, "X", "ZX")

    def test_when_dependency(self):
        _, graph = graph_of(
            "process P = ( ? integer U; boolean C; ! integer X; ) (| X := U when C |) end;"
        )
        assert edges_between(graph, "U", "X")
        # The condition feeds its own samplings.
        assert edges_between(graph, "C", CondTrue("C"))
        assert edges_between(graph, "C", CondFalse("C"))

    def test_default_dependencies_and_labels(self):
        _, graph = graph_of(
            "process P = ( ? integer U, V; ! integer X; ) (| X := U default V |) end;"
        )
        left = edges_between(graph, "U", "X")[0]
        right = edges_between(graph, "V", "X")[0]
        assert left.clock == SignalClock("U")
        assert right.clock == Diff(SignalClock("V"), SignalClock("U"))

    def test_clock_to_signal_edges(self):
        _, graph = graph_of(
            "process P = ( ? integer A; ! integer B; ) (| B := A |) end;"
        )
        assert edges_between(graph, SignalClock("B"), "B")

    def test_literal_operands_contribute_nothing(self):
        _, graph = graph_of(
            "process P = ( ? boolean C; ! integer X; ) (| X := 1 when C |) end;"
        )
        sources = {e.source for e in graph.predecessors("X")}
        assert sources == {SignalClock("X")}

    def test_counter_graph_shape(self):
        program, graph = graph_of(COUNTER_SOURCE)
        # N depends on ZN (through the addition) but ZN does not depend on N.
        assert graph.value_predecessors("N")
        assert "N" not in graph.value_predecessors("ZN")
        assert graph.node_count() >= len(program.signals)


class TestCycles:
    def test_counter_has_no_instantaneous_cycle(self):
        _, graph = graph_of(COUNTER_SOURCE)
        assert graph.cyclic_components() == []
        graph.check_causality()

    def test_direct_cycle_detected(self):
        _, graph = graph_of(
            "process P = ( ? integer A; ! integer X, Y; ) (| X := Y + A | Y := X + A |) end;"
        )
        assert graph.cyclic_components()
        with pytest.raises(CausalityError):
            graph.check_causality()

    def test_cycle_broken_by_delay_is_accepted(self):
        _, graph = graph_of(
            "process P = ( ? integer A; ! integer X; ) (| X := ZX + A | ZX := X $ 1 init 0 |)"
            " where integer ZX; end;"
        )
        graph.check_causality()

    def test_clock_aware_check_accepts_exclusive_cycle(self):
        # X and Y depend on each other, but on complementary clocks: the meet
        # of the labels is empty, so no instant activates the whole cycle.
        source = """
        process P =
          ( ? integer A; boolean C;
            ! integer X, Y; )
          (| X := (Y when C) default A
           | Y := (X when (not C)) default A
           |)
        end;
        """
        program = normalize(parse_process(source))
        types = infer_types(program)
        hierarchy = resolve(extract_clock_system(program, types))
        graph = build_dependency_graph(program)
        # Statically cyclic ...
        assert graph.cyclic_components()
        # ... but no instant activates every edge of the cycle at once.
        graph.check_causality(hierarchy)

    def test_strongly_connected_components_cover_all_nodes(self):
        _, graph = graph_of(ALARM_SOURCE)
        components = graph.strongly_connected_components()
        nodes = [node for component in components for node in component]
        assert sorted(map(str, nodes)) == sorted(map(str, graph.nodes))

    def test_alarm_graph_is_causal(self, alarm_result):
        alarm_result.graph.check_causality(alarm_result.hierarchy)
