"""Tests for signal type inference."""

import pytest

from repro.errors import TypeError_
from repro.lang.kernel import normalize
from repro.lang.parser import parse_process
from repro.lang.types import SignalType, default_value, infer_types, type_of_constant, unify
from repro.programs import ALARM_SOURCE, COUNTER_SOURCE, WATCHDOG_SOURCE


def types_of(source):
    program = normalize(parse_process(source))
    return program, infer_types(program)


class TestUnify:
    def test_identity(self):
        assert unify(SignalType.INTEGER, SignalType.INTEGER) is SignalType.INTEGER

    def test_unknown_propagates(self):
        assert unify(None, SignalType.REAL) is SignalType.REAL
        assert unify(SignalType.REAL, None) is SignalType.REAL
        assert unify(None, None) is None

    def test_event_and_boolean(self):
        assert unify(SignalType.EVENT, SignalType.BOOLEAN) is SignalType.BOOLEAN

    def test_numeric_promotion(self):
        assert unify(SignalType.INTEGER, SignalType.REAL) is SignalType.REAL

    def test_clash_raises(self):
        with pytest.raises(TypeError_):
            unify(SignalType.BOOLEAN, SignalType.INTEGER)

    def test_constant_types(self):
        assert type_of_constant(True) is SignalType.BOOLEAN
        assert type_of_constant(3) is SignalType.INTEGER
        assert type_of_constant(1.5) is SignalType.REAL

    def test_default_values(self):
        assert default_value(SignalType.BOOLEAN) is False
        assert default_value(SignalType.INTEGER) == 0
        assert default_value(SignalType.REAL) == 0.0


class TestInference:
    def test_declared_types_are_kept(self):
        program, types = types_of(COUNTER_SOURCE)
        assert types["RESET"] is SignalType.BOOLEAN
        assert types["N"] is SignalType.INTEGER
        assert types["ZN"] is SignalType.INTEGER

    def test_intermediates_get_types(self):
        program, types = types_of(COUNTER_SOURCE)
        for name in program.locals:
            assert types[name] in (SignalType.INTEGER, SignalType.BOOLEAN)

    def test_alarm_intermediates_are_boolean(self):
        program, types = types_of(ALARM_SOURCE)
        for name in program.signals:
            assert types[name] is SignalType.BOOLEAN

    def test_relational_result_is_boolean(self):
        program, types = types_of(WATCHDOG_SOURCE)
        assert types["ALARM"] is SignalType.BOOLEAN
        assert types["COUNT"] is SignalType.INTEGER

    def test_event_type(self):
        _, types = types_of(
            "process P = ( ? integer X; ! event E; ) (| E := event X |) end;"
        )
        assert types["E"] is SignalType.EVENT

    def test_real_arithmetic(self):
        _, types = types_of(
            "process P = ( ? real X; ! real Y; ) (| Y := X * 2.0 |) end;"
        )
        assert types["Y"] is SignalType.REAL

    def test_type_clash_is_reported(self):
        with pytest.raises(TypeError_):
            types_of(
                "process P = ( ? integer A; boolean B; ! integer C; ) (| C := A + B |) end;"
            )

    def test_propagation_through_default_and_when(self):
        _, types = types_of(
            "process P = ( ? integer A; boolean C; ! integer D; )"
            " (| D := (A when C) default ZD | ZD := D $ 1 init 0 |)"
            " where integer ZD; end;"
        )
        assert types["D"] is SignalType.INTEGER
        assert types["ZD"] is SignalType.INTEGER

    def test_boolean_operator_forces_boolean_operands(self):
        _, types = types_of(
            "process P = ( ? boolean A, B; ! boolean C; ) (| C := A and (not B) |) end;"
        )
        assert types["C"] is SignalType.BOOLEAN
