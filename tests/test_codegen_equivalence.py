"""Differential testing: generated code vs the reference interpreter.

The compiled step function (in both styles) decides which inputs it needs at
each reaction from the resolved clock hierarchy; the reference interpreter
replays the same reactions directly from the kernel semantics.  Any
divergence in presence or value is a compilation bug.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import compile_source
from repro.programs import (
    ACCUMULATOR_SOURCE,
    ALARM_SOURCE,
    COUNTER_SOURCE,
    WATCHDOG_SOURCE,
    generate_control_program,
    ControlProgramSpec,
)
from repro.runtime import ReactiveExecutor, random_oracle


def check_against_interpreter(result, steps=30, seed=0):
    """Run the compiled process and replay its trace on the interpreter."""
    process = result.executable
    process.reset()
    executor = ReactiveExecutor(process)
    trace = executor.run(steps, random_oracle(result.types, seed=seed))
    interpreter = result.interpreter()
    for index, step in enumerate(trace):
        expected = interpreter.step(step.inputs, present=step.observations.keys())
        for name, value in step.observations.items():
            assert expected.get(name) == value, (
                f"step {index}: signal {name} = {value!r}, interpreter says "
                f"{expected.get(name)!r}"
            )
        assert set(expected) == set(step.observations), (
            f"step {index}: presence mismatch "
            f"{set(expected) ^ set(step.observations)}"
        )
    return trace


def check_styles_agree(result, steps=30, seed=0):
    result.executable.reset()
    result.executable_flat.reset()
    nested = ReactiveExecutor(result.executable).run(
        steps, random_oracle(result.types, seed=seed)
    )
    flat = ReactiveExecutor(result.executable_flat).run(
        steps, random_oracle(result.types, seed=seed)
    )
    for left, right in zip(nested, flat):
        assert left.observations == right.observations
        assert left.outputs == right.outputs


PROGRAMS = {
    "counter": COUNTER_SOURCE,
    "accumulator": ACCUMULATOR_SOURCE,
    "watchdog": WATCHDOG_SOURCE,
    "alarm": ALARM_SOURCE,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_generated_code_matches_interpreter(name):
    result = compile_source(PROGRAMS[name], build_flat=True)
    check_against_interpreter(result, steps=40, seed=11)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_flat_and_hierarchical_styles_agree(name):
    result = compile_source(PROGRAMS[name], build_flat=True)
    check_styles_agree(result, steps=40, seed=23)


def test_generated_control_program_matches_interpreter():
    source = generate_control_program(
        ControlProgramSpec("UNIT", modules=3, branching=2, sensors=2)
    )
    result = compile_source(source, build_flat=True)
    check_against_interpreter(result, steps=25, seed=3)
    check_styles_agree(result, steps=25, seed=5)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_alarm_differential_random_seeds(seed):
    """Property: for any input sequence, generated ALARM code matches the semantics."""
    result = compile_source(ALARM_SOURCE)
    check_against_interpreter(result, steps=15, seed=seed)


@settings(max_examples=20, deadline=None)
@given(
    resets=st.lists(st.booleans(), min_size=1, max_size=40),
)
def test_counter_always_counts_reactions_since_last_reset(resets):
    """Property: N equals the number of reactions since the last true RESET."""
    result = compile_source(COUNTER_SOURCE)
    process = result.executable
    process.reset()
    expected = 0
    for reset in resets:
        expected = 0 if reset else expected + 1
        assert process.step({"RESET": reset})["N"] == expected


@settings(max_examples=20, deadline=None)
@given(
    values=st.lists(
        st.tuples(st.integers(-100, 100), st.booleans()), min_size=1, max_size=30
    )
)
def test_accumulator_total_matches_running_sum(values):
    """Property: TOTAL, when emitted, equals the running sum of X."""
    result = compile_source(ACCUMULATOR_SOURCE)
    process = result.executable
    process.reset()
    running = 0
    for x, emit in values:
        running += x
        outputs = process.step({"X": x, "EMIT": emit})
        if emit:
            assert outputs["TOTAL"] == running
        else:
            assert outputs == {}
