"""The federated compile tier: ring, routing, failover, degradation.

Ring tests are pure; gateway tests route over real ``ThreadedDaemon``
backends (in-process asyncio servers, real sockets) by driving the
gateway's engine (`handle_request`) directly or its own server through
:class:`RemoteCompiler`; one test SIGTERMs a real ``python -m repro
gateway`` process.
"""

import os
import signal
import threading
import time

import pytest

from repro.lang.kernel import normalize
from repro.lang.parser import parse_process
from repro.programs import COUNTER_SOURCE, WATCHDOG_SOURCE, benchmark_source
from repro.service import (
    CompileGateway,
    CompileStore,
    HashRing,
    RemoteCompiler,
    RemoteError,
    ThreadedDaemon,
    parse_backend_spec,
)

SOURCES = [COUNTER_SOURCE, WATCHDOG_SOURCE] + [
    benchmark_source(name) for name in ("STOPWATCH", "CHRONO", "SUPERVISOR", "PACE_MAKER")
]


def spec_of(daemon: ThreadedDaemon) -> str:
    host, port = daemon.address
    return f"{host}:{port}"


def fingerprint_of(source: str) -> str:
    return normalize(parse_process(source)).fingerprint()


def counter_variant(n: int) -> str:
    # A distinct init constant gives a distinct normalized-kernel
    # fingerprint, i.e. a fresh routing key.
    return COUNTER_SOURCE.replace("COUNT", f"COUNT_{n}").replace("init 0", f"init {n}")


def covering_sources(*specs: str) -> list:
    """Sources guaranteed to give every backend at least one ring key.

    Ring positions depend on the backends' ephemeral ports, so a fixed
    corpus cannot promise that every node owns something; extend it with
    counter variants until the split covers all of ``specs``.
    """
    ring = HashRing(list(specs))
    pool = list(SOURCES)
    for n in range(1, 65):
        if {ring.node_for(fingerprint_of(source)) for source in pool} == set(specs):
            return pool
        pool.append(counter_variant(n))
    pytest.fail("hash ring starved a backend across 64 extra keys (regression)")


def _rebind_daemon(port: int, attempts: int = 10) -> ThreadedDaemon:
    """Restart a daemon on a just-released port, tolerating parallel CI.

    Between the stop and the rebind another test process may grab the
    ephemeral port (or the kernel may hold it briefly); retry, and if it
    stays taken by somebody else, skip rather than flake.
    """
    last_error = None
    for _ in range(attempts):
        try:
            return ThreadedDaemon(port=port).start()
        except (RuntimeError, OSError) as error:
            last_error = error
            time.sleep(0.1)
    pytest.skip(f"port {port} was reclaimed by another process: {last_error}")


def gateway_over(*daemons: ThreadedDaemon, **options) -> CompileGateway:
    options.setdefault("health_interval", 0)  # sweeps are explicit in tests
    options.setdefault("retry_backoff", 0.01)
    options.setdefault("connect_timeout", 2.0)
    return CompileGateway(backends=[spec_of(d) for d in daemons], **options)


class TestHashRing:
    def test_ownership_is_deterministic_and_total(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key-{i}" for i in range(300)]
        owners = {key: ring.node_for(key) for key in keys}
        assert set(owners.values()) == {"a", "b", "c"}  # no node starves
        assert all(ring.node_for(key) == owners[key] for key in keys)

    def test_preference_starts_with_the_owner_and_covers_all_nodes(self):
        ring = HashRing(["a", "b", "c", "d"])
        for key in ("x", "y", "z"):
            preference = ring.preference(key)
            assert preference[0] == ring.node_for(key)
            assert sorted(preference) == ["a", "b", "c", "d"]

    def test_removal_only_remaps_the_removed_nodes_keys(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key-{i}" for i in range(500)]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove("c")
        for key in keys:
            if before[key] != "c":
                assert ring.node_for(key) == before[key]
            else:
                assert ring.node_for(key) in ("a", "b")

    def test_adding_a_node_back_restores_its_keys(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key-{i}" for i in range(200)]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove("b")
        ring.add("b")
        assert all(ring.node_for(key) == before[key] for key in keys)

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.node_for("anything") is None
        assert ring.preference("anything") == []
        assert len(ring) == 0

    def test_membership_errors(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(ValueError):
            ring.remove("b")

    def test_virtual_nodes_spread_the_keyspace(self):
        ring = HashRing(["a", "b", "c", "d"], replicas=128)
        counts = {}
        for i in range(4000):
            owner = ring.node_for(f"key-{i}")
            counts[owner] = counts.get(owner, 0) + 1
        # With 128 virtual nodes each backend owns a sane share; the bound
        # is loose on purpose (consistent hashing is not perfectly even).
        assert all(count > 400 for count in counts.values())


class TestBackendSpecs:
    def test_tcp_and_socket_specs(self):
        assert parse_backend_spec("127.0.0.1:7420") == ("127.0.0.1", 7420, None)
        assert parse_backend_spec("/tmp/daemon.sock") == (None, None, "/tmp/daemon.sock")
        assert parse_backend_spec("./d.sock") == (None, None, "./d.sock")

    def test_invalid_specs_are_rejected(self):
        with pytest.raises(ValueError):
            parse_backend_spec("host:notaport")
        with pytest.raises(ValueError):
            parse_backend_spec(":7420")
        with pytest.raises(ValueError):
            CompileGateway(backends=["host:nope"])

    def test_duplicate_backend_is_rejected(self):
        gateway = CompileGateway(backends=["127.0.0.1:1"], health_interval=0)
        with pytest.raises(ValueError):
            gateway.add_backend("127.0.0.1:1")
        with pytest.raises(ValueError):
            gateway.remove_backend("127.0.0.1:2")


class TestRouting:
    def test_routes_consistently_and_reuses_backend_caches(self):
        with ThreadedDaemon() as one, ThreadedDaemon() as two:
            gateway = gateway_over(one, two)
            owners = {}
            for source in SOURCES:
                response = gateway.handle_request({"op": "compile", "source": source})
                assert response["ok"], response
                assert response["backend"] in (spec_of(one), spec_of(two))
                owners[source] = response["backend"]
            # Repeat traffic: same owner, answered from its memory tier.
            for source in SOURCES:
                response = gateway.handle_request({"op": "compile", "source": source})
                assert response["backend"] == owners[source]
                assert response["origin"] == "memory"

    def test_both_backends_get_traffic(self):
        with ThreadedDaemon() as one, ThreadedDaemon() as two:
            gateway = gateway_over(one, two)
            sources = covering_sources(spec_of(one), spec_of(two))
            backends = {
                gateway.handle_request({"op": "compile", "source": source})["backend"]
                for source in sources
            }
            assert backends == {spec_of(one), spec_of(two)}

    def test_garbage_is_rejected_at_the_gateway(self):
        with ThreadedDaemon() as one:
            gateway = gateway_over(one)
            response = gateway.handle_request({"op": "compile", "source": "process ="})
            assert not response["ok"]
            assert response["error"]["code"] == "parse-error"
            assert gateway.handle_request({"op": "stats"})["gateway"]["routed"] == 0

    def test_stale_ring_after_backend_removal(self):
        with ThreadedDaemon() as one, ThreadedDaemon() as two:
            gateway = gateway_over(one, two)
            gateway.remove_backend(spec_of(one))
            for source in SOURCES:
                response = gateway.handle_request({"op": "compile", "source": source})
                assert response["ok"]
                assert response["backend"] == spec_of(two)


class TestFailover:
    def test_dead_backend_fails_over_to_the_next_ring_node(self):
        with ThreadedDaemon() as one:
            two = ThreadedDaemon().start()
            gateway = gateway_over(one, two, recheck_interval=30.0)
            sources = covering_sources(spec_of(one), spec_of(two))
            owners = {
                source: gateway.handle_request({"op": "compile", "source": source})["backend"]
                for source in sources
            }
            two.stop()  # one backend dies; its keys must fail over
            survivors = spec_of(one)
            for source in sources:
                response = gateway.handle_request({"op": "compile", "source": source})
                assert response["ok"], response
                assert response["backend"] == survivors
            stats = gateway.handle_request({"op": "stats"})
            assert stats["gateway"]["retried"] >= 1
            assert stats["gateway"]["healthy"] == 1
            # The survivor now answers the dead node's keys too.
            assert any(owner != survivors for owner in owners.values())

    def test_recovered_backend_wins_its_keys_back(self):
        one = ThreadedDaemon().start()
        try:
            with ThreadedDaemon() as two:
                gateway = gateway_over(one, two, recheck_interval=0.0)
                spec_one = spec_of(one)
                sources = covering_sources(spec_one, spec_of(two))
                owned = [
                    source
                    for source in sources
                    if gateway.handle_request({"op": "compile", "source": source})["backend"]
                    == spec_one
                ]
                assert owned, "covering_sources promised backend one a key"
                port = one.address[1]
                one.stop()
                gateway.handle_request({"op": "compile", "source": owned[0]})
                assert gateway.check_backends()[spec_one] is False
                # Restart on the same port; with recheck due, traffic returns.
                one = _rebind_daemon(port)
                assert gateway.check_backends()[spec_one] is True
                response = gateway.handle_request({"op": "compile", "source": owned[0]})
                assert response["backend"] == spec_one
        finally:
            one.stop()

    def test_local_fallback_when_every_backend_is_down(self):
        daemon = ThreadedDaemon().start()
        spec = spec_of(daemon)
        daemon.stop()
        gateway = CompileGateway(
            backends=[spec], health_interval=0, retry_backoff=0.01, connect_timeout=1.0
        )
        response = gateway.handle_request({"op": "compile", "source": COUNTER_SOURCE})
        assert response["ok"]
        assert response["backend"] == "local"
        assert response["name"] == "COUNT"
        stats = gateway.handle_request({"op": "stats"})
        assert stats["gateway"]["failed_over"] == 1

    def test_no_backend_error_when_fallback_is_disabled(self):
        daemon = ThreadedDaemon().start()
        spec = spec_of(daemon)
        daemon.stop()
        gateway = CompileGateway(
            backends=[spec],
            local_fallback=False,
            health_interval=0,
            retry_backoff=0.01,
            connect_timeout=1.0,
        )
        response = gateway.handle_request({"op": "compile", "source": COUNTER_SOURCE})
        assert not response["ok"]
        assert response["error"]["code"] == "no-backend"

    def test_health_sweep_marks_backends(self):
        with ThreadedDaemon() as alive:
            dead = ThreadedDaemon().start()
            dead_spec = spec_of(dead)
            dead.stop()
            gateway = gateway_over(alive, connect_timeout=1.0)
            gateway.add_backend(dead_spec)
            health = gateway.check_backends()
            assert health == {spec_of(alive): True, dead_spec: False}


class TestSharedStore:
    def test_any_backends_compile_warms_every_node(self, tmp_path):
        """The shared store is a fleet-wide artifact tier: after backend A
        compiles a program, backend B answers it from the store without
        compiling -- exactly what the restarted node in a rolling restart
        sees."""
        store = CompileStore(tmp_path / "fleet")
        with ThreadedDaemon(store=store) as one:
            two = ThreadedDaemon(store=store).start()
            try:
                gateway = gateway_over(one, two, recheck_interval=30.0)
                sources = covering_sources(spec_of(one), spec_of(two))
                origins = {}
                for source in sources:
                    response = gateway.handle_request({"op": "compile", "source": source})
                    origins[source] = (response["backend"], response["origin"])
                compiled_on_two = [
                    source
                    for source, (backend, origin) in origins.items()
                    if backend == spec_of(two) and origin == "compiled"
                ]
                assert compiled_on_two, "covering_sources promised backend two a key"
            finally:
                two.stop()
            for source in compiled_on_two:
                response = gateway.handle_request({"op": "compile", "source": source})
                assert response["ok"]
                assert response["backend"] == spec_of(one)
                assert response["origin"] == "store"  # warmed by the dead sibling

    def test_store_ops_replicate_records_between_daemons(self, tmp_path):
        """store-get/store-put move artifact records over the wire when a
        shared directory is not possible."""
        with ThreadedDaemon(store=tmp_path / "a") as one, ThreadedDaemon(
            store=tmp_path / "b"
        ) as two:
            with RemoteCompiler(*one.address) as source_client, RemoteCompiler(
                *two.address
            ) as target_client:
                result = source_client.compile(COUNTER_SOURCE)
                record = source_client.store_get(result.fingerprint)
                assert record is not None
                assert record["fingerprint"] == result.fingerprint
                assert target_client.store_get(result.fingerprint) is None
                assert target_client.store_put(record) is True
                replayed = target_client.compile(COUNTER_SOURCE)
                assert replayed.origin == "memory"  # injected, never compiled
                assert (
                    target_client.stats()["daemon"]["compiles"] == 0
                )


class TestGatewayServer:
    def test_end_to_end_over_sockets(self, tmp_path):
        store = CompileStore(tmp_path / "fleet")
        with ThreadedDaemon(store=store) as one, ThreadedDaemon(store=store) as two:
            gateway = CompileGateway(
                backends=[spec_of(one), spec_of(two)],
                store=store,
                health_interval=0.2,
                retry_backoff=0.01,
            )
            with ThreadedDaemon(daemon=gateway) as front:
                with RemoteCompiler(*front.address, retries=1) as client:
                    assert client.ping() >= 1
                    sources = covering_sources(spec_of(one), spec_of(two))
                    results = [client.compile(source) for source in sources]
                    assert {r.backend for r in results} == {spec_of(one), spec_of(two)}
                    assert all(not r.cached for r in results)
                    again = client.compile(sources[0])
                    assert again.cached and again.backend == results[0].backend
                    stats = client.stats()
                    assert stats["gateway"]["routed"] == len(sources) + 1
                    assert stats["gateway"]["healthy"] == 2
                    assert stats["gateway"]["fleet"]["compiles"] == len(sources)
                    assert len(stats["backends"]) == 2

    def test_clear_cache_broadcasts_to_backends(self):
        with ThreadedDaemon() as one, ThreadedDaemon() as two:
            gateway = gateway_over(one, two)
            for source in SOURCES[:2]:
                gateway.handle_request({"op": "compile", "source": source})
            response = gateway.handle_request({"op": "clear-cache"})
            assert response["ok"]
            assert sorted(response["backends_cleared"]) == sorted(
                [spec_of(one), spec_of(two)]
            )
            for daemon in (one, two):
                with RemoteCompiler(*daemon.address) as client:
                    assert client.stats()["daemon"]["record_entries"] == 0

    def test_sigterm_drains_a_real_gateway_process(self, tmp_path, cli_server):
        """`python -m repro gateway` + SIGTERM: clean exit, socket removed.

        The ``cli_server`` fixture owns the child's lifetime: even if an
        assertion fires before the SIGTERM, teardown reaps the process.
        """
        socket_path = str(tmp_path / "gateway.sock")
        process = cli_server("gateway", "--socket", socket_path)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline and not os.path.exists(socket_path):
            time.sleep(0.05)
        assert os.path.exists(socket_path), "gateway never bound its socket"
        with RemoteCompiler(socket_path=socket_path) as client:
            # No backends registered: the gateway compiles locally.
            result = client.compile(COUNTER_SOURCE)
            assert result.name == "COUNT" and result.backend == "local"
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=20) == 0
        assert not os.path.exists(socket_path)


class TestClientRetries:
    def test_retrying_client_survives_a_daemon_restart(self, tmp_path):
        socket_path = str(tmp_path / "daemon.sock")
        first = ThreadedDaemon(socket_path=socket_path).start()
        client = RemoteCompiler(socket_path=socket_path, retries=3, retry_backoff=0.05)
        try:
            assert client.compile(COUNTER_SOURCE).name == "COUNT"
            first.stop()
            second = ThreadedDaemon(socket_path=socket_path).start()
            try:
                # The old connection is dead; retries reconnect transparently.
                assert client.compile(COUNTER_SOURCE).name == "COUNT"
            finally:
                second.stop()
        finally:
            client.close()
            first.stop()

    def test_default_client_stays_failed_after_transport_loss(self, tmp_path):
        socket_path = str(tmp_path / "daemon.sock")
        daemon = ThreadedDaemon(socket_path=socket_path).start()
        client = RemoteCompiler(socket_path=socket_path)
        try:
            client.compile(COUNTER_SOURCE)
            daemon.stop()
            with pytest.raises(RemoteError) as first_failure:
                client.compile(COUNTER_SOURCE)
            assert first_failure.value.transport
            with pytest.raises(RemoteError) as reuse:
                client.ping()
            assert reuse.value.code == "connection-unusable"
        finally:
            client.close()
            daemon.stop()

    def test_structured_errors_are_never_retried(self):
        with ThreadedDaemon() as daemon:
            with RemoteCompiler(*daemon.address, retries=5) as client:
                started = time.perf_counter()
                with pytest.raises(RemoteError) as failure:
                    client.compile("process =")
                assert failure.value.code == "parse-error"
                assert not failure.value.transport
                # 5 retries with backoff would take visible time; a
                # structured error must return in one round-trip.
                assert time.perf_counter() - started < 1.0

    def test_constructor_retries_wait_for_a_slow_daemon(self, tmp_path):
        socket_path = str(tmp_path / "late.sock")
        holder = []

        def start_late():
            time.sleep(0.3)
            holder.append(ThreadedDaemon(socket_path=socket_path).start())

        starter = threading.Thread(target=start_late)
        starter.start()
        try:
            client = RemoteCompiler(
                socket_path=socket_path, retries=20, retry_backoff=0.05
            )
            with client:
                assert client.ping() >= 1
        finally:
            starter.join()
            for daemon in holder:
                daemon.stop()
