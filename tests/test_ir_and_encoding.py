"""Tests for the step IR builders and the boolean value encoding."""

import pytest

from repro import GenerationStyle, compile_source
from repro.bdd import BDDManager
from repro.clocks.encoding import ValueEncoder
from repro.codegen.ir import (
    ComputeValue,
    EmitOutput,
    Guard,
    ReadInput,
    ReadRegister,
    SetFlagFormula,
    SetFlagPartition,
    SetFlagRoot,
    UpdateRegister,
    build_step_ir,
)
from repro.lang.kernel import normalize
from repro.lang.parser import parse_process
from repro.lang.types import infer_types
from repro.programs import ALARM_SOURCE, COUNTER_SOURCE


def flatten(statements):
    for statement in statements:
        yield statement
        if isinstance(statement, Guard):
            yield from flatten(statement.body)


def max_guard_depth(statements, depth=0):
    maximum = depth
    for statement in statements:
        if isinstance(statement, Guard):
            maximum = max(maximum, max_guard_depth(statement.body, depth + 1))
    return maximum


class TestStepIR:
    def test_registers_collected_with_initial_values(self, counter_result):
        ir = counter_result.step_ir()
        assert len(ir.registers) == 1
        register = ir.registers[0]
        assert register.target == "ZN"
        assert register.source == "N"
        assert register.initial == 0

    def test_flat_ir_has_no_nested_guards(self, counter_result):
        ir = counter_result.step_ir(GenerationStyle.FLAT)
        assert max_guard_depth(ir.statements) == 1
        assert ir.initialized_flags == []

    def test_hierarchical_ir_nests_guards(self, alarm_result):
        ir = alarm_result.step_ir(GenerationStyle.HIERARCHICAL)
        assert max_guard_depth(ir.statements) >= 2
        assert ir.initialized_flags  # non-root flags need initialization

    def test_every_scheduled_signal_is_assigned_once(self, alarm_result):
        for style in (GenerationStyle.FLAT, GenerationStyle.HIERARCHICAL):
            ir = alarm_result.step_ir(style)
            assigned = [
                s.signal
                for s in flatten(ir.statements)
                if isinstance(s, (ComputeValue, ReadInput, ReadRegister))
            ]
            assert sorted(assigned) == sorted(alarm_result.schedule.signal_class)

    def test_outputs_emitted_for_output_signals_only(self, alarm_result):
        ir = alarm_result.step_ir()
        emitted = {s.signal for s in flatten(ir.statements) if isinstance(s, EmitOutput)}
        assert emitted == {"ALARM"}

    def test_register_updates_present_in_both_styles(self, counter_result):
        for style in (GenerationStyle.FLAT, GenerationStyle.HIERARCHICAL):
            ir = counter_result.step_ir(style)
            updates = [s for s in flatten(ir.statements) if isinstance(s, UpdateRegister)]
            assert len(updates) == 1
            assert updates[0].register == "z_ZN"

    def test_flag_statements_cover_all_classes_in_flat_style(self, alarm_result):
        ir = alarm_result.step_ir(GenerationStyle.FLAT)
        flag_statements = [
            s
            for s in flatten(ir.statements)
            if isinstance(s, (SetFlagRoot, SetFlagPartition, SetFlagFormula))
        ]
        classes = [c for c in alarm_result.hierarchy.classes if not c.is_null]
        assert len(flag_statements) == len(classes)

    def test_root_flags_listed(self, alarm_result):
        ir = alarm_result.step_ir()
        assert len(ir.root_flags) == 1
        class_id, key, default = ir.root_flags[0]
        assert default is True

    def test_partition_guard_inside_parent_omits_parent_test(self, alarm_result):
        """Inside its parent's guard, a partition flag needs no parent conjunct."""
        ir = alarm_result.step_ir(GenerationStyle.HIERARCHICAL)

        def partitions_inside_guards(statements, inside):
            for statement in statements:
                if isinstance(statement, SetFlagPartition) and inside:
                    yield statement
                if isinstance(statement, Guard):
                    yield from partitions_inside_guards(statement.body, True)

        nested_partitions = list(partitions_inside_guards(ir.statements, False))
        assert nested_partitions
        assert any(p.parent_id is None for p in nested_partitions)


class TestValueEncoder:
    def _encoder(self, source):
        program = normalize(parse_process(source))
        types = infer_types(program)
        return program, ValueEncoder(BDDManager(), program, types)

    def test_input_gets_opaque_variable(self):
        _, encoder = self._encoder(
            "process P = ( ? boolean C; ! boolean X; ) (| X := C |) end;"
        )
        assert encoder.value_of("C") == encoder.value_of("C")
        assert encoder.is_opaque("C")

    def test_negation_shares_the_variable(self):
        _, encoder = self._encoder(
            "process P = ( ? boolean C; ! boolean X; ) (| X := not C |) end;"
        )
        assert encoder.value_of("X") == ~encoder.value_of("C")
        assert not encoder.is_opaque("X")

    def test_conjunction_and_disjunction_structural(self):
        _, encoder = self._encoder(
            "process P = ( ? boolean A, B; ! boolean X, Y; )"
            " (| X := A and B | Y := A or B |) end;"
        )
        a, b = encoder.value_of("A"), encoder.value_of("B")
        assert encoder.value_of("X") == (a & b)
        assert encoder.value_of("Y") == (a | b)

    def test_event_is_constant_true(self):
        _, encoder = self._encoder(
            "process P = ( ? integer N; ! boolean E; ) (| E := event N |) end;"
        )
        assert encoder.value_of("E").is_true

    def test_when_passes_the_source_value_through(self):
        _, encoder = self._encoder(
            "process P = ( ? boolean A, C; ! boolean X; ) (| X := A when C |) end;"
        )
        assert encoder.value_of("X") == encoder.value_of("A")

    def test_delay_and_default_are_opaque(self):
        _, encoder = self._encoder(
            "process P = ( ? boolean A, B; ! boolean X, Y; )"
            " (| X := A default B | Y := A $ 1 init false |) end;"
        )
        assert encoder.is_opaque("X") is False or encoder.value_of("X") is not None
        encoder.value_of("X")
        encoder.value_of("Y")
        assert encoder.is_opaque("X")
        assert encoder.is_opaque("Y")

    def test_non_boolean_signal_rejected(self):
        _, encoder = self._encoder(
            "process P = ( ? integer N; ! integer M; ) (| M := N + 1 |) end;"
        )
        with pytest.raises(ValueError):
            encoder.value_of("N")
