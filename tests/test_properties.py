"""Property-based tests of the clock calculus and the frontend.

* clock expressions over a resolved program form a boolean lattice: the BDD
  encoding must satisfy the usual algebraic laws and be consistent with the
  inclusion relation embodied in the clock tree;
* printing a parsed expression and re-parsing it yields the same tree
  (parser/printer round trip);
* the flat and hierarchical generated codes agree on arbitrary input
  sequences for the counter program (stateful behavioural property).
"""

from hypothesis import given, settings, strategies as st

from repro import compile_source
from repro.clocks.algebra import (
    CondFalse,
    CondTrue,
    Diff,
    Join,
    Meet,
    NULL_CLOCK,
    SignalClock,
)
from repro.lang.ast import BinaryOp, Constant, Default, SignalRef, UnaryOp, When
from repro.lang.parser import parse_expression
from repro.programs import ALARM_SOURCE, COUNTER_SOURCE


# ---------------------------------------------------------------------------
# Clock algebra vs BDD encoding
# ---------------------------------------------------------------------------

_ALARM = compile_source(ALARM_SOURCE)
_HIERARCHY = _ALARM.hierarchy
_ATOMS = [
    SignalClock("BRAKE"),
    SignalClock("STOP_OK"),
    SignalClock("ALARM"),
    SignalClock("BRAKING_STATE"),
    CondTrue("BRAKING_STATE"),
    CondFalse("BRAKING_STATE"),
    CondTrue("STOP_OK"),
    CondFalse("LIMIT_REACHED"),
    NULL_CLOCK,
]


@st.composite
def clock_expressions(draw, depth=3):
    if depth == 0:
        return draw(st.sampled_from(_ATOMS))
    return draw(
        st.one_of(
            st.sampled_from(_ATOMS),
            st.builds(Meet, clock_expressions(depth=depth - 1), clock_expressions(depth=depth - 1)),
            st.builds(Join, clock_expressions(depth=depth - 1), clock_expressions(depth=depth - 1)),
            st.builds(Diff, clock_expressions(depth=depth - 1), clock_expressions(depth=depth - 1)),
        )
    )


@settings(max_examples=120, deadline=None)
@given(clock_expressions(), clock_expressions())
def test_meet_and_join_are_commutative(left, right):
    assert _HIERARCHY.encode(Meet(left, right)) == _HIERARCHY.encode(Meet(right, left))
    assert _HIERARCHY.encode(Join(left, right)) == _HIERARCHY.encode(Join(right, left))


@settings(max_examples=120, deadline=None)
@given(clock_expressions())
def test_lattice_identities(clock):
    encoded = _HIERARCHY.encode(clock)
    assert _HIERARCHY.encode(Meet(clock, clock)) == encoded
    assert _HIERARCHY.encode(Join(clock, clock)) == encoded
    assert _HIERARCHY.encode(Join(clock, NULL_CLOCK)) == encoded
    assert _HIERARCHY.encode(Meet(clock, NULL_CLOCK)).is_false
    assert _HIERARCHY.encode(Diff(clock, clock)).is_false
    assert _HIERARCHY.encode(Diff(clock, NULL_CLOCK)) == encoded


@settings(max_examples=120, deadline=None)
@given(clock_expressions(), clock_expressions())
def test_difference_relates_meet_and_join(left, right):
    """k1 = (k1 \\ k2) ∨ (k1 ∧ k2) and the two parts are disjoint."""
    difference = _HIERARCHY.encode(Diff(left, right))
    intersection = _HIERARCHY.encode(Meet(left, right))
    assert (difference | intersection) == _HIERARCHY.encode(left)
    assert (difference & intersection).is_false


@settings(max_examples=120, deadline=None)
@given(clock_expressions(), clock_expressions())
def test_subclock_is_a_partial_order_consistent_with_meet(left, right):
    """k1 ⊆ k2 iff k1 ∧ k2 = k1."""
    included = _HIERARCHY.is_subclock(left, right)
    assert included == (_HIERARCHY.encode(Meet(left, right)) == _HIERARCHY.encode(left))
    # Meet is a lower bound for both operands.
    assert _HIERARCHY.is_subclock(Meet(left, right), left)
    assert _HIERARCHY.is_subclock(Meet(left, right), right)
    # Join is an upper bound for both operands.
    assert _HIERARCHY.is_subclock(left, Join(left, right))


def test_tree_embodies_inclusion():
    """Every node of the clock forest is included in each of its ancestors."""
    for node in _HIERARCHY.forest.iter_nodes():
        for ancestor in node.ancestors():
            assert node.clock_class.bdd.implies(ancestor.clock_class.bdd)


# ---------------------------------------------------------------------------
# Parser / printer round trip
# ---------------------------------------------------------------------------

_NAMES = st.sampled_from(["X", "Y", "Z", "ALPHA", "B_2"])


@st.composite
def surface_expressions(draw, depth=3):
    if depth == 0:
        return draw(
            st.one_of(
                st.builds(SignalRef, _NAMES),
                st.builds(Constant, st.integers(min_value=0, max_value=50)),
                st.builds(Constant, st.booleans()),
            )
        )
    smaller = surface_expressions(depth=depth - 1)
    return draw(
        st.one_of(
            st.builds(SignalRef, _NAMES),
            st.builds(Constant, st.integers(min_value=0, max_value=50)),
            st.builds(UnaryOp, st.just("not"), smaller),
            st.builds(BinaryOp, st.sampled_from(["+", "-", "*", "and", "or", "="]), smaller, smaller),
            st.builds(When, smaller, smaller),
            st.builds(Default, smaller, smaller),
        )
    )


@settings(max_examples=150, deadline=None)
@given(surface_expressions())
def test_expression_print_parse_roundtrip(expression):
    """Printing an expression and re-parsing it yields the same tree."""
    assert parse_expression(str(expression)) == expression


# ---------------------------------------------------------------------------
# Behavioural property of the generated code
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=25))
def test_counter_styles_agree_on_any_input_sequence(resets):
    result = compile_source(COUNTER_SOURCE, build_flat=True)
    nested_outputs = [result.executable.step({"RESET": r}) for r in resets]
    flat_outputs = [result.executable_flat.step({"RESET": r}) for r in resets]
    assert nested_outputs == flat_outputs
