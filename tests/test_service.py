"""Correctness of the compilation service: caching, pooling, batching."""

import pytest

from repro import CompilationService, GenerationStyle, compile_source
from repro.bdd import BDDManager
from repro.errors import ResourceLimitExceeded
from repro.programs import (
    ACCUMULATOR_SOURCE,
    ALARM_SOURCE,
    COUNTER_SOURCE,
    WATCHDOG_SOURCE,
)
from repro.runtime import ReactiveExecutor, random_oracle


def run_trace(result, steps=20, seed=7):
    result.executable.reset()
    executor = ReactiveExecutor(result.executable)
    trace = executor.run(steps, random_oracle(result.types, seed=seed))
    return [(step.inputs, step.outputs, step.observations) for step in trace]


class TestCompileCache:
    def test_same_source_twice_is_a_cache_hit(self):
        service = CompilationService()
        first = service.compile(COUNTER_SOURCE, build_flat=True)
        second = service.compile(COUNTER_SOURCE, build_flat=True)
        # The analysis artifacts are shared (no pipeline rerun)...
        assert second.schedule is first.schedule
        assert second.hierarchy is first.hierarchy
        # ...but the executables are fresh, isolated instances.
        assert second.executable is not first.executable
        assert second.executable.step_instance is not first.executable.step_instance
        stats = service.statistics()
        assert stats["cache_hits"] == 1
        assert stats["requests"] == 2

    def test_cached_result_has_identical_sources_and_traces(self):
        service = CompilationService()
        first = service.compile(COUNTER_SOURCE, build_flat=True)
        python_source = first.python_source()
        c_source = first.c_source()
        trace_first = run_trace(first)

        second = service.compile(COUNTER_SOURCE, build_flat=True)
        assert second.python_source() == python_source
        assert second.c_source() == c_source
        assert run_trace(second) == trace_first

        # And both agree with an uncached, unpooled compilation.
        reference = compile_source(COUNTER_SOURCE, build_flat=True)
        assert reference.python_source() == python_source
        assert reference.c_source() == c_source
        assert run_trace(reference) == trace_first

    def test_kernel_equivalent_sources_share_an_entry(self):
        service = CompilationService()
        service.compile(COUNTER_SOURCE)
        # Same program, different surface text (whitespace): same kernel
        # fingerprint, so the service must not recompile.
        reformatted = "\n".join(line.rstrip() + "  " for line in COUNTER_SOURCE.splitlines())
        result = service.compile(reformatted)
        assert result.schedule is service.compile(COUNTER_SOURCE).schedule
        # Only the very first compilation missed; the reformatted source hit.
        assert service.statistics()["cache_misses"] == 1
        assert service.statistics()["cache_hits"] == 2
        assert service.statistics()["cache_entries"] == 1

    def test_styles_and_options_are_distinct_entries(self):
        service = CompilationService()
        nested = service.compile(COUNTER_SOURCE, style=GenerationStyle.HIERARCHICAL)
        flat = service.compile(COUNTER_SOURCE, style=GenerationStyle.FLAT)
        assert nested is not flat
        assert flat.executable.style is GenerationStyle.FLAT
        assert service.statistics()["cache_entries"] == 2

    def test_lru_eviction_honours_max_entries(self):
        service = CompilationService(max_entries=2)
        first = service.compile(COUNTER_SOURCE)
        service.compile(WATCHDOG_SOURCE)
        service.compile(ACCUMULATOR_SOURCE)  # evicts the counter entry
        stats = service.statistics()
        assert stats["cache_entries"] == 2
        assert stats["cache_evictions"] == 1
        assert stats["scopes"] == 2  # the evicted program's scope was dropped
        recompiled = service.compile(COUNTER_SOURCE)
        assert recompiled.schedule is not first.schedule  # really evicted
        assert service.statistics()["cache_entries"] == 2

    def test_recompilation_after_eviction_still_correct(self):
        service = CompilationService(max_entries=1)
        first = service.compile(COUNTER_SOURCE)
        trace = run_trace(first)
        service.compile(WATCHDOG_SOURCE)
        again = service.compile(COUNTER_SOURCE)
        assert run_trace(again) == trace

    def test_cache_hit_has_fresh_register_state(self):
        """A hit must behave like a fresh compile, not carry old registers."""
        service = CompilationService()
        first = service.compile(ACCUMULATOR_SOURCE)
        # Mutate the delay registers by simulating a few reactions.
        executor = ReactiveExecutor(first.executable)
        executor.run(5, random_oracle(first.types, seed=3))
        second = service.compile(ACCUMULATOR_SOURCE)
        fresh = compile_source(ACCUMULATOR_SOURCE)
        trace_hit = ReactiveExecutor(second.executable).run(
            5, random_oracle(second.types, seed=9)
        )
        trace_fresh = ReactiveExecutor(fresh.executable).run(
            5, random_oracle(fresh.types, seed=9)
        )
        assert [s.observations for s in trace_hit] == [
            s.observations for s in trace_fresh
        ]

    def test_cache_hit_does_not_disturb_an_in_progress_simulation(self):
        """Hits hand out isolated executables: no cross-caller interference."""
        service = CompilationService()
        reference = compile_source(ACCUMULATOR_SOURCE)
        expected = run_trace(reference, steps=6, seed=4)

        first = service.compile(ACCUMULATOR_SOURCE)
        first.executable.reset()
        oracle = random_oracle(first.types, seed=4)
        executor = ReactiveExecutor(first.executable)
        trace = executor.run(3, oracle)
        # Another caller compiles the same source mid-simulation...
        service.compile(ACCUMULATOR_SOURCE)
        # ...and the first caller's run continues unperturbed.
        trace.steps.extend(executor.run(3, oracle).steps)
        assert [(s.inputs, s.outputs, s.observations) for s in trace] == expected

    def test_failed_compilations_do_not_leak_scopes(self):
        """A program that fails to compile must not leave a scope behind."""
        from repro.errors import SignalError

        service = CompilationService(max_entries=2)
        for index in range(6):
            broken = (
                f"process BAD{index} = ( ? integer A; ! integer X, Y; )"
                " (| X := Y + A | Y := X + A |) end;"
            )
            with pytest.raises(SignalError):
                service.compile(broken)
        assert service.statistics()["scopes"] == 0
        assert service.statistics()["cache_entries"] == 0

    def test_clear_cache(self):
        service = CompilationService()
        first = service.compile(COUNTER_SOURCE)
        service.clear_cache()
        assert service.cache_size == 0
        assert service.compile(COUNTER_SOURCE) is not first


class TestPooledManager:
    def test_distinct_programs_never_share_clock_variables(self):
        service = CompilationService()
        results = [
            service.compile(source)
            for source in (COUNTER_SOURCE, WATCHDOG_SOURCE, ALARM_SOURCE)
        ]

        def used_levels(result):
            levels = set()
            for clock_class in result.hierarchy.classes:
                if clock_class.bdd is not None:
                    levels |= clock_class.bdd.support()
            return levels

        supports = [used_levels(result) for result in results]
        for index, left in enumerate(supports):
            for right in supports[index + 1:]:
                assert left.isdisjoint(right), (
                    "two programs compiled on the pooled manager share BDD variables"
                )

    def test_pooled_manager_is_shared_across_compilations(self):
        manager = BDDManager()
        service = CompilationService(manager=manager)
        first = service.compile(COUNTER_SOURCE)
        nodes_after_first = manager.num_nodes
        service.compile(WATCHDOG_SOURCE)
        assert first.hierarchy.manager.base is manager
        assert manager.num_nodes > nodes_after_first  # both live in one table

    def test_recompiling_same_program_reuses_variables(self):
        service = CompilationService()
        service.compile(COUNTER_SOURCE)
        vars_after_first = service.manager.num_vars
        service.clear_cache()  # force a real recompilation on the same pool
        service.compile(COUNTER_SOURCE)
        assert service.manager.num_vars == vars_after_first

    def test_scoped_manager_forwards_setting_writes_to_base(self):
        """Assigning e.g. max_nodes on a scope must configure the shared pool."""
        manager = BDDManager()
        scope = manager.scoped("ns")
        scope.max_nodes = 2
        assert manager.max_nodes == 2
        scope.declare("a")
        scope.declare("b")
        with pytest.raises(ResourceLimitExceeded):
            scope.declare("c")

    def test_one_scope_misused_for_two_programs_stays_correct(self):
        """Encoding memo entries are per-program even inside one namespace.

        Reusing a raw scope for two different programs is outside the
        service's contract, but it must degrade to shared variable names,
        never to stale value encodings (program B's condition C must not
        pick up program A's opaque C).
        """
        program_a = (
            "process PA = ( ? boolean C; integer U; ! integer X; )"
            " (| X := U when C | synchro { U, C } |) end;"
        )
        program_b = (
            "process PB = ( ? boolean D; integer U; ! integer X; )"
            " (| C := not D | X := U when C | synchro { U, C, D } |)"
            " where boolean C; end;"
        )
        scope = BDDManager().scoped("shared-ns")
        compile_source(program_a, manager=scope)
        on_scope = compile_source(program_b, manager=scope)
        reference = compile_source(program_b)
        assert on_scope.python_source() == reference.python_source()
        assert run_trace(on_scope) == run_trace(reference)

    def test_pooled_and_unpooled_results_agree(self):
        service = CompilationService()
        pooled = service.compile(ALARM_SOURCE, build_flat=True)
        unpooled = compile_source(ALARM_SOURCE, build_flat=True)
        assert pooled.python_source() == unpooled.python_source()
        assert run_trace(pooled, steps=30, seed=13) == run_trace(
            unpooled, steps=30, seed=13
        )


class TestBatch:
    SOURCES = [COUNTER_SOURCE, WATCHDOG_SOURCE, ACCUMULATOR_SOURCE, ALARM_SOURCE]

    def test_batch_results_in_input_order(self):
        service = CompilationService()
        results = service.compile_batch(self.SOURCES, jobs=1)
        assert [r.name for r in results] == ["COUNT", "WATCHDOG", "ACCUMULATOR", "ALARM"]

    def test_concurrent_batch_matches_sequential(self):
        sequential = CompilationService()
        expected = sequential.compile_batch(self.SOURCES, jobs=1)
        concurrent = CompilationService()
        actual = concurrent.compile_batch(self.SOURCES, jobs=3)
        for left, right in zip(expected, actual):
            assert left.name == right.name
            assert left.python_source() == right.python_source()
            assert run_trace(left) == run_trace(right)
        stats = concurrent.statistics()
        assert stats["worker_managers"] >= 1
        assert stats["worker_bdd_nodes"] > 0

    def test_second_batch_is_fully_cached(self):
        service = CompilationService()
        first = service.compile_batch(self.SOURCES, jobs=2)
        hits_before = service.statistics()["cache_hits"]
        second = service.compile_batch(self.SOURCES, jobs=2)
        assert service.statistics()["cache_hits"] - hits_before == len(self.SOURCES)
        for left, right in zip(first, second):
            assert left.schedule is right.schedule
            assert left.executable is not right.executable

    def test_fully_warm_batch_allocates_no_worker_managers(self):
        service = CompilationService()
        for source in self.SOURCES:  # warm the cache on the pooled manager
            service.compile(source)
        service.compile_batch(self.SOURCES, jobs=3)  # all hits
        assert service.statistics()["worker_managers"] == 0

    def test_worker_managers_are_reused_across_batches(self):
        """The worker pool is bounded by concurrency, not by batch count."""
        service = CompilationService()
        for _ in range(4):
            service.compile_batch(self.SOURCES, jobs=2)
            service.clear_cache()  # force real recompilations every round
        assert service.statistics()["worker_managers"] <= 2


class TestCompilerWiring:
    def test_compile_source_accepts_service(self):
        service = CompilationService()
        first = compile_source(COUNTER_SOURCE, service=service)
        second = compile_source(COUNTER_SOURCE, service=service)
        assert first.schedule is second.schedule
        assert service.statistics()["cache_hits"] == 1

    def test_service_and_manager_are_mutually_exclusive(self):
        service = CompilationService()
        with pytest.raises(ValueError, match="service"):
            compile_source(COUNTER_SOURCE, manager=BDDManager(), service=service)

    def test_compile_source_service_respects_options(self):
        service = CompilationService()
        result = compile_source(
            COUNTER_SOURCE, style=GenerationStyle.FLAT, build_flat=True, service=service
        )
        assert result.executable.style is GenerationStyle.FLAT
        assert result.executable_flat is not None


class TestBatchFailurePath:
    """Jobs that raise must release their scopes, mirroring single compiles."""

    BROKEN = [
        (
            f"process BAD{index} = ( ? integer A; ! integer X, Y; )"
            " (| X := Y + A | Y := X + A |) end;"
        )
        for index in range(6)
    ]

    def test_failing_batch_jobs_release_worker_scopes(self):
        from repro.errors import SignalError

        service = CompilationService(max_entries=4)
        with pytest.raises(SignalError):
            service.compile_batch(self.BROKEN, jobs=3)
        stats = service.statistics()
        assert stats["scopes"] == 0
        assert stats["cache_entries"] == 0

    def test_mixed_batch_keeps_only_successful_scopes(self):
        from repro.errors import SignalError

        service = CompilationService()
        sources = [COUNTER_SOURCE, self.BROKEN[0], WATCHDOG_SOURCE, self.BROKEN[1]]
        with pytest.raises(SignalError):
            service.compile_batch(sources, jobs=4)
        # Every cached (successful) entry still owns at least one scope;
        # no scope belongs to a program that failed.
        stats = service.statistics()
        assert stats["cache_entries"] == stats["scopes"] == 2

    def test_service_stays_usable_after_failing_batch(self):
        from repro.errors import SignalError

        service = CompilationService()
        with pytest.raises(SignalError):
            service.compile_batch(self.BROKEN, jobs=2)
        result = service.compile(COUNTER_SOURCE)
        assert run_trace(result) == run_trace(compile_source(COUNTER_SOURCE))

    def test_worker_cancellation_releases_scopes(self):
        """BaseException (not just Exception) must release the scope."""

        class Cancelled(BaseException):
            pass

        service = CompilationService()

        # Simulate a worker killed mid-compilation: the pipeline raises a
        # BaseException after the scope was registered.
        original = service._compile_program

        def dying(*args, **kwargs):
            original(*args, **kwargs)
            raise Cancelled()

        service._compile_program = dying
        with pytest.raises(Cancelled):
            service.compile(COUNTER_SOURCE)
        assert service.statistics()["scopes"] == 0


class TestProcessBatch:
    SOURCES = [COUNTER_SOURCE, WATCHDOG_SOURCE, ACCUMULATOR_SOURCE]

    def test_process_batch_returns_records_in_order(self):
        with CompilationService() as service:
            records = service.compile_batch(self.SOURCES, jobs=2, workers="processes")
        assert [r["name"] for r in records] == ["COUNT", "WATCHDOG", "ACCUMULATOR"]
        for source, record in zip(self.SOURCES, records):
            assert record["artifacts"]["python"] == compile_source(source).python_source()

    def test_process_batch_error_names_the_failing_index(self):
        from repro.errors import SignalError

        broken = (
            "process BAD = ( ? integer A; ! integer X, Y; )"
            " (| X := Y + A | Y := X + A |) end;"
        )
        with CompilationService() as service:
            with pytest.raises(SignalError) as excinfo:
                service.compile_batch(
                    [COUNTER_SOURCE, broken, WATCHDOG_SOURCE],
                    jobs=2,
                    workers="processes",
                )
        assert excinfo.value.batch_index == 1

    def test_process_pool_grows_between_batches_and_survives_close(self):
        with CompilationService() as service:
            service.compile_batch(self.SOURCES[:1], jobs=1, workers="processes")
            assert service._process_jobs == 1
            service.compile_batch(self.SOURCES, jobs=2, workers="processes")
            assert service._process_jobs == 2
            service.close()  # recoverable: the next call rebuilds the pool
            records = service.compile_batch(
                self.SOURCES[:1], jobs=1, workers="processes"
            )
            assert records[0]["name"] == "COUNT"

    def test_compile_batch_rejects_unknown_worker_mode(self):
        with pytest.raises(ValueError, match="workers"):
            CompilationService().compile_batch(self.SOURCES, workers="fibers")

    def test_compile_record_matches_in_process_record(self):
        """The inline and worker-process record paths produce equal JSON."""
        with CompilationService() as service:
            inline = service.compile_record(COUNTER_SOURCE)
            remote = service.compile_record_in_process(COUNTER_SOURCE)
        assert inline == remote


class TestProcessWorkerStore:
    """Process-pool workers consult the parent's disk store before compiling."""

    def test_workers_read_the_store_before_compiling(self, tmp_path):
        from repro.service import CompileStore, key_from_record

        with CompilationService() as donor:
            record = donor.compile_record(COUNTER_SOURCE)
        store = CompileStore(tmp_path / "store")
        # A sentinel key survives only if the worker served the record
        # from disk instead of compiling it fresh.
        store.put(key_from_record(record), {**record, "warm_marker": "from-disk"})

        with CompilationService(store=store) as service:
            records = service.compile_batch(
                [COUNTER_SOURCE, WATCHDOG_SOURCE], jobs=2, workers="processes"
            )
        assert records[0]["warm_marker"] == "from-disk"  # store hit, no compile
        assert "warm_marker" not in records[1]  # honest cold compile

    def test_workers_write_back_to_the_store(self, tmp_path):
        from repro.service import CompileStore

        store = CompileStore(tmp_path / "store")
        with CompilationService(store=store) as service:
            service.compile_batch(
                [COUNTER_SOURCE, WATCHDOG_SOURCE], jobs=2, workers="processes"
            )
        assert len(store) == 2  # both compiles spilled for the next batch

    def test_store_accepts_a_path_and_single_submits_use_it(self, tmp_path):
        from repro.service import CompileStore, key_from_record

        with CompilationService() as donor:
            record = donor.compile_record(COUNTER_SOURCE)
        CompileStore(tmp_path).put(key_from_record(record), {**record, "warm_marker": 1})
        with CompilationService(store=str(tmp_path)) as service:
            warmed = service.compile_record_in_process(COUNTER_SOURCE)
        assert warmed["warm_marker"] == 1

    def test_thread_batches_ignore_the_store(self, tmp_path):
        """The in-process path keeps its live-result cache semantics; only
        record-producing process workers layer the disk store."""
        from repro.service import CompileStore, key_from_record

        with CompilationService() as donor:
            record = donor.compile_record(COUNTER_SOURCE)
        store = CompileStore(tmp_path)
        store.put(key_from_record(record), {**record, "warm_marker": 1})
        with CompilationService(store=store) as service:
            result = service.compile(COUNTER_SOURCE)
        assert result.name == "COUNT"  # live result, unaffected by the record
        assert len(store) == 1  # and nothing extra was written


class TestPoolHygiene:
    SOURCES = [COUNTER_SOURCE, WATCHDOG_SOURCE, ACCUMULATOR_SOURCE, ALARM_SOURCE]

    def test_pooled_manager_recycled_at_watermark(self):
        # Watermark 1: every cache miss overflows the budget, so each
        # compilation must land on a fresh pooled manager (ids are distinct
        # because the cached results keep the old managers alive).
        service = CompilationService(max_pool_nodes=1)
        managers = set()
        for source in self.SOURCES:
            result = service.compile(source)
            managers.add(id(result.hierarchy.manager.base))
        stats = service.statistics()
        assert stats["pool_recycles"] == len(self.SOURCES)
        assert len(managers) == len(self.SOURCES)

    def test_recycling_preserves_correctness(self):
        """Traces across a recycle match an unpooled compiler exactly."""
        service = CompilationService(max_pool_nodes=30)
        for _ in range(2):  # second round: hits + recompiles after recycling
            for source in self.SOURCES:
                pooled = service.compile(source)
                reference = compile_source(source)
                assert pooled.python_source() == reference.python_source()
                assert run_trace(pooled) == run_trace(reference)
            service.clear_cache()
        assert service.statistics()["pool_recycles"] >= 2

    def test_recycling_drops_old_manager_scopes(self):
        service = CompilationService(max_pool_nodes=1)  # recycle after every miss
        service.compile(COUNTER_SOURCE)
        service.compile(WATCHDOG_SOURCE)
        stats = service.statistics()
        # Scopes on recycled managers are gone; only bounded bookkeeping stays.
        assert stats["scopes"] == 0
        assert stats["pool_recycles"] == 2
        # Cached results still hand out working executables.
        hit = service.compile(COUNTER_SOURCE)
        assert run_trace(hit) == run_trace(compile_source(COUNTER_SOURCE))

    def test_worker_managers_retired_at_watermark(self):
        service = CompilationService(max_pool_nodes=30)
        service.compile_batch(self.SOURCES, jobs=2)
        stats = service.statistics()
        assert stats["worker_recycles"] >= 1
        assert stats["worker_managers"] <= 2
        # Retired workers must not leave scope bookkeeping behind for
        # programs that are no longer cached once the LRU evicts them.
        service.clear_cache()
        assert service.statistics()["scopes"] == 0

    def test_no_recycling_without_watermark(self):
        service = CompilationService()
        for source in self.SOURCES:
            service.compile(source)
        stats = service.statistics()
        assert stats["pool_recycles"] == 0
        assert stats["max_pool_nodes"] == 0
