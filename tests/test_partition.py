"""Location-directed partitioning and the distributed run harness.

Three layers of coverage:

* **placement inference** -- deterministic propagation of ``at`` annotations
  (Hypothesis over randomly-annotated pipelines), conflicting placements
  rejected with a :class:`~repro.errors.SourceLocation`, location cycles
  rejected before any fragment is compiled;
* **cut structure** -- every kernel process lands in exactly one fragment,
  channels carry exactly the cross-location reads, fragment programs are
  self-contained and fingerprint-stable run to run;
* **the harness** -- the composite trace of the split system equals the
  monolithic reference, both in-process and across real OS processes, and
  the multi-process driver never leaks children (all reaped on every exit
  path, including a poisoned worker).
"""

import multiprocessing
import random
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro import CompilationService
from repro.errors import PartitionError
from repro.lang import normalize, parse_process
from repro.lang.partition import (
    DEFAULT_LOCATION,
    infer_locations,
    partition_program,
    partition_source,
)
from repro.runtime.distributed import build_distributed
from repro.runtime.executor import random_input_schedule

#: One service for every compiling test in this module.
_SERVICE = CompilationService(max_entries=256)


EDGE_CLOUD_SOURCE = """
process PIPE =
  ( ? integer RAW at edge; boolean ENABLE at edge;
    ! integer SMOOTH at edge; integer TOTAL at cloud; )
  (| ZRAW := RAW $ 1 init 0
   | SMOOTH := (RAW + ZRAW) / 2
   | SAMPLE := SMOOTH when ENABLE
   | ZTOTAL := TOTAL $ 1 init 0
   | TOTAL := SAMPLE + ZTOTAL at cloud
  |)
  where integer ZRAW, SAMPLE, ZTOTAL;
end;
"""


def _monolithic_trace(distributed, schedule):
    outputs = set(distributed.program.outputs)
    step = distributed.reference.executable.fresh()
    return [
        {name: value for name, value in step.step(instant).items() if name in outputs}
        for instant in schedule
    ]


def _schedule(distributed, steps, seed):
    reference = distributed.reference
    return random_input_schedule(
        reference.types,
        list(reference.executable.inputs),
        list(reference.executable.root_flags),
        steps=steps,
        seed=seed,
    )


# -- placement inference -----------------------------------------------------


def test_unannotated_program_is_one_default_fragment():
    part = partition_source(
        "process P = ( ? integer X; ! integer Y; )\n"
        "  (| Y := X + 1 |)\nend;"
    )
    assert [f.location for f in part.fragments] == [DEFAULT_LOCATION]
    assert part.channels == []
    assert len(part.fragments[0].program.processes) == len(part.program.processes)


def test_declaration_annotations_propagate_forward():
    """An unannotated equation adopts its first placed operand's location."""
    part = partition_source(
        "process P = ( ? integer X at a; ! integer Y, Z; )\n"
        "  (| Y := X + 1\n"
        "   | Z := (Y * 2) at b |)\nend;"
    )
    assignment = part.assignment
    assert assignment.signal_locations["Y"] == "a"
    assert assignment.signal_locations["Z"] == "b"
    assert [c.producer + ">" + c.consumer for c in part.channels] == ["a>b"]
    assert [s.name for c in part.channels for s in c.signals] == ["Y"]


def test_equation_annotation_pulls_its_intermediates():
    """Backward rule: a placed equation pulls unplaced defined operands."""
    program = normalize(
        parse_process(
            "process P = ( ? integer X at a; ! integer Y; )\n"
            "  (| T := X * 2\n"
            "   | Y := (T + 1) at a |)\n"
            "  where integer T;\nend;"
        )
    )
    assignment = infer_locations(program)
    assert assignment.signal_locations["T"] == "a"
    assert set(assignment.process_locations) == {"a"}


def test_conflicting_annotations_raise_with_source_location():
    source = (
        "process P = ( ? integer X; ! integer Y at a; )\n"
        "  (| Y := (X + 1) at b |)\nend;"
    )
    with pytest.raises(PartitionError) as excinfo:
        normalize(parse_process(source))
    error = excinfo.value
    assert error.location is not None, "conflict must carry a SourceLocation"
    assert error.location.line == 2
    assert "'a'" in str(error) and "'b'" in str(error)


def test_agreeing_annotations_are_fine():
    part = partition_source(
        "process P = ( ? integer X; ! integer Y at a; )\n"
        "  (| Y := (X + 1) at a |)\nend;"
    )
    assert [f.location for f in part.fragments] == ["a"]


def test_location_cycle_is_rejected():
    """Instantaneously legal feedback spanning two locations cannot be
    scheduled at whole-step granularity and must be rejected up front."""
    source = (
        "process CYC = ( ? integer U; ! integer X, Y; )\n"
        "  (| ZX := (X $ 1 init 0) at b\n"
        "   | Y := (ZX + 1) at a\n"
        "   | X := (Y + U) at b |)\n"
        "  where integer ZX;\nend;"
    )
    with pytest.raises(PartitionError) as excinfo:
        partition_source(source)
    message = str(excinfo.value)
    assert "'a'" in message and "'b'" in message


def test_partition_is_deterministic():
    first = partition_source(EDGE_CLOUD_SOURCE)
    second = partition_source(EDGE_CLOUD_SOURCE)
    assert first.describe() == second.describe()
    for a, b in zip(first.fragments, second.fragments):
        assert a.program.canonical_form() == b.program.canonical_form()
    assert first.channels == second.channels


def test_locations_do_not_change_unannotated_fingerprints():
    """``locations`` only appears in the canonical form when non-empty, so
    every pre-existing fingerprint (and cached artifact) is preserved."""
    plain = normalize(
        parse_process("process P = ( ? integer X; ! integer Y; ) (| Y := X + 1 |) end;")
    )
    pinned = normalize(
        parse_process(
            "process P = ( ? integer X at a; ! integer Y; ) (| Y := X + 1 |) end;"
        )
    )
    assert "locs" not in plain.canonical_form()
    assert "locs" in pinned.canonical_form()
    assert plain.fingerprint() != pinned.fingerprint()


# -- Hypothesis: annotated pipelines ----------------------------------------
#
# A linear pipeline of arithmetic stages with a *non-decreasing* location
# per stage (monotone cuts are always schedulable); each stage is annotated
# or left to propagation.  Inference must place every stage, respect every
# explicit pin, and cut exactly at the location switches.

_OPS = ["+ 1", "* 2", "- 3"]


@st.composite
def pipeline_cases(draw):
    stages = draw(st.integers(min_value=2, max_value=6))
    location_count = draw(st.integers(min_value=1, max_value=3))
    per_stage = sorted(
        draw(
            st.lists(
                st.integers(0, location_count - 1),
                min_size=stages,
                max_size=stages,
            )
        )
    )
    annotated = draw(st.lists(st.booleans(), min_size=stages, max_size=stages))
    return stages, per_stage, annotated


def _pipeline_source(stages, per_stage, annotated):
    lines = []
    previous = "X"
    for index in range(stages):
        op = _OPS[index % len(_OPS)]
        suffix = f" at L{per_stage[index]}" if annotated[index] else ""
        lines.append(f"S{index} := ({previous} {op}){suffix}")
        previous = f"S{index}"
    locals_ = ", ".join(f"S{i}" for i in range(stages - 1))
    where = f"  where integer {locals_};\n" if locals_ else ""
    return (
        f"process CHAIN = ( ? integer X at L{per_stage[0]}; "
        f"! integer S{stages - 1}; )\n"
        "  (| " + "\n   | ".join(lines) + " |)\n" + where + "end;"
    )


@given(pipeline_cases())
@settings(max_examples=40, deadline=None)
def test_pipeline_placement_properties(case):
    stages, per_stage, annotated = case
    part = partition_source(_pipeline_source(stages, per_stage, annotated))
    assignment = part.assignment

    # Every kernel process lands in exactly one fragment; none is lost.
    assert sum(len(f.program.processes) for f in part.fragments) == len(
        part.program.processes
    )

    # Explicit pins are honoured verbatim.
    for index in range(stages):
        if annotated[index]:
            assert assignment.signal_locations[f"S{index}"] == f"L{per_stage[index]}"

    # Unannotated stages inherit a location no later than their own pin
    # (propagation only ever copies an earlier stage's placement).
    placed = [int(assignment.signal_locations[f"S{i}"][1:]) for i in range(stages)]
    assert all(
        placed[i] <= placed[i + 1] for i in range(stages - 1)
    ), f"placement not monotone: {placed}"

    # Channels cut exactly at the location switches, producers upstream.
    order = {loc: i for i, loc in enumerate(assignment.locations)}
    for channel in part.channels:
        assert order[channel.producer] < order[channel.consumer]
        for signal in channel.signals:
            assert assignment.signal_locations[signal.name] == channel.producer

    # Deterministic: a second partition gives identical fragments.
    again = partition_source(_pipeline_source(stages, per_stage, annotated))
    assert [f.program.canonical_form() for f in again.fragments] == [
        f.program.canonical_form() for f in part.fragments
    ]


@given(pipeline_cases(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_pipeline_composite_matches_monolithic(case, seed):
    stages, per_stage, annotated = case
    source = _pipeline_source(stages, per_stage, annotated)
    distributed = build_distributed(source=source, service=_SERVICE)
    schedule = _schedule(distributed, steps=12, seed=random.Random(seed))
    assert distributed.run(schedule) == _monolithic_trace(distributed, schedule)


# -- cut structure on a realistic program ------------------------------------


def test_edge_cloud_cut_structure():
    part = partition_source(EDGE_CLOUD_SOURCE)
    assert [f.location for f in part.fragments] == ["edge", "cloud"]

    edge = part.fragment_at("edge")
    cloud = part.fragment_at("cloud")
    assert edge.external_inputs == ["RAW", "ENABLE"]
    assert edge.channel_inputs == []
    assert cloud.external_inputs == []
    # The cloud consumes the sampled value; the delayed total stays local.
    assert "SAMPLE" in cloud.channel_inputs
    assert "SAMPLE" in edge.channel_outputs

    (channel,) = part.channels
    assert (channel.producer, channel.consumer) == ("edge", "cloud")
    by_name = {s.name: s.type_name for s in channel.signals}
    assert by_name["SAMPLE"] == "integer"

    # Fragment programs are self-contained: every read is declared.
    for fragment in part.fragments:
        program = fragment.program
        declared = set(program.inputs) | set(program.outputs) | set(program.locals)
        assert set(program.declared_types) == declared


def test_channel_types_are_inferred_for_fresh_intermediates():
    """A cut through a desugared sub-expression types the fresh signal."""
    source = (
        "process F = ( ? integer X at a; ! integer Y; )\n"
        "  (| Y := ((X + (X $ 1 init 0)) * 2) at b |)\nend;"
    )
    part = partition_source(source)
    for channel in part.channels:
        for signal in channel.signals:
            assert signal.type_name in ("integer", "boolean", "event", "real")


# -- the harness -------------------------------------------------------------


def test_composite_trace_matches_monolithic_in_process():
    distributed = build_distributed(source=EDGE_CLOUD_SOURCE, service=_SERVICE)
    schedule = _schedule(distributed, steps=48, seed=random.Random(11))
    assert distributed.run(schedule) == _monolithic_trace(distributed, schedule)


def test_composite_trace_matches_monolithic_across_processes():
    """The acceptance-criterion path: >= 2 real OS processes, byte-identical
    composite trace."""
    distributed = build_distributed(source=EDGE_CLOUD_SOURCE, service=_SERVICE)
    assert len(distributed.locations) >= 2
    schedule = _schedule(distributed, steps=32, seed=random.Random(23))
    reference = _monolithic_trace(distributed, schedule)
    assert distributed.run_multiprocess(schedule) == reference


def test_multiprocess_reaps_children_on_success():
    distributed = build_distributed(source=EDGE_CLOUD_SOURCE, service=_SERVICE)
    schedule = _schedule(distributed, steps=8, seed=random.Random(5))
    distributed.run_multiprocess(schedule)
    assert _no_fragment_children()


def test_multiprocess_reaps_children_on_driver_failure():
    """A schedule that poisons the parent loop mid-run must still leave no
    orphaned fragment processes behind."""
    distributed = build_distributed(source=EDGE_CLOUD_SOURCE, service=_SERVICE)
    good = _schedule(distributed, steps=4, seed=random.Random(7))

    with pytest.raises(RuntimeError, match="poisoned instant"):
        distributed.run_multiprocess(list(good[:1]) + [_Exploding()])
    assert _no_fragment_children()


class _Exploding(dict):
    """A schedule instant whose reads blow up inside the driver loop."""

    def __contains__(self, key):
        raise RuntimeError("poisoned instant")


def _no_fragment_children(timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not [
            child
            for child in multiprocessing.active_children()
            if child.name.startswith("repro-frag-")
        ]:
            return True
        time.sleep(0.05)
    return False


def test_channel_presence_drives_consumer_clock():
    """A cut signal with a derived clock is fine: its presence travels with
    the value, so the consumer's clock sees exactly the monolithic clock."""
    source = (
        "process H = ( ? integer X at a; boolean C at a; ! integer Y; )\n"
        "  (| T := X when C\n"
        "   | Y := (T + 1) at b |)\n"
        "  where integer T;\nend;"
    )
    distributed = build_distributed(source=source, service=_SERVICE)
    schedule = _schedule(distributed, steps=24, seed=random.Random(3))
    assert distributed.run(schedule) == _monolithic_trace(distributed, schedule)


def test_unschedulable_free_clock_is_rejected_at_build_time():
    """A fragment whose free clock is constrained at another location --
    here ``X``'s presence is tied to ``C`` at ``a`` while ``b`` reads ``X``
    directly -- must fail when the harness is built, not diverge silently
    at run time."""
    source = (
        "process H = ( ? integer X at a; boolean C at a; ! integer Y; )\n"
        "  (| synchro { X, when C }\n"
        "   | Y := (X + 1) at b |)\nend;"
    )
    with pytest.raises(PartitionError, match="constrained at another location"):
        build_distributed(source=source, service=_SERVICE)


# -- the annotated fuzz corpus ------------------------------------------------


def test_distributed_corpus_spec_cuts_into_two_locations():
    from repro.programs import ControlProgramSpec, generate_control_program

    spec = ControlProgramSpec(name="DSPEC", modules=2, distributed=True)
    part = partition_source(generate_control_program(spec))
    assert [f.location for f in part.fragments] == ["edge", "cloud"]
    assert part.channels, "the cloud layer must consume edge-defined signals"
    produced = {s.name for c in part.channels for s in c.signals}
    assert {"ALR_0", "FLT_0"} <= produced


def test_distributed_spec_off_is_byte_identical():
    """The flag defaults off and must not perturb existing corpus sources."""
    from repro.programs import ControlProgramSpec, generate_control_program

    plain = ControlProgramSpec(name="SAME", modules=2)
    explicit = ControlProgramSpec(name="SAME", modules=2, distributed=False)
    assert generate_control_program(plain) == generate_control_program(explicit)
    assert "at " not in generate_control_program(plain)
