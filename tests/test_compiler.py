"""End-to-end tests of the compilation driver and its diagnostics."""

import pytest

from repro import (
    CausalityError,
    ClockCalculusError,
    GenerationStyle,
    NameResolutionError,
    ParseError,
    analyze_source,
    compile_source,
)
from repro.compiler import CompilationResult
from repro.programs import ALARM_SOURCE, COUNTER_SOURCE


class TestPipeline:
    def test_result_exposes_every_stage(self, counter_result):
        assert isinstance(counter_result, CompilationResult)
        assert counter_result.name == "COUNT"
        assert counter_result.program.inputs == ["RESET"]
        assert counter_result.clock_system.equations
        assert counter_result.hierarchy.is_resolved
        assert counter_result.graph.edge_count() > 0
        assert counter_result.schedule.actions
        assert counter_result.executable.outputs == ["N"]

    def test_statistics_aggregate(self, counter_result):
        stats = counter_result.statistics()
        assert stats["signals"] == len(counter_result.program.signals)
        assert stats["kernel_processes"] == len(counter_result.program.processes)
        assert stats["dependency_edges"] == counter_result.graph.edge_count()

    def test_analyze_source_runs_front_half(self):
        program, types, system, hierarchy = analyze_source(COUNTER_SOURCE)
        assert program.name == "COUNT"
        assert hierarchy.is_resolved
        assert system.variable_count() > 0

    def test_flat_executable_only_on_request(self):
        without = compile_source(COUNTER_SOURCE)
        assert without.executable_flat is None
        with_flat = compile_source(COUNTER_SOURCE, build_flat=True)
        assert with_flat.executable_flat is not None
        assert with_flat.executable_flat.style is GenerationStyle.FLAT

    def test_interpreter_factory_is_fresh(self, counter_result):
        first = counter_result.interpreter()
        second = counter_result.interpreter()
        first.step({"RESET": False})
        assert second.instant_index == 0

    def test_c_and_python_sources_available(self, counter_result):
        assert "COUNT_step" in counter_result.python_source()
        assert "COUNT_step" in counter_result.c_source()

    def test_step_ir_styles(self, counter_result):
        nested = counter_result.step_ir(GenerationStyle.HIERARCHICAL)
        flat = counter_result.step_ir(GenerationStyle.FLAT)
        assert nested.style is GenerationStyle.HIERARCHICAL
        assert flat.style is GenerationStyle.FLAT
        assert nested.registers == flat.registers


class TestDiagnostics:
    def test_parse_error(self):
        with pytest.raises(ParseError):
            compile_source("process P = ( ? integer A; ! integer B; ) (| |) end;")

    def test_name_error(self):
        with pytest.raises(NameResolutionError):
            compile_source(
                "process P = ( ? integer A; ! integer B; ) (| B := MISSING |) end;"
            )

    def test_clock_error_for_unprovable_synchronization(self):
        # X is sampled by C but also required synchronous with A: the system
        # forces [C] = ^A = ^C which the heuristic cannot prove (and which is
        # wrong unless C is always true).
        source = """
        process P =
          ( ? integer A; boolean C;
            ! integer X; )
          (| X := A when C
           | synchro { X, A }
           | synchro { A, C }
           |)
        end;
        """
        with pytest.raises(ClockCalculusError):
            compile_source(source)

    def test_causality_error(self):
        source = """
        process P =
          ( ? integer A;
            ! integer X, Y; )
          (| X := Y + A
           | Y := X - A
           |)
        end;
        """
        with pytest.raises(CausalityError):
            compile_source(source)

    def test_temporally_incorrect_alarm_variant(self):
        # Removing one synchro leaves the state-clock equation unprovable.
        broken = ALARM_SOURCE.replace(
            "| synchro { when (not BRAKING_STATE), BRAKE }            % sample when not braking\n",
            "",
        )
        with pytest.raises(ClockCalculusError):
            compile_source(broken)

    def test_check_can_be_disabled_for_analysis(self):
        broken = ALARM_SOURCE.replace(
            "| synchro { when (not BRAKING_STATE), BRAKE }            % sample when not braking\n",
            "",
        )
        program, types, system, hierarchy = analyze_source(broken, check=False)
        assert not hierarchy.is_resolved
        assert hierarchy.unresolved
