"""Behavioural tests of the generated Python code (both styles)."""

import pytest

from repro import GenerationStyle, compile_source
from repro.errors import SimulationError
from repro.programs import ACCUMULATOR_SOURCE, COUNTER_SOURCE, WATCHDOG_SOURCE


class TestCounter:
    def test_counts_and_resets(self, counter_step):
        values = [
            counter_step.step({"RESET": r})["N"]
            for r in [False, False, True, False, True, False, False]
        ]
        assert values == [1, 2, 0, 1, 0, 1, 2]

    def test_reset_method_restores_initial_state(self, counter_step):
        counter_step.step({"RESET": False})
        counter_step.step({"RESET": False})
        counter_step.reset()
        assert counter_step.step({"RESET": False})["N"] == 1

    def test_missing_input_raises(self, counter_step):
        with pytest.raises(SimulationError):
            counter_step.step({})

    def test_oracle_supplies_missing_inputs(self, counter_step):
        outputs = counter_step.step({}, oracle=lambda name: False)
        assert outputs["N"] == 1

    def test_observe_collects_every_present_signal(self, counter_step):
        observed = {}
        counter_step.step({"RESET": False}, observe=observed)
        assert observed["RESET"] is False
        assert observed["N"] == 1
        assert observed["ZN"] == 0

    def test_run_convenience(self, counter_step):
        outputs = counter_step.run([{"RESET": False}] * 3)
        assert [o["N"] for o in outputs] == [1, 2, 3]


class TestAccumulator:
    def test_total_emitted_only_on_emit(self, accumulator_result):
        process = accumulator_result.executable
        process.reset()
        assert process.step({"X": 5, "EMIT": False}) == {}
        assert process.step({"X": 7, "EMIT": True}) == {"TOTAL": 12}
        assert process.step({"X": 1, "EMIT": False}) == {}
        assert process.step({"X": 2, "EMIT": True}) == {"TOTAL": 15}

    def test_flat_style_behaves_identically(self, accumulator_result):
        flat = accumulator_result.executable_flat
        flat.reset()
        assert flat.step({"X": 5, "EMIT": True}) == {"TOTAL": 5}


class TestWatchdog:
    def test_alarm_after_limit_missed_ticks(self, watchdog_result):
        process = watchdog_result.executable
        process.reset()
        outputs = []
        for life in [True, False, False, False, True, False]:
            outputs.append(process.step({"LIFE_SIGN": life, "LIMIT": 3})["ALARM"])
        assert outputs == [False, False, False, True, False, False]


class TestGeneratedSource:
    def test_python_source_is_valid_and_documented(self, counter_result):
        source = counter_result.python_source()
        assert "class COUNT_step" in source
        assert "def step" in source
        compile(source, "<check>", "exec")

    def test_hierarchical_source_nests_guards(self, alarm_result):
        source = alarm_result.python_source(GenerationStyle.HIERARCHICAL)
        # There is at least one guard nested inside another guard.
        assert "\n            if h" in source or "\n                if h" in source

    def test_flat_source_has_single_level_guards(self, alarm_result):
        source = alarm_result.python_source(GenerationStyle.FLAT)
        # Flat code never nests two levels of clock tests inside the body.
        assert "\n                if h" not in source

    def test_registers_initialized_with_declared_init(self, counter_result):
        source = counter_result.python_source()
        assert "self.z_ZN = 0" in source

    def test_non_observable_compilation(self):
        result = compile_source(COUNTER_SOURCE, observable=False)
        outputs = result.executable.step({"RESET": False})
        assert outputs["N"] == 1

    def test_inputs_and_outputs_lists(self, accumulator_result):
        assert accumulator_result.executable.inputs == ["X", "EMIT"]
        assert accumulator_result.executable.outputs == ["TOTAL"]

    def test_root_flags_exposed(self, alarm_result):
        flags = alarm_result.executable.root_flags
        assert len(flags) == 1
        _, key, default = flags[0]
        assert default is True
        assert key.startswith("h_")


class TestMultiRootPrograms:
    SOURCE = """
    process PAIR =
      ( ? integer A, B;
        ! integer X, Y; )
      (| X := A + 1
       | Y := B + 2
       |)
    end;
    """

    def test_independent_clocks_driven_separately(self):
        result = compile_source(self.SOURCE)
        process = result.executable
        flags = {key: True for _, key, _ in process.root_flags}
        some_flag = process.root_flags[0][1]
        # Drive only one of the two free clocks.
        only_first = dict(flags)
        for key in only_first:
            only_first[key] = key == some_flag
        outputs = process.step({**only_first, "A": 1, "B": 5}, oracle=lambda n: 0)
        assert len(outputs) == 1

    def test_both_clocks_active(self):
        result = compile_source(self.SOURCE)
        process = result.executable
        flags = {key: True for _, key, _ in process.root_flags}
        outputs = process.step({**flags, "A": 1, "B": 5})
        assert outputs == {"X": 2, "Y": 7}
