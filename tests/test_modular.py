"""Modular compilation: unit fingerprints, artifact sharing, the link stage.

The compositional pipeline rests on four guarantees, each with its own
section below:

* **canonicalization** -- a unit's fingerprint depends only on the unit's
  *shape*: alpha-renaming the program, reordering its modules, or embedding
  the module in a different program must not change it (Hypothesis
  property tests);
* **accounting** -- the unit cache turns module overlap into exactly the
  expected number of compiles: a program sharing ``k`` of its ``n`` units
  with already-compiled programs performs exactly ``n - k`` unit compiles;
* **link determinism** -- linking cached unit artifacts (memory or disk,
  cold or warm) always produces the same whole-program record, and the
  linked executables trace-match the monolithic compile of the same source;
* **resource hygiene** -- a unit that fails to compile mid-link leaves no
  BDD scope behind, and evicting a unit record from the LRU releases its
  scope too.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import CausalityError, CompilationService, compile_source
from repro.lang import normalize, parse_process
from repro.lang.kernel import rename_program
from repro.lang.units import UNIT_FINGERPRINT_VERSION, split_units
from repro.programs import (
    FleetSpec,
    fleet_member_modules,
    generate_fleet,
    library_module_source,
)
from repro.programs.generators import _assemble_program
from repro.runtime import ReactiveExecutor, random_input_schedule
from repro.service import CompileStore

LIBRARY = list(range(6))


def kernel_of(source):
    return normalize(parse_process(source))


def unit_fingerprints(source):
    return [unit.fingerprint() for unit in split_units(kernel_of(source))]


# -- canonicalization --------------------------------------------------------

_BASE_SOURCE = _assemble_program("BASE", LIBRARY)
_BASE_PROGRAM = kernel_of(_BASE_SOURCE)
_BASE_FINGERPRINTS = [unit.fingerprint() for unit in split_units(_BASE_PROGRAM)]
_BASE_NAMES = list(_BASE_PROGRAM.inputs) + list(_BASE_PROGRAM.outputs) + list(
    _BASE_PROGRAM.locals
)


def test_unit_fingerprint_version_is_pinned():
    """Bump :data:`UNIT_FINGERPRINT_VERSION` whenever canonical_form or the
    canonicalization rules change -- stale store records must stop matching."""
    assert UNIT_FINGERPRINT_VERSION == 1


@settings(max_examples=25, deadline=None)
@given(st.permutations(range(len(_BASE_NAMES))), st.integers(0, 9))
def test_alpha_renaming_preserves_unit_fingerprints(perm, salt):
    """Renaming every signal (injectively) changes no unit fingerprint."""
    mapping = {
        name: f"R{salt}_{index}" for name, index in zip(_BASE_NAMES, perm)
    }
    renamed = rename_program(_BASE_PROGRAM, mapping, name="OTHER")
    assert [
        unit.fingerprint() for unit in split_units(renamed)
    ] == _BASE_FINGERPRINTS


@settings(max_examples=25, deadline=None)
@given(st.permutations(LIBRARY))
def test_module_reorder_permutes_unit_fingerprints(perm):
    """Reordering modules permutes the fingerprint list, never rewrites it."""
    shuffled = unit_fingerprints(_assemble_program("SHUF", list(perm)))
    assert shuffled == [_BASE_FINGERPRINTS[module] for module in perm]
    assert sorted(shuffled) == sorted(_BASE_FINGERPRINTS)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, len(LIBRARY) - 1),
    st.integers(0, 30),
    st.integers(0, 30),
)
def test_embedding_invariance(module, position_a, position_b):
    """The same library module embedded anywhere fingerprints identically:
    standalone at any signal position, or inside the six-module program."""
    solo_a = unit_fingerprints(library_module_source(module, position=position_a))
    solo_b = unit_fingerprints(
        library_module_source(module, position=position_b, name="ZOTHER")
    )
    assert solo_a == solo_b == [_BASE_FINGERPRINTS[module]]


def test_library_modules_are_pairwise_distinct():
    """Shape distinctness: no two library modules may collide, otherwise the
    fleet's sharing accounting would silently overcount."""
    assert len(set(_BASE_FINGERPRINTS)) == len(LIBRARY)


# -- accounting --------------------------------------------------------------


def test_second_program_compiles_exactly_the_novel_units():
    """The ISSUE acceptance property: k shared units => n - k unit compiles."""
    spec = FleetSpec(
        name="ACC",
        programs=2,
        library_size=8,
        units_per_program=4,
        shared_units=2,
        seed=3,
    )
    members = fleet_member_modules(spec)
    first, second = generate_fleet(spec)
    shared = len(set(members[0]) & set(members[1]))
    novel = len(set(members[1]) - set(members[0]))
    assert shared == spec.shared_units  # the pool assignment kept them disjoint

    with CompilationService() as service:
        service.compile_modular(first)
        after_first = service.statistics()
        assert after_first["unit_misses"] == spec.units_per_program
        assert after_first["unit_hits"] == 0

        service.compile_modular(second)
        after_second = service.statistics()
        assert after_second["unit_misses"] - after_first["unit_misses"] == novel
        assert after_second["unit_hits"] - after_first["unit_hits"] == shared

        # A warm repeat is a linked-result hit: no unit resolution, no link.
        service.compile_modular(second)
        warm = service.statistics()
        assert warm["unit_misses"] == after_second["unit_misses"]
        assert warm["unit_hits"] == after_second["unit_hits"]
        assert warm["links"] == 2
        assert warm["link_hits"] == 1
        assert warm["link_misses"] == 2
        assert warm["modular_requests"] == 3


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10**6))
def test_unit_accounting_matches_module_ground_truth(seed):
    """For any fleet seed, per-member compiles == novel modules, hits == rest."""
    spec = FleetSpec(
        name="GT",
        programs=3,
        library_size=6,
        units_per_program=3,
        shared_units=1,
        seed=seed,
    )
    members = fleet_member_modules(spec)
    with CompilationService() as service:
        seen = set()
        for source, modules in zip(generate_fleet(spec), members):
            before = service.statistics()
            service.compile_modular(source)
            after = service.statistics()
            novel = len(set(modules) - seen)
            assert after["unit_misses"] - before["unit_misses"] == novel
            assert after["unit_hits"] - before["unit_hits"] == len(modules) - novel
            seen |= set(modules)


# -- link determinism --------------------------------------------------------

_LINK_SPEC = FleetSpec(
    name="LNK", programs=1, library_size=4, units_per_program=3, shared_units=3, seed=11
)
_LINK_SOURCE = generate_fleet(_LINK_SPEC)[0]


def test_link_determinism_cold_vs_warm(tmp_path):
    """A record linked from freshly compiled units equals one rehydrated
    from the store's linked record in a brand-new service (byte-for-byte).

    The cold compile spills both the three unit records and the composed
    ``kind: "linked"`` record; the warm service short-circuits on the
    linked record alone -- it never loads a unit record, which is what
    makes the linked tier a genuine third level above the unit cache.
    """
    store = CompileStore(tmp_path)
    with CompilationService(store=store) as cold_service:
        cold = cold_service.compile_modular_record(_LINK_SOURCE, build_flat=True)
        assert cold_service.statistics()["unit_misses"] == 3

    with CompilationService(store=store) as warm_service:
        warm = warm_service.compile_modular_record(_LINK_SOURCE, build_flat=True)
        stats = warm_service.statistics()
        assert stats["link_store_hits"] == 1
        assert stats["unit_store_hits"] == 0
        assert stats["unit_misses"] == 0
        assert stats["links"] == 0
    assert cold == warm


def test_relink_from_units_when_linked_tier_disabled(tmp_path):
    """``max_linked_entries=0`` restores the pre-linked-cache behaviour:
    every modular request re-links from (store-warmed) unit records."""
    store = CompileStore(tmp_path)
    with CompilationService(store=store) as cold_service:
        cold = cold_service.compile_modular_record(_LINK_SOURCE, build_flat=True)

    with CompilationService(store=store, max_linked_entries=0) as relink_service:
        relinked = relink_service.compile_modular_record(_LINK_SOURCE, build_flat=True)
        relinked_again = relink_service.compile_modular_record(
            _LINK_SOURCE, build_flat=True
        )
        stats = relink_service.statistics()
        assert stats["link_store_hits"] == 0
        assert stats["link_hits"] == 0
        assert stats["unit_store_hits"] == 3
        assert stats["links"] == 2
    assert relinked == cold
    assert relinked_again == cold


def test_link_cache_hits_return_isolated_executables():
    """A linked-cache hit behaves like a fresh compile: its own step
    instance, never the cached result's (mirrors the monolithic LRU)."""
    with CompilationService() as service:
        first = service.compile_modular(_LINK_SOURCE)
        second = service.compile_modular(_LINK_SOURCE)
        assert service.statistics()["link_hits"] == 1
        assert second.executable.step_instance is not first.executable.step_instance
        assert second.executable.source == first.executable.source


def test_clear_cache_drops_linked_results():
    with CompilationService() as service:
        service.compile_modular(_LINK_SOURCE)
        service.clear_cache()
        service.compile_modular(_LINK_SOURCE)
        stats = service.statistics()
        assert stats["link_hits"] == 0
        assert stats["links"] == 2


def test_incremental_link_is_byte_identical_to_ir_emission():
    """The linker's concatenated per-unit bodies must equal re-emitting the
    fully linked IR, byte for byte, for every backend and style."""
    from repro.codegen.c_backend import generate_c_shared_source, generate_c_source
    from repro.codegen.ir import GenerationStyle
    from repro.codegen.python_backend import generate_python_source

    with CompilationService() as service:
        linked = service.compile_modular(_LINK_SOURCE, build_flat=True)
    for style in GenerationStyle:
        ir = linked.step_ir(style)
        assert linked.python_source(style) == generate_python_source(ir)
        assert linked.c_source(style) == generate_c_source(ir)
        assert linked.c_shared_source(style) == generate_c_shared_source(ir)
    assert linked.executable.source == linked.python_source(
        GenerationStyle.HIERARCHICAL
    )


def test_batch_fan_out_matches_serial_modular():
    """``compile_batch(modular=True, jobs>1)`` resolves units concurrently
    but must compose exactly what serial modular compiles produce."""
    from repro.service import record_from_result
    from repro.codegen.ir import GenerationStyle

    spec = FleetSpec(
        name="BATCH", programs=4, library_size=6, units_per_program=3,
        shared_units=2, seed=23,
    )
    sources = generate_fleet(spec)
    with CompilationService() as serial_service:
        expected = [
            record_from_result(
                serial_service.compile_modular(source, build_flat=True),
                GenerationStyle.HIERARCHICAL,
                build_flat=True,
            )
            for source in sources
        ]
    with CompilationService() as batch_service:
        batched = batch_service.compile_batch(
            sources, jobs=3, build_flat=True, modular=True
        )
        stats = batch_service.statistics()

    # ``bdd_nodes_total`` is the pool-wide table size at unit-compile
    # time, so it depends on the order units land on the pool -- the one
    # statistic the concurrent fan-out legitimately may not reproduce.
    def order_free(record):
        record = dict(record)
        record["statistics"] = {
            key: value
            for key, value in record["statistics"].items()
            if key != "bdd_nodes_total"
        }
        return record

    assert [
        order_free(
            record_from_result(
                linked, GenerationStyle.HIERARCHICAL, build_flat=True
            )
        )
        for linked in batched
    ] == [order_free(record) for record in expected]
    # The fan-out resolved each distinct unit exactly once.
    members = fleet_member_modules(spec)
    distinct = len({module for modules in members for module in modules})
    assert stats["unit_misses"] == distinct


def test_modular_record_is_whole_program_keyed():
    with CompilationService() as service:
        record = service.compile_modular_record(_LINK_SOURCE)
    assert record["kind"] == "program"
    assert record["fingerprint"] == kernel_of(_LINK_SOURCE).fingerprint()


def test_linked_executables_trace_match_monolithic():
    """Both styles of the linked result replay the monolithic trace exactly.

    Fleet members have several free root clocks whose linked default differs
    from a single-root program's, so the run is schedule-driven: presence is
    drawn per root key, and the keys themselves must agree across pipelines.
    """
    monolithic = compile_source(_LINK_SOURCE, build_flat=True)
    with CompilationService() as service:
        linked = service.compile_modular(_LINK_SOURCE, build_flat=True)

    mono_step = monolithic.executable.fresh()
    linked_step = linked.executable.fresh()
    assert [flag[1] for flag in linked_step.root_flags] == [
        flag[1] for flag in mono_step.root_flags
    ]
    schedule = random_input_schedule(
        monolithic.types,
        mono_step.inputs,
        mono_step.root_flags,
        steps=24,
        seed=random.Random(20260808),
    )
    mono_trace = ReactiveExecutor(mono_step).run(24, inputs_per_step=schedule)
    linked_trace = ReactiveExecutor(linked_step).run(24, inputs_per_step=schedule)
    assert [step.outputs for step in linked_trace] == [
        step.outputs for step in mono_trace
    ]

    flat_trace = ReactiveExecutor(linked.executable_flat.fresh()).run(
        24, inputs_per_step=schedule
    )
    assert [step.outputs for step in flat_trace] == [
        step.outputs for step in mono_trace
    ]


# -- resource hygiene --------------------------------------------------------

_GOOD_THEN_BROKEN = (
    "process BROKEN = ( ? integer A, T; ! integer Y, X; )"
    " (| Y := A + 1 | X := X + 1 | synchro { X, T } |) end;"
)


def _unit_scope_namespaces(service):
    return sorted(
        namespace
        for (_, namespace) in service._scopes
        if namespace.startswith("unit:")
    )


def test_mid_link_failure_releases_the_failing_units_scope():
    """Unit 1 (``Y := A + 1``) compiles and stays cached; unit 2 has an
    instantaneous cycle and dies in causality analysis.  The dead unit's
    BDD scope must be released, the good unit's kept (its record is live)."""
    with CompilationService() as service:
        with pytest.raises(CausalityError):
            service.compile_modular(_GOOD_THEN_BROKEN)
        stats = service.statistics()
        assert stats["unit_misses"] == 1  # only the good unit landed a record
        assert stats["unit_cache_entries"] == 1
        assert stats["links"] == 0

        good_unit = split_units(kernel_of(_GOOD_THEN_BROKEN))[0]
        assert _unit_scope_namespaces(service) == ["unit:" + good_unit.fingerprint()]

        # The failure poisoned nothing: an honest program still compiles,
        # and the good unit's cached record is reused for it.
        healthy = (
            "process OK = ( ? integer B; ! integer Z; ) (| Z := B + 1 |) end;"
        )
        service.compile_modular(healthy)
        assert service.statistics()["unit_hits"] == 1


def test_unit_eviction_releases_its_scope():
    """With a 2-entry unit LRU, linking a 3-unit program evicts the first
    unit's record mid-compile -- and its scope with it."""
    spec = FleetSpec(
        name="EVC", programs=1, library_size=3, units_per_program=3,
        shared_units=3, seed=5,
    )
    source = generate_fleet(spec)[0]
    with CompilationService(max_unit_entries=2) as service:
        linked = service.compile_modular(source)
        assert linked.statistics()["units"] == 3  # the link itself succeeded
        stats = service.statistics()
        assert stats["unit_cache_max_entries"] == 2
        assert stats["unit_cache_entries"] == 2
        assert len(_unit_scope_namespaces(service)) == 2

        cached = {
            "unit:" + unit.fingerprint()
            for unit in split_units(kernel_of(source))[1:]
        }
        assert set(_unit_scope_namespaces(service)) == cached
