"""Differential fuzzing: interpreter vs hierarchical vs flat compiled code.

Every test case is derived from a single integer seed: the seed drives the
shape of a randomly generated hierarchical control program (via
:class:`~repro.programs.ControlProgramSpec`) *and* the random input oracle.
Each program is compiled twice -- once through a shared
:class:`~repro.CompilationService` (pooled BDD manager) and once standalone
-- and executed for ``REACTIONS`` reactions in both generation styles; the
observations are replayed on the reference :class:`KernelInterpreter`.  Any
divergence is a compilation bug, and the failing seed reproduces the whole
case.
"""

import random

import pytest

from repro import CompilationService, compile_source
from repro.programs import ControlProgramSpec, generate_control_program
from repro.runtime import ReactiveExecutor, random_oracle

MASTER_SEED = 19950621  # PLDI'95
NUM_PROGRAMS = 52
REACTIONS = 32

#: One shared service for the whole module: all fuzz programs compile onto a
#: single pooled BDD manager, which is exactly the collision surface the
#: variable namespacing must protect.  The node watermark is set well below
#: the suite's total footprint (~500 nodes/program, ~26k for the suite), so
#: the pooled manager is recycled several times mid-suite and the fuzzing
#: also proves that pool hygiene never changes compiled behaviour.
_SHARED_SERVICE = CompilationService(
    max_entries=NUM_PROGRAMS * 2, max_pool_nodes=4000
)


def spec_for_seed(seed):
    """A seeded random program shape (kept small so the suite stays fast)."""
    rng = random.Random(f"{MASTER_SEED}:{seed}")
    return ControlProgramSpec(
        name=f"FUZZ_{seed}",
        modules=rng.randint(1, 3),
        branching=rng.randint(1, 3),
        sensors=rng.randint(0, 3),
        with_filter=rng.choice([True, False]),
        with_counter=rng.choice([True, False]),
    )


def oracle_for_seed(result, seed):
    """The input oracle of one run, derived from the case seed."""
    return random_oracle(result.types, seed=random.Random(f"{MASTER_SEED}:{seed}:inputs"))


def run_executable(result, executable, seed):
    executable.reset()
    executor = ReactiveExecutor(executable)
    return executor.run(REACTIONS, oracle_for_seed(result, seed))


def assert_matches_interpreter(result, trace, seed, label):
    """Replay a compiled-code trace on the reference interpreter."""
    interpreter = result.interpreter()
    for index, step in enumerate(trace):
        expected = interpreter.step(step.inputs, present=step.observations.keys())
        assert set(expected) == set(step.observations), (
            f"seed {seed} [{label}]: presence mismatch at reaction {index}: "
            f"{set(expected) ^ set(step.observations)}"
        )
        for name, value in step.observations.items():
            assert expected.get(name) == value, (
                f"seed {seed} [{label}]: reaction {index}: {name} = {value!r}, "
                f"interpreter says {expected.get(name)!r}"
            )


def observations(trace):
    return [(step.observations, step.outputs) for step in trace]


@pytest.mark.parametrize("seed", range(NUM_PROGRAMS))
def test_differential_fuzz(seed):
    source = generate_control_program(spec_for_seed(seed))

    pooled = _SHARED_SERVICE.compile(source, build_flat=True)
    unpooled = compile_source(source, build_flat=True)

    # Hierarchical style vs the reference interpreter, pooled and unpooled.
    pooled_nested = run_executable(pooled, pooled.executable, seed)
    assert_matches_interpreter(pooled, pooled_nested, seed, "pooled/nested")
    unpooled_nested = run_executable(unpooled, unpooled.executable, seed)
    assert_matches_interpreter(unpooled, unpooled_nested, seed, "unpooled/nested")

    # Flat style agrees with the hierarchical style (same seed, same oracle).
    pooled_flat = run_executable(pooled, pooled.executable_flat, seed)
    assert observations(pooled_flat) == observations(pooled_nested), (
        f"seed {seed}: flat and hierarchical styles diverge (pooled manager)"
    )
    unpooled_flat = run_executable(unpooled, unpooled.executable_flat, seed)
    assert observations(unpooled_flat) == observations(unpooled_nested), (
        f"seed {seed}: flat and hierarchical styles diverge (unpooled manager)"
    )

    # Pooling the BDD manager must not change the generated behaviour at all.
    assert observations(pooled_nested) == observations(unpooled_nested), (
        f"seed {seed}: pooled and unpooled compilations disagree"
    )
    assert pooled.python_source() == unpooled.python_source(), (
        f"seed {seed}: pooled and unpooled generated Python differ"
    )


def test_fuzz_program_count():
    """The harness really covers the advertised number of seeded programs."""
    assert NUM_PROGRAMS >= 50


def test_fuzz_specs_are_deterministic():
    assert spec_for_seed(3) == spec_for_seed(3)
    assert [spec_for_seed(s) for s in range(5)] != [spec_for_seed(s + 1) for s in range(5)]


def test_watermark_recycling_really_triggered():
    """The shared pool must cross the node watermark while fuzzing.

    Self-sufficient: compiling the first 16 fuzz programs (~7k pooled nodes
    against the 4000-node watermark) forces at least one recycle even when
    this test runs alone; after the full suite these compilations are cache
    hits and the recycles have already happened.  If this fails after a
    compiler change, the fuzz suite silently stopped covering the recycling
    path -- lower the watermark above.
    """
    for seed in range(16):
        _SHARED_SERVICE.compile(
            generate_control_program(spec_for_seed(seed)), build_flat=True
        )
    assert _SHARED_SERVICE.statistics()["pool_recycles"] >= 1


def test_shared_service_kept_programs_isolated():
    """After the fuzz run, spot-check variable isolation on the shared pool."""
    sources = [generate_control_program(spec_for_seed(seed)) for seed in (0, 1)]
    results = [_SHARED_SERVICE.compile(source, build_flat=True) for source in sources]

    def used_levels(result):
        levels = set()
        for clock_class in result.hierarchy.classes:
            if clock_class.bdd is not None:
                levels |= clock_class.bdd.support()
        return levels

    assert used_levels(results[0]).isdisjoint(used_levels(results[1]))
