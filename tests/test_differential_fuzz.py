"""Differential fuzzing: interpreter vs hierarchical vs flat compiled code.

Every test case is derived from a single integer seed: the seed drives the
shape of a randomly generated hierarchical control program (via
:class:`~repro.programs.ControlProgramSpec`) *and* the random input oracle.
Each program is compiled three ways -- through a shared
:class:`~repro.CompilationService` (pooled BDD manager), through a second
shared service whose pool is **sharded** across several managers, and once
standalone -- and executed for ``REACTIONS`` reactions in both generation
styles; the observations are replayed on the reference
:class:`KernelInterpreter`.  A separate pass pushes the whole corpus
through ``compile_batch(workers="processes")`` and proves the worker
processes' artifact records rebuild executables with identical behaviour.
Any divergence is a compilation bug, and the failing seed reproduces the
whole case.

A further pass (skipped cleanly when no C toolchain is installed) builds
the reentrant C of a subset of the corpus with ``cc -shared``, loads it
through :mod:`ctypes` and proves the *machine code* produces exactly the
Python backend's outputs tick for tick -- including the floored
integer-division/modulo corpus with negative operands that a naive C
lowering gets wrong.

Environment knobs (used by the CI parallel matrix entry):

* ``REPRO_FUZZ_SHARDS`` -- shard count of the sharded service (default 2,
  CI also runs 4);
* ``REPRO_FUZZ_PROCESS_JOBS`` -- worker processes for the batch pass
  (default 2, CI also runs 4);
* ``REPRO_FUZZ_C_STRIDE`` -- seed stride of the loaded-C pass (default 4:
  every fourth seed; CI runs 1 = the whole corpus);
* ``REPRO_FUZZ_MODULAR`` -- when ``1``, the modular-compilation pass runs
  the whole corpus instead of every fourth seed;
* ``REPRO_FUZZ_DISTRIBUTED`` -- when ``1``, the distributed (partitioned)
  pass runs the whole corpus instead of every fourth seed.
"""

import dataclasses
import os
import random

import pytest

from repro import CompilationService, compile_source
from repro.codegen.ir import GenerationStyle
from repro.lang import normalize, parse_process
from repro.lang.units import split_units
from repro.programs import (
    ControlProgramSpec,
    FleetSpec,
    fleet_member_modules,
    generate_control_program,
    generate_fleet,
)
from repro.runtime import (
    ReactiveExecutor,
    SharedCProgram,
    find_c_compiler,
    random_input_schedule,
    random_oracle,
)
from repro.service import (
    CompileStore,
    executable_from_record,
    record_from_result,
    types_from_record,
    unit_store_key,
)

MASTER_SEED = 19950621  # PLDI'95
NUM_PROGRAMS = 52
REACTIONS = 32
FUZZ_SHARDS = int(os.environ.get("REPRO_FUZZ_SHARDS", "2"))
PROCESS_JOBS = int(os.environ.get("REPRO_FUZZ_PROCESS_JOBS", "2"))
C_STRIDE = int(os.environ.get("REPRO_FUZZ_C_STRIDE", "4"))
CC = find_c_compiler()

#: One shared service for the whole module: all fuzz programs compile onto a
#: single pooled BDD manager, which is exactly the collision surface the
#: variable namespacing must protect.  The node watermark is set well below
#: the suite's total footprint (~500 nodes/program, ~26k for the suite), so
#: the pooled manager is recycled several times mid-suite and the fuzzing
#: also proves that pool hygiene never changes compiled behaviour.
_SHARED_SERVICE = CompilationService(
    max_entries=NUM_PROGRAMS * 2, max_pool_nodes=4000
)

#: A second shared service with a sharded pool (shards > 1 always): programs
#: spread across several managers by fingerprint hash, and the same
#: watermark now recycles *per shard*.  Fuzzing through it proves the shard
#: map changes where BDDs live, never what the compiler produces.
_SHARDED_SERVICE = CompilationService(
    max_entries=NUM_PROGRAMS * 2, max_pool_nodes=4000, shards=max(FUZZ_SHARDS, 2)
)


def spec_for_seed(seed):
    """A seeded random program shape (kept small so the suite stays fast)."""
    rng = random.Random(f"{MASTER_SEED}:{seed}")
    return ControlProgramSpec(
        name=f"FUZZ_{seed}",
        modules=rng.randint(1, 3),
        branching=rng.randint(1, 3),
        sensors=rng.randint(0, 3),
        with_filter=rng.choice([True, False]),
        with_counter=rng.choice([True, False]),
        # Drawn last so the shapes of pre-existing seeds are unchanged --
        # only the arithmetic block is new.  It combines / and modulo with
        # negative dividends *and* divisors, the corpus that catches
        # truncate-toward-zero C lowerings of SIGNAL's floored division.
        with_arithmetic=rng.choice([True, False]),
    )


def oracle_for_seed(types, seed):
    """The input oracle of one run, derived from the case seed."""
    return random_oracle(types, seed=random.Random(f"{MASTER_SEED}:{seed}:inputs"))


def run_executable(result, executable, seed):
    executable.reset()
    executor = ReactiveExecutor(executable)
    return executor.run(REACTIONS, oracle_for_seed(result.types, seed))


def assert_matches_interpreter(result, trace, seed, label):
    """Replay a compiled-code trace on the reference interpreter."""
    interpreter = result.interpreter()
    for index, step in enumerate(trace):
        expected = interpreter.step(step.inputs, present=step.observations.keys())
        assert set(expected) == set(step.observations), (
            f"seed {seed} [{label}]: presence mismatch at reaction {index}: "
            f"{set(expected) ^ set(step.observations)}"
        )
        for name, value in step.observations.items():
            assert expected.get(name) == value, (
                f"seed {seed} [{label}]: reaction {index}: {name} = {value!r}, "
                f"interpreter says {expected.get(name)!r}"
            )


def observations(trace):
    return [(step.observations, step.outputs) for step in trace]


@pytest.mark.parametrize("seed", range(NUM_PROGRAMS))
def test_differential_fuzz(seed):
    source = generate_control_program(spec_for_seed(seed))

    pooled = _SHARED_SERVICE.compile(source, build_flat=True)
    sharded = _SHARDED_SERVICE.compile(source, build_flat=True)
    unpooled = compile_source(source, build_flat=True)

    # Hierarchical style vs the reference interpreter, pooled and unpooled.
    pooled_nested = run_executable(pooled, pooled.executable, seed)
    assert_matches_interpreter(pooled, pooled_nested, seed, "pooled/nested")
    unpooled_nested = run_executable(unpooled, unpooled.executable, seed)
    assert_matches_interpreter(unpooled, unpooled_nested, seed, "unpooled/nested")

    # Flat style agrees with the hierarchical style (same seed, same oracle).
    pooled_flat = run_executable(pooled, pooled.executable_flat, seed)
    assert observations(pooled_flat) == observations(pooled_nested), (
        f"seed {seed}: flat and hierarchical styles diverge (pooled manager)"
    )
    unpooled_flat = run_executable(unpooled, unpooled.executable_flat, seed)
    assert observations(unpooled_flat) == observations(unpooled_nested), (
        f"seed {seed}: flat and hierarchical styles diverge (unpooled manager)"
    )

    # Pooling the BDD manager must not change the generated behaviour at all.
    assert observations(pooled_nested) == observations(unpooled_nested), (
        f"seed {seed}: pooled and unpooled compilations disagree"
    )
    assert pooled.python_source() == unpooled.python_source(), (
        f"seed {seed}: pooled and unpooled generated Python differ"
    )

    # Sharding the pool must be invisible too: same generated code, same
    # trace, on whatever shard the fingerprint routed to.
    assert sharded.python_source() == unpooled.python_source(), (
        f"seed {seed}: sharded and unpooled generated Python differ"
    )
    sharded_nested = run_executable(sharded, sharded.executable, seed)
    assert observations(sharded_nested) == observations(unpooled_nested), (
        f"seed {seed}: sharded and unpooled compilations disagree"
    )


def test_fuzz_program_count():
    """The harness really covers the advertised number of seeded programs."""
    assert NUM_PROGRAMS >= 50


def test_fuzz_specs_are_deterministic():
    assert spec_for_seed(3) == spec_for_seed(3)
    assert [spec_for_seed(s) for s in range(5)] != [spec_for_seed(s + 1) for s in range(5)]


def test_process_parallel_batch_matches_reference():
    """The whole corpus through worker processes: records == serial == oracle.

    ``compile_batch(workers="processes")`` returns artifact records built in
    worker processes (each with its own BDD manager and cache).  For every
    seed, the record must carry exactly the generated Python a standalone
    compile produces, and the executable rebuilt from the record must
    replay cleanly on the reference interpreter -- no execution mode ships
    unproven.
    """
    seeds = list(range(NUM_PROGRAMS))
    sources = [generate_control_program(spec_for_seed(seed)) for seed in seeds]
    with CompilationService(max_entries=NUM_PROGRAMS * 2) as service:
        records = service.compile_batch(
            sources, jobs=PROCESS_JOBS, workers="processes", build_flat=True
        )
    assert len(records) == len(seeds)
    for seed, source, record in zip(seeds, sources, records):
        reference = compile_source(source, build_flat=True)
        assert record["artifacts"]["python"] == reference.python_source(), (
            f"seed {seed}: process-parallel generated Python differs"
        )
        assert record["fingerprint"] == reference.program.fingerprint()

        executable = executable_from_record(record)
        executable.reset()
        trace = ReactiveExecutor(executable).run(
            REACTIONS, oracle_for_seed(types_from_record(record), seed)
        )
        assert_matches_interpreter(reference, trace, seed, "process/nested")

        flat = executable_from_record(record, flat=True)
        flat.reset()
        flat_trace = ReactiveExecutor(flat).run(
            REACTIONS, oracle_for_seed(types_from_record(record), seed)
        )
        assert observations(flat_trace) == observations(trace), (
            f"seed {seed}: process-parallel flat and hierarchical styles diverge"
        )


def test_watermark_recycling_really_triggered():
    """The shared pool must cross the node watermark while fuzzing.

    Self-sufficient: compiling the first 16 fuzz programs (~7k pooled nodes
    against the 4000-node watermark) forces at least one recycle even when
    this test runs alone; after the full suite these compilations are cache
    hits and the recycles have already happened.  If this fails after a
    compiler change, the fuzz suite silently stopped covering the recycling
    path -- lower the watermark above.
    """
    for seed in range(16):
        _SHARED_SERVICE.compile(
            generate_control_program(spec_for_seed(seed)), build_flat=True
        )
    assert _SHARED_SERVICE.statistics()["pool_recycles"] >= 1


def test_sharded_watermark_recycling_really_triggered():
    """The sharded pool must also cross its per-shard watermark mid-suite.

    The full corpus puts ~26k nodes against a 4000-node per-shard watermark
    spread over a handful of shards, so at least one shard recycles; the
    per-seed assertions above then prove per-shard recycling never changes
    behaviour.  The counters must agree: the headline ``pool_recycles`` is
    defined as the sum of the per-shard counters.
    """
    for seed in range(32):
        _SHARDED_SERVICE.compile(
            generate_control_program(spec_for_seed(seed)), build_flat=True
        )
    stats = _SHARDED_SERVICE.statistics()
    assert stats["pool_recycles"] >= 1
    assert stats["pool_recycles"] == sum(
        shard["recycles"] for shard in stats["shard_stats"]
    )


def test_shared_service_kept_programs_isolated():
    """After the fuzz run, spot-check variable isolation on the shared pool."""
    sources = [generate_control_program(spec_for_seed(seed)) for seed in (0, 1)]
    results = [_SHARED_SERVICE.compile(source, build_flat=True) for source in sources]

    def used_levels(result):
        levels = set()
        for clock_class in result.hierarchy.classes:
            if clock_class.bdd is not None:
                levels |= clock_class.bdd.support()
        return levels

    assert used_levels(results[0]).isdisjoint(used_levels(results[1]))


def test_sharded_service_routes_programs_to_their_shard():
    """Spot-check the shard map: results live on the manager they routed to."""
    for seed in (0, 1, 2, 3):
        source = generate_control_program(spec_for_seed(seed))
        result = _SHARDED_SERVICE.compile(source, build_flat=True)
        fingerprint = result.program.fingerprint()
        index = _SHARDED_SERVICE.shard_index(fingerprint)
        assert 0 <= index < _SHARDED_SERVICE.shards
        # The routed shard's *current* manager compiled this result unless
        # that shard has recycled since (the old manager then lives on only
        # through its cached results).
        expected = _SHARDED_SERVICE.shard_manager(fingerprint)
        recycled = _SHARDED_SERVICE.statistics()["shard_stats"][index]["recycles"]
        if recycled == 0:
            assert result.hierarchy.manager.base is expected


# -- loaded-C execution ------------------------------------------------------
#
# The C backend used to be emit-only; these tests run it.  Both backends are
# driven from one pre-drawn input schedule (a complete assignment per tick)
# because the loaded C consumes inputs positionally while the Python step
# pulls them on demand -- a shared stateful oracle would desynchronize.

ARITHMIX_SOURCE = """process ARITHMIX =
  ( ? integer A, B;
    ! integer Q1, R1, Q2, R2, Q3, R3;
    boolean X1; )
  (| D := (B * B) + 1
   | ND := 0 - D
   | Q1 := A / 3
   | R1 := A modulo 3
   | Q2 := A / ND
   | R2 := A modulo ND
   | Q3 := (A - 5) / (0 - 2)
   | R3 := (A + 5) modulo (0 - 3)
   | X1 := (A >= 0) xor (B >= 0)
   |)
  where integer D, ND;
end;
"""


def schedule_for_seed(result, executable, seed, label):
    return random_input_schedule(
        result.types,
        executable.inputs,
        executable.root_flags,
        steps=REACTIONS,
        seed=random.Random(f"{MASTER_SEED}:{seed}:{label}"),
    )


def assert_replay_on_interpreter(result, trace, seed, label):
    """Like :func:`assert_matches_interpreter` for schedule-driven traces.

    Schedules draw free-clock presence, so whole reactions may be absent;
    undetermined signals of such instants are forced absent on replay
    (``unknown_as_absent``) instead of being rejected.
    """
    interpreter = result.interpreter()
    for index, step in enumerate(trace):
        expected = interpreter.step(
            step.inputs,
            present=step.observations.keys(),
            unknown_as_absent=True,
        )
        assert expected == dict(step.observations), (
            f"seed {seed} [{label}]: reaction {index}: compiled code observed "
            f"{step.observations}, interpreter says {expected}"
        )


@pytest.mark.skipif(CC is None, reason="no C compiler installed")
@pytest.mark.parametrize("seed", range(0, NUM_PROGRAMS, C_STRIDE))
def test_differential_fuzz_loaded_c(seed):
    """Loaded C == Python backend == reference interpreter, per tick."""
    source = generate_control_program(spec_for_seed(seed))
    result = _SHARED_SERVICE.compile(source, build_flat=True)

    executable = result.executable.fresh()
    schedule = schedule_for_seed(result, executable, seed, "schedule")
    python_trace = ReactiveExecutor(executable).run(
        REACTIONS, inputs_per_step=schedule
    )
    # The Python leg ties the schedule-driven run back to the reference
    # semantics; the C legs below then only need to match the Python leg.
    assert_replay_on_interpreter(result, python_trace, seed, "python/scheduled")

    shared = SharedCProgram.from_result(result)
    c_trace = ReactiveExecutor(shared.process()).run(
        REACTIONS, inputs_per_step=schedule
    )
    assert [step.outputs for step in c_trace] == [
        step.outputs for step in python_trace
    ], f"seed {seed}: loaded C diverges from the Python backend"

    flat = SharedCProgram.from_result(result, style=GenerationStyle.FLAT)
    c_flat_trace = ReactiveExecutor(flat.process()).run(
        REACTIONS, inputs_per_step=schedule
    )
    assert [step.outputs for step in c_flat_trace] == [
        step.outputs for step in python_trace
    ], f"seed {seed}: loaded flat C diverges from the Python backend"


def test_fuzz_corpus_exercises_arithmetic():
    """The strided loaded-C subset must include arithmetic programs."""
    specs = [spec_for_seed(seed) for seed in range(0, NUM_PROGRAMS, C_STRIDE)]
    assert any(spec.with_arithmetic for spec in specs)
    assert any(not spec.with_arithmetic for spec in specs)


@pytest.mark.skipif(CC is None, reason="no C compiler installed")
def test_arithmix_negative_operands_loaded_c():
    """Dense negative-operand sweep: every (A, B) pair, all three engines.

    ``ARITHMIX`` divides by positive and negative constants and by a
    signal-derived strictly-negative divisor.  A C backend emitting plain
    ``/`` and ``%`` fails this on the first negative dividend (C truncates
    toward zero, SIGNAL's reference semantics floor); ``X1`` pins the xor
    lowering to Python's ``bool`` coercion.
    """
    result = compile_source(ARITHMIX_SOURCE, build_flat=True)
    loaded = SharedCProgram.from_result(result).process()
    python = result.executable.fresh()
    interpreter = result.interpreter()
    for a in range(-9, 10):
        for b in range(-3, 4):
            inputs = {"A": a, "B": b}
            expected = {
                "Q1": a // 3,
                "R1": a % 3,
                "Q2": a // -(b * b + 1),
                "R2": a % -(b * b + 1),
                "Q3": (a - 5) // -2,
                "R3": (a + 5) % -3,
                "X1": (a >= 0) != (b >= 0),
            }
            c_outputs = loaded.step(inputs)
            python_outputs = python.step(inputs)
            reference = interpreter.step(inputs)
            reference = {
                name: reference[name] for name in expected if name in reference
            }
            assert c_outputs == expected, f"A={a} B={b}: loaded C {c_outputs}"
            assert python_outputs == expected, f"A={a} B={b}: python {python_outputs}"
            assert reference == expected, f"A={a} B={b}: interpreter {reference}"


# -- modular compilation -----------------------------------------------------
#
# The compositional pipeline (split into canonical units, compile per unit
# against the shared unit cache, link) must be *behaviourally invisible*:
# whatever the corpus, a modular compile's executables trace-match the
# monolithic compile and replay on the reference interpreter.  Fleet members
# share library modules, so their modular legs also exercise genuine
# cross-program unit-cache hits; the sharded service routes unit compiles by
# unit fingerprint, proving the shard map is as invisible at unit
# granularity as it is for whole programs.  Runs are schedule-driven
# (complete assignments, free-clock presence drawn per root key): fleet
# members have several free roots, whose linked defaults differ from the
# single-root convention.

MODULAR_FULL = os.environ.get("REPRO_FUZZ_MODULAR", "0") == "1"
MODULAR_STRIDE = 1 if MODULAR_FULL else 4

#: Modular compiles route *units* by fingerprint across this sharded pool.
_MODULAR_SERVICE = CompilationService(
    max_entries=NUM_PROGRAMS * 2, max_pool_nodes=4000, shards=max(FUZZ_SHARDS, 2)
)

#: Six programs drawn from an eight-module library with a two-module shared
#: core: every member after the first hits the unit cache.
FLEET_SPEC = FleetSpec(
    name="FUZZFLEET",
    programs=6,
    library_size=8,
    units_per_program=4,
    shared_units=2,
    seed=MASTER_SEED,
)


def assert_linked_sources_byte_identical(linked, seed, label):
    """The incremental link path (concatenated per-unit emit caches) must
    produce byte-for-byte the text that re-emitting the linked IR does --
    and the cached executable must have been built from exactly that text."""
    from repro.codegen.c_backend import generate_c_shared_source, generate_c_source
    from repro.codegen.python_backend import generate_python_source

    for style in GenerationStyle:
        ir = linked.step_ir(style)
        assert linked.python_source(style) == generate_python_source(ir), (
            f"seed {seed} [{label}]: incremental python link drifts ({style.value})"
        )
        assert linked.c_source(style) == generate_c_source(ir), (
            f"seed {seed} [{label}]: incremental C link drifts ({style.value})"
        )
        assert linked.c_shared_source(style) == generate_c_shared_source(ir), (
            f"seed {seed} [{label}]: incremental shared-C link drifts ({style.value})"
        )
    assert linked.executable.source == linked.python_source(
        GenerationStyle.HIERARCHICAL
    )


def assert_modular_matches_monolithic(source, seed, label, service):
    """Modular == monolithic == interpreter for one source, both styles."""
    monolithic = compile_source(source, build_flat=True)
    linked = service.compile_modular(source, build_flat=True)
    assert_linked_sources_byte_identical(linked, seed, label)

    mono_step = monolithic.executable.fresh()
    linked_step = linked.executable.fresh()
    assert [flag[1] for flag in linked_step.root_flags] == [
        flag[1] for flag in mono_step.root_flags
    ], f"seed {seed} [{label}]: linked root keys diverge from monolithic"

    schedule = random_input_schedule(
        monolithic.types,
        mono_step.inputs,
        mono_step.root_flags,
        steps=REACTIONS,
        seed=random.Random(f"{MASTER_SEED}:{seed}:{label}"),
    )
    mono_trace = ReactiveExecutor(mono_step).run(REACTIONS, inputs_per_step=schedule)
    linked_trace = ReactiveExecutor(linked_step).run(
        REACTIONS, inputs_per_step=schedule
    )
    assert [step.outputs for step in linked_trace] == [
        step.outputs for step in mono_trace
    ], f"seed {seed} [{label}]: modular hierarchical trace diverges"

    flat_trace = ReactiveExecutor(linked.executable_flat.fresh()).run(
        REACTIONS, inputs_per_step=schedule
    )
    assert [step.outputs for step in flat_trace] == [
        step.outputs for step in mono_trace
    ], f"seed {seed} [{label}]: modular flat trace diverges"

    # Anchor the linked trace itself to the reference semantics.
    assert_replay_on_interpreter(linked, linked_trace, seed, f"{label}/modular")
    return monolithic, linked


@pytest.mark.parametrize("member", range(FLEET_SPEC.programs))
def test_modular_fleet_differential(member):
    """Every fleet member, modular through the sharded unit cache."""
    source = generate_fleet(FLEET_SPEC)[member]
    assert_modular_matches_monolithic(source, member, "fleet", _MODULAR_SERVICE)


def test_modular_fleet_cold_then_warm_records_identical():
    """Cold records == warm records, with exact unit-compile accounting.

    A fresh service compiles the whole fleet twice.  The cold round may
    only compile each *distinct* library module once (everything else must
    be unit-cache hits); the warm round compiles nothing.  Both rounds --
    and a thread-parallel batch -- produce byte-identical records.
    """
    sources = generate_fleet(FLEET_SPEC)
    members = fleet_member_modules(FLEET_SPEC)
    distinct_modules = len({m for modules in members for m in modules})
    total_units = sum(len(modules) for modules in members)
    with CompilationService(shards=max(FUZZ_SHARDS, 2)) as service:
        cold = [
            service.compile_modular_record(source, build_flat=True)
            for source in sources
        ]
        stats = service.statistics()
        assert stats["unit_misses"] == distinct_modules
        assert stats["unit_hits"] == total_units - distinct_modules

        warm = [
            service.compile_modular_record(source, build_flat=True)
            for source in sources
        ]
        assert warm == cold
        assert service.statistics()["unit_misses"] == distinct_modules

        batched = service.compile_batch(
            sources, jobs=3, build_flat=True, modular=True
        )
        assert [
            record_from_result(linked, GenerationStyle.HIERARCHICAL, build_flat=True)
            for linked in batched
        ] == cold


@pytest.mark.parametrize("seed", range(0, NUM_PROGRAMS, MODULAR_STRIDE))
def test_modular_corpus_differential(seed):
    """The seeded corpus through the modular pipeline (strided by default,
    complete with ``REPRO_FUZZ_MODULAR=1``)."""
    source = generate_control_program(spec_for_seed(seed))
    assert_modular_matches_monolithic(source, seed, "corpus", _MODULAR_SERVICE)


def test_modular_process_worker_batch_matches_reference(tmp_path):
    """The fleet through ``compile_batch(workers="processes", modular=True)``.

    Worker processes compile modular against the shared on-disk store, so
    unit artifacts cross process boundaries; the records they return must
    rebuild executables that trace-match a monolithic compile, and the
    store must end up warm at *module* granularity.
    """
    sources = generate_fleet(FLEET_SPEC)
    with CompilationService(store=str(tmp_path)) as service:
        records = service.compile_batch(
            sources,
            jobs=PROCESS_JOBS,
            workers="processes",
            build_flat=True,
            modular=True,
        )
    assert len(records) == len(sources)
    for index, (source, record) in enumerate(zip(sources, records)):
        reference = compile_source(source, build_flat=True)
        assert record["fingerprint"] == reference.program.fingerprint()

        mono_step = reference.executable.fresh()
        executable = executable_from_record(record)
        executable.reset()
        assert [flag[1] for flag in executable.root_flags] == [
            flag[1] for flag in mono_step.root_flags
        ]
        schedule = random_input_schedule(
            reference.types,
            mono_step.inputs,
            mono_step.root_flags,
            steps=REACTIONS,
            seed=random.Random(f"{MASTER_SEED}:{index}:process-modular"),
        )
        mono_trace = ReactiveExecutor(mono_step).run(
            REACTIONS, inputs_per_step=schedule
        )
        trace = ReactiveExecutor(executable).run(REACTIONS, inputs_per_step=schedule)
        assert [step.outputs for step in trace] == [
            step.outputs for step in mono_trace
        ], f"member {index}: process-modular record diverges from monolithic"

        flat = executable_from_record(record, flat=True)
        flat.reset()
        flat_trace = ReactiveExecutor(flat).run(REACTIONS, inputs_per_step=schedule)
        assert [step.outputs for step in flat_trace] == [
            step.outputs for step in mono_trace
        ], f"member {index}: process-modular flat record diverges"

    # The workers spilled their unit artifacts into the shared store.
    store = CompileStore(tmp_path)
    for unit in split_units(normalize(parse_process(sources[0]))):
        assert store.get(unit_store_key(unit.fingerprint())) is not None


def test_modular_corpus_stride_still_covers_multiple_shapes():
    """The strided modular subset must span both arithmetic and plain
    shapes, like the loaded-C stride."""
    specs = [spec_for_seed(seed) for seed in range(0, NUM_PROGRAMS, MODULAR_STRIDE)]
    assert any(spec.with_arithmetic for spec in specs)
    assert any(not spec.with_arithmetic for spec in specs)


# -- distributed execution ---------------------------------------------------
#
# The same seeded corpus, location-annotated (``distributed=True`` pins the
# inputs at the edge and adds a cloud post-processing layer per module) and
# cut by the partitioner: the composite trace of the per-location fragments,
# stepped lock-step with channel values copied within each instant, must be
# byte-identical to the monolithic reference on the same schedule, and the
# monolithic leg itself replays on the reference interpreter.  Strided by
# default, the whole corpus with ``REPRO_FUZZ_DISTRIBUTED=1``; one seed also
# runs across real OS processes.

DISTRIBUTED_FULL = os.environ.get("REPRO_FUZZ_DISTRIBUTED", "0") == "1"
DISTRIBUTED_STRIDE = 1 if DISTRIBUTED_FULL else 4

#: Fragments compile modularly through this service, so edge fragments of
#: different seeds sharing module shapes hit the fleet-wide unit cache.
_DISTRIBUTED_SERVICE = CompilationService(
    max_entries=NUM_PROGRAMS * 4, max_pool_nodes=4000
)


def distributed_spec_for_seed(seed):
    """The seeded shape, location-annotated (same shape draw as the plain
    corpus -- only the annotations and the cloud layer are added)."""
    return dataclasses.replace(
        spec_for_seed(seed), name=f"DFUZZ_{seed}", distributed=True
    )


def _distributed_case(seed):
    from repro.runtime.distributed import build_distributed

    source = generate_control_program(distributed_spec_for_seed(seed))
    distributed = build_distributed(source=source, service=_DISTRIBUTED_SERVICE)
    assert distributed.locations == ["edge", "cloud"], (
        f"seed {seed}: annotated corpus must cut into edge -> cloud"
    )
    reference = distributed.reference
    step = reference.executable.fresh()
    schedule = schedule_for_seed(reference, step, seed, "distributed")
    python_trace = ReactiveExecutor(step).run(REACTIONS, inputs_per_step=schedule)
    # Anchor the monolithic leg to the reference semantics; the composite
    # legs then only need to match it.
    assert_replay_on_interpreter(reference, python_trace, seed, "distributed/mono")
    outputs = set(distributed.program.outputs)
    monolithic = [
        {name: value for name, value in trace_step.outputs.items() if name in outputs}
        for trace_step in python_trace
    ]
    return distributed, schedule, monolithic


@pytest.mark.parametrize("seed", range(0, NUM_PROGRAMS, DISTRIBUTED_STRIDE))
def test_distributed_corpus_differential(seed):
    """Split == unsplit on the seeded corpus (strided by default, complete
    with ``REPRO_FUZZ_DISTRIBUTED=1``)."""
    distributed, schedule, monolithic = _distributed_case(seed)
    assert distributed.run(schedule) == monolithic, (
        f"seed {seed}: composite trace diverges from the monolithic reference"
    )


@pytest.mark.parametrize("seed", [0] if not DISTRIBUTED_FULL else [0, 17, 34])
def test_distributed_corpus_across_os_processes(seed):
    """At least one corpus program proves the cut over real OS processes."""
    distributed, schedule, monolithic = _distributed_case(seed)
    assert distributed.run_multiprocess(schedule) == monolithic, (
        f"seed {seed}: OS-process composite trace diverges"
    )


def test_distributed_fragments_share_the_unit_cache():
    """Edge fragments across seeds reuse unit artifacts: after the corpus
    passes, the service must have recorded cross-program unit hits."""
    for seed in (1, 2):
        _distributed_case(seed)
    assert _DISTRIBUTED_SERVICE.statistics()["unit_hits"] >= 1
