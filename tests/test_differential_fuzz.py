"""Differential fuzzing: interpreter vs hierarchical vs flat compiled code.

Every test case is derived from a single integer seed: the seed drives the
shape of a randomly generated hierarchical control program (via
:class:`~repro.programs.ControlProgramSpec`) *and* the random input oracle.
Each program is compiled three ways -- through a shared
:class:`~repro.CompilationService` (pooled BDD manager), through a second
shared service whose pool is **sharded** across several managers, and once
standalone -- and executed for ``REACTIONS`` reactions in both generation
styles; the observations are replayed on the reference
:class:`KernelInterpreter`.  A separate pass pushes the whole corpus
through ``compile_batch(workers="processes")`` and proves the worker
processes' artifact records rebuild executables with identical behaviour.
Any divergence is a compilation bug, and the failing seed reproduces the
whole case.

Environment knobs (used by the CI parallel matrix entry):

* ``REPRO_FUZZ_SHARDS`` -- shard count of the sharded service (default 2,
  CI also runs 4);
* ``REPRO_FUZZ_PROCESS_JOBS`` -- worker processes for the batch pass
  (default 2, CI also runs 4).
"""

import os
import random

import pytest

from repro import CompilationService, compile_source
from repro.programs import ControlProgramSpec, generate_control_program
from repro.runtime import ReactiveExecutor, random_oracle
from repro.service import executable_from_record, types_from_record

MASTER_SEED = 19950621  # PLDI'95
NUM_PROGRAMS = 52
REACTIONS = 32
FUZZ_SHARDS = int(os.environ.get("REPRO_FUZZ_SHARDS", "2"))
PROCESS_JOBS = int(os.environ.get("REPRO_FUZZ_PROCESS_JOBS", "2"))

#: One shared service for the whole module: all fuzz programs compile onto a
#: single pooled BDD manager, which is exactly the collision surface the
#: variable namespacing must protect.  The node watermark is set well below
#: the suite's total footprint (~500 nodes/program, ~26k for the suite), so
#: the pooled manager is recycled several times mid-suite and the fuzzing
#: also proves that pool hygiene never changes compiled behaviour.
_SHARED_SERVICE = CompilationService(
    max_entries=NUM_PROGRAMS * 2, max_pool_nodes=4000
)

#: A second shared service with a sharded pool (shards > 1 always): programs
#: spread across several managers by fingerprint hash, and the same
#: watermark now recycles *per shard*.  Fuzzing through it proves the shard
#: map changes where BDDs live, never what the compiler produces.
_SHARDED_SERVICE = CompilationService(
    max_entries=NUM_PROGRAMS * 2, max_pool_nodes=4000, shards=max(FUZZ_SHARDS, 2)
)


def spec_for_seed(seed):
    """A seeded random program shape (kept small so the suite stays fast)."""
    rng = random.Random(f"{MASTER_SEED}:{seed}")
    return ControlProgramSpec(
        name=f"FUZZ_{seed}",
        modules=rng.randint(1, 3),
        branching=rng.randint(1, 3),
        sensors=rng.randint(0, 3),
        with_filter=rng.choice([True, False]),
        with_counter=rng.choice([True, False]),
    )


def oracle_for_seed(types, seed):
    """The input oracle of one run, derived from the case seed."""
    return random_oracle(types, seed=random.Random(f"{MASTER_SEED}:{seed}:inputs"))


def run_executable(result, executable, seed):
    executable.reset()
    executor = ReactiveExecutor(executable)
    return executor.run(REACTIONS, oracle_for_seed(result.types, seed))


def assert_matches_interpreter(result, trace, seed, label):
    """Replay a compiled-code trace on the reference interpreter."""
    interpreter = result.interpreter()
    for index, step in enumerate(trace):
        expected = interpreter.step(step.inputs, present=step.observations.keys())
        assert set(expected) == set(step.observations), (
            f"seed {seed} [{label}]: presence mismatch at reaction {index}: "
            f"{set(expected) ^ set(step.observations)}"
        )
        for name, value in step.observations.items():
            assert expected.get(name) == value, (
                f"seed {seed} [{label}]: reaction {index}: {name} = {value!r}, "
                f"interpreter says {expected.get(name)!r}"
            )


def observations(trace):
    return [(step.observations, step.outputs) for step in trace]


@pytest.mark.parametrize("seed", range(NUM_PROGRAMS))
def test_differential_fuzz(seed):
    source = generate_control_program(spec_for_seed(seed))

    pooled = _SHARED_SERVICE.compile(source, build_flat=True)
    sharded = _SHARDED_SERVICE.compile(source, build_flat=True)
    unpooled = compile_source(source, build_flat=True)

    # Hierarchical style vs the reference interpreter, pooled and unpooled.
    pooled_nested = run_executable(pooled, pooled.executable, seed)
    assert_matches_interpreter(pooled, pooled_nested, seed, "pooled/nested")
    unpooled_nested = run_executable(unpooled, unpooled.executable, seed)
    assert_matches_interpreter(unpooled, unpooled_nested, seed, "unpooled/nested")

    # Flat style agrees with the hierarchical style (same seed, same oracle).
    pooled_flat = run_executable(pooled, pooled.executable_flat, seed)
    assert observations(pooled_flat) == observations(pooled_nested), (
        f"seed {seed}: flat and hierarchical styles diverge (pooled manager)"
    )
    unpooled_flat = run_executable(unpooled, unpooled.executable_flat, seed)
    assert observations(unpooled_flat) == observations(unpooled_nested), (
        f"seed {seed}: flat and hierarchical styles diverge (unpooled manager)"
    )

    # Pooling the BDD manager must not change the generated behaviour at all.
    assert observations(pooled_nested) == observations(unpooled_nested), (
        f"seed {seed}: pooled and unpooled compilations disagree"
    )
    assert pooled.python_source() == unpooled.python_source(), (
        f"seed {seed}: pooled and unpooled generated Python differ"
    )

    # Sharding the pool must be invisible too: same generated code, same
    # trace, on whatever shard the fingerprint routed to.
    assert sharded.python_source() == unpooled.python_source(), (
        f"seed {seed}: sharded and unpooled generated Python differ"
    )
    sharded_nested = run_executable(sharded, sharded.executable, seed)
    assert observations(sharded_nested) == observations(unpooled_nested), (
        f"seed {seed}: sharded and unpooled compilations disagree"
    )


def test_fuzz_program_count():
    """The harness really covers the advertised number of seeded programs."""
    assert NUM_PROGRAMS >= 50


def test_fuzz_specs_are_deterministic():
    assert spec_for_seed(3) == spec_for_seed(3)
    assert [spec_for_seed(s) for s in range(5)] != [spec_for_seed(s + 1) for s in range(5)]


def test_process_parallel_batch_matches_reference():
    """The whole corpus through worker processes: records == serial == oracle.

    ``compile_batch(workers="processes")`` returns artifact records built in
    worker processes (each with its own BDD manager and cache).  For every
    seed, the record must carry exactly the generated Python a standalone
    compile produces, and the executable rebuilt from the record must
    replay cleanly on the reference interpreter -- no execution mode ships
    unproven.
    """
    seeds = list(range(NUM_PROGRAMS))
    sources = [generate_control_program(spec_for_seed(seed)) for seed in seeds]
    with CompilationService(max_entries=NUM_PROGRAMS * 2) as service:
        records = service.compile_batch(
            sources, jobs=PROCESS_JOBS, workers="processes", build_flat=True
        )
    assert len(records) == len(seeds)
    for seed, source, record in zip(seeds, sources, records):
        reference = compile_source(source, build_flat=True)
        assert record["artifacts"]["python"] == reference.python_source(), (
            f"seed {seed}: process-parallel generated Python differs"
        )
        assert record["fingerprint"] == reference.program.fingerprint()

        executable = executable_from_record(record)
        executable.reset()
        trace = ReactiveExecutor(executable).run(
            REACTIONS, oracle_for_seed(types_from_record(record), seed)
        )
        assert_matches_interpreter(reference, trace, seed, "process/nested")

        flat = executable_from_record(record, flat=True)
        flat.reset()
        flat_trace = ReactiveExecutor(flat).run(
            REACTIONS, oracle_for_seed(types_from_record(record), seed)
        )
        assert observations(flat_trace) == observations(trace), (
            f"seed {seed}: process-parallel flat and hierarchical styles diverge"
        )


def test_watermark_recycling_really_triggered():
    """The shared pool must cross the node watermark while fuzzing.

    Self-sufficient: compiling the first 16 fuzz programs (~7k pooled nodes
    against the 4000-node watermark) forces at least one recycle even when
    this test runs alone; after the full suite these compilations are cache
    hits and the recycles have already happened.  If this fails after a
    compiler change, the fuzz suite silently stopped covering the recycling
    path -- lower the watermark above.
    """
    for seed in range(16):
        _SHARED_SERVICE.compile(
            generate_control_program(spec_for_seed(seed)), build_flat=True
        )
    assert _SHARED_SERVICE.statistics()["pool_recycles"] >= 1


def test_sharded_watermark_recycling_really_triggered():
    """The sharded pool must also cross its per-shard watermark mid-suite.

    The full corpus puts ~26k nodes against a 4000-node per-shard watermark
    spread over a handful of shards, so at least one shard recycles; the
    per-seed assertions above then prove per-shard recycling never changes
    behaviour.  The counters must agree: the headline ``pool_recycles`` is
    defined as the sum of the per-shard counters.
    """
    for seed in range(32):
        _SHARDED_SERVICE.compile(
            generate_control_program(spec_for_seed(seed)), build_flat=True
        )
    stats = _SHARDED_SERVICE.statistics()
    assert stats["pool_recycles"] >= 1
    assert stats["pool_recycles"] == sum(
        shard["recycles"] for shard in stats["shard_stats"]
    )


def test_shared_service_kept_programs_isolated():
    """After the fuzz run, spot-check variable isolation on the shared pool."""
    sources = [generate_control_program(spec_for_seed(seed)) for seed in (0, 1)]
    results = [_SHARED_SERVICE.compile(source, build_flat=True) for source in sources]

    def used_levels(result):
        levels = set()
        for clock_class in result.hierarchy.classes:
            if clock_class.bdd is not None:
                levels |= clock_class.bdd.support()
        return levels

    assert used_levels(results[0]).isdisjoint(used_levels(results[1]))


def test_sharded_service_routes_programs_to_their_shard():
    """Spot-check the shard map: results live on the manager they routed to."""
    for seed in (0, 1, 2, 3):
        source = generate_control_program(spec_for_seed(seed))
        result = _SHARDED_SERVICE.compile(source, build_flat=True)
        fingerprint = result.program.fingerprint()
        index = _SHARDED_SERVICE.shard_index(fingerprint)
        assert 0 <= index < _SHARDED_SERVICE.shards
        # The routed shard's *current* manager compiled this result unless
        # that shard has recycled since (the old manager then lives on only
        # through its cached results).
        expected = _SHARDED_SERVICE.shard_manager(fingerprint)
        recycled = _SHARDED_SERVICE.statistics()["shard_stats"][index]["recycles"]
        if recycled == 0:
            assert result.hierarchy.manager.base is expected
