"""Tests for the trace model, the executor and interpreter error handling."""

import pytest

from repro.errors import SimulationError
from repro.lang.kernel import normalize
from repro.lang.parser import parse_process
from repro.lang.types import infer_types
from repro.runtime import (
    ABSENT,
    KernelInterpreter,
    ReactiveExecutor,
    Trace,
    random_oracle,
    timing_diagram,
)
from repro.lang.types import SignalType
from repro.programs import COUNTER_SOURCE


class TestTrace:
    def test_from_columns_and_back(self):
        trace = Trace.from_columns({"X": [1, ABSENT, 3], "C": [True, False, ABSENT]})
        assert len(trace) == 3
        assert trace.column("X") == [1, ABSENT, 3]
        assert trace.values("X") == [1, 3]
        assert trace.presence("C") == [True, True, False]

    def test_signals_in_first_seen_order(self):
        trace = Trace([{"B": 1}, {"A": 2, "B": 3}])
        assert trace.signals() == ["B", "A"]

    def test_synchrony_check(self):
        trace = Trace.from_columns({"X": [1, ABSENT, 3], "Y": [4, ABSENT, 6],
                                    "Z": [ABSENT, 5, ABSENT]})
        assert trace.is_synchronous("X", "Y")
        assert not trace.is_synchronous("X", "Z")

    def test_restrict(self):
        trace = Trace([{"A": 1, "B": 2}, {"A": 3}])
        restricted = trace.restrict(["A"])
        assert restricted.signals() == ["A"]
        assert restricted[1] == {"A": 3}

    def test_equality_and_repr(self):
        first = Trace([{"A": 1}])
        second = Trace([{"A": 1}])
        assert first == second
        assert "Trace(" in repr(first)

    def test_absent_is_falsy_singleton(self):
        from repro.runtime.trace import Absent

        assert Absent() is ABSENT
        assert not ABSENT
        assert repr(ABSENT) == "ABSENT"

    def test_timing_diagram_alignment(self):
        trace = Trace.from_columns({"LONG_NAME": [10, ABSENT], "X": [ABSENT, 3]})
        diagram = timing_diagram(trace)
        lines = diagram.splitlines()
        assert len(lines) == 2
        assert lines[0].index(":") == lines[1].index(":")


class TestInterpreterErrors:
    def _interpreter(self, source):
        program = normalize(parse_process(source))
        return KernelInterpreter(program, infer_types(program))

    def test_unknown_input_rejected(self):
        interpreter = self._interpreter(COUNTER_SOURCE)
        with pytest.raises(SimulationError):
            interpreter.step({"NOT_AN_INPUT": 1})

    def test_synchro_violation_detected(self):
        interpreter = self._interpreter(
            "process P = ( ? integer A, B; ! integer C; )"
            " (| C := A | synchro {A, B} |) end;"
        )
        with pytest.raises(SimulationError):
            interpreter.step({"A": 1})

    def test_undetermined_presence_reported(self):
        # With no inputs present, the clock of N (a pure counter driven by its
        # own delay) is not determined by the environment.
        interpreter = self._interpreter(
            "process P = ( ! integer N; ) (| N := ZN + 1 | ZN := N $ 1 init 0 |)"
            " where integer ZN; end;"
        )
        with pytest.raises(SimulationError):
            interpreter.step({})

    def test_presence_assertion_resolves_free_clocks(self):
        interpreter = self._interpreter(
            "process P = ( ! integer N; ) (| N := ZN + 1 | ZN := N $ 1 init 0 |)"
            " where integer ZN; end;"
        )
        result = interpreter.step({}, present=["N"])
        assert result["N"] == 1
        assert interpreter.step({}, present=["N"])["N"] == 2

    def test_unknown_as_absent_option(self):
        interpreter = self._interpreter(
            "process P = ( ! integer N; ) (| N := ZN + 1 | ZN := N $ 1 init 0 |)"
            " where integer ZN; end;"
        )
        assert interpreter.step({}, unknown_as_absent=True) == {}

    def test_reset_restores_registers(self):
        interpreter = self._interpreter(COUNTER_SOURCE)
        interpreter.step({"RESET": False})
        interpreter.step({"RESET": False})
        interpreter.reset()
        assert interpreter.instant_index == 0
        assert interpreter.step({"RESET": False})["N"] == 1

    def test_run_collects_a_trace(self):
        interpreter = self._interpreter(COUNTER_SOURCE)
        trace = interpreter.run([{"RESET": False}, {"RESET": True}, {"RESET": False}])
        assert trace.values("N") == [1, 0, 1]


class TestExecutor:
    def test_records_consumed_inputs_and_observations(self, counter_result):
        executor = ReactiveExecutor(counter_result.executable)
        counter_result.executable.reset()
        trace = executor.run(5, oracle=lambda name: False)
        assert len(trace) == 5
        assert all(step.inputs == {"RESET": False} for step in trace)
        assert trace.outputs().values("N") == [1, 2, 3, 4, 5]
        assert "ZN" in trace[0].observations

    def test_inputs_per_step_override_oracle(self, counter_result):
        counter_result.executable.reset()
        executor = ReactiveExecutor(counter_result.executable)
        trace = executor.run(
            3,
            oracle=lambda name: False,
            inputs_per_step=[{"RESET": False}, {"RESET": True}, {"RESET": False}],
        )
        assert trace.outputs().values("N") == [1, 0, 1]

    def test_missing_oracle_raises(self, counter_result):
        counter_result.executable.reset()
        executor = ReactiveExecutor(counter_result.executable)
        with pytest.raises(KeyError):
            executor.run(1)

    def test_random_oracle_is_reproducible_and_typed(self):
        types = {
            "B": SignalType.BOOLEAN,
            "I": SignalType.INTEGER,
            "R": SignalType.REAL,
        }
        first = random_oracle(types, seed=4)
        second = random_oracle(types, seed=4)
        values_first = [first("B"), first("I"), first("R")]
        values_second = [second("B"), second("I"), second("R")]
        assert values_first == values_second
        assert isinstance(values_first[0], bool)
        assert isinstance(values_first[1], int)
        assert isinstance(values_first[2], float)
