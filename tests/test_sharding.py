"""Properties of the sharded BDD pool: routing, scope lifetime, recycling.

The shard map must be a *pure, stable* function of the kernel fingerprint
(or recompilations would lose their warm scopes), scopes must be released
on every exit path of every shard exactly like the single-pool design, and
the per-shard recycle counters must sum to the headline ``pool_recycles``
statistic so dashboards built on the old counter keep meaning the same
thing.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CompilationService, compile_source
from repro.bdd import BDDManager
from repro.errors import SignalError
from repro.programs import (
    ACCUMULATOR_SOURCE,
    ALARM_SOURCE,
    COUNTER_SOURCE,
    WATCHDOG_SOURCE,
)
from repro.runtime import ReactiveExecutor, random_oracle
from repro.service import shard_for_fingerprint

SOURCES = [COUNTER_SOURCE, WATCHDOG_SOURCE, ACCUMULATOR_SOURCE, ALARM_SOURCE]

BROKEN = [
    (
        f"process BAD{index} = ( ? integer A; ! integer X, Y; )"
        " (| X := Y + A | Y := X + A |) end;"
    )
    for index in range(6)
]


def run_trace(result, steps=20, seed=7):
    result.executable.reset()
    executor = ReactiveExecutor(result.executable)
    trace = executor.run(steps, random_oracle(result.types, seed=seed))
    return [(step.inputs, step.outputs, step.observations) for step in trace]


class TestRoutingFunction:
    @given(fingerprint=st.text(min_size=0, max_size=80), shards=st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_route_is_deterministic_and_in_range(self, fingerprint, shards):
        """Same fingerprint, same shard count -> same shard, always in range."""
        index = shard_for_fingerprint(fingerprint, shards)
        assert 0 <= index < shards
        assert shard_for_fingerprint(fingerprint, shards) == index

    @given(fingerprint=st.text(min_size=1, max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_single_shard_always_routes_to_zero(self, fingerprint):
        assert shard_for_fingerprint(fingerprint, 1) == 0

    def test_route_rejects_non_positive_shard_counts(self):
        with pytest.raises(ValueError):
            shard_for_fingerprint("abc", 0)
        with pytest.raises(ValueError):
            shard_for_fingerprint("abc", -3)

    @given(shards=st.integers(2, 16))
    @settings(max_examples=20, deadline=None)
    def test_routing_spreads_distinct_fingerprints(self, shards):
        """Many distinct fingerprints must not collapse onto one shard."""
        used = {
            shard_for_fingerprint(f"fingerprint-{index}", shards)
            for index in range(64 * shards)
        }
        assert len(used) == shards

    def test_service_routing_agrees_with_the_pure_function(self):
        service = CompilationService(shards=5)
        for index in range(32):
            fingerprint = f"program-{index}"
            assert service.shard_index(fingerprint) == shard_for_fingerprint(
                fingerprint, 5
            )

    def test_routing_is_stable_across_service_instances(self):
        """Two services with equal shard counts route identically (the map
        is hash-of-fingerprint, never id()- or salt-dependent), so a daemon
        restart re-warms the same shards."""
        first = CompilationService(shards=8)
        second = CompilationService(shards=8)
        for index in range(32):
            fingerprint = f"program-{index}"
            assert first.shard_index(fingerprint) == second.shard_index(fingerprint)


class TestShardedCompilation:
    def test_results_land_on_the_routed_shard(self):
        service = CompilationService(shards=4)
        for source in SOURCES:
            result = service.compile(source)
            fingerprint = result.program.fingerprint()
            assert (
                result.hierarchy.manager.base
                is service.shard_manager(fingerprint)
            )

    def test_recompilation_reuses_the_shard_and_its_variables(self):
        service = CompilationService(shards=4)
        first = service.compile(COUNTER_SOURCE)
        fingerprint = first.program.fingerprint()
        manager = service.shard_manager(fingerprint)
        vars_after_first = manager.num_vars
        service.clear_cache()  # force a real recompilation on the same pool
        again = service.compile(COUNTER_SOURCE)
        assert again.hierarchy.manager.base is manager
        assert manager.num_vars == vars_after_first

    def test_sharded_results_match_unpooled_compiles(self):
        service = CompilationService(shards=3)
        for source in SOURCES:
            sharded = service.compile(source)
            reference = compile_source(source)
            assert sharded.python_source() == reference.python_source()
            assert run_trace(sharded) == run_trace(reference)

    def test_constructor_validates_shards(self):
        with pytest.raises(ValueError):
            CompilationService(shards=0)
        with pytest.raises(ValueError, match="shards"):
            CompilationService(manager=BDDManager(), shards=2)

    def test_single_shard_keeps_the_injected_manager(self):
        manager = BDDManager()
        service = CompilationService(manager=manager)
        assert service.manager is manager
        assert service.shards == 1


class TestShardScopeLifetime:
    """Scopes release on success, failure and BaseException, per shard."""

    def test_success_scopes_live_on_their_shards_only(self):
        service = CompilationService(shards=4)
        for source in SOURCES:
            service.compile(source)
        stats = service.statistics()
        assert stats["scopes"] == len(SOURCES)
        # Every scope is attributed to exactly one shard, and the per-shard
        # counts reconstruct the total.
        assert sum(s["scopes"] for s in stats["shard_stats"]) == stats["scopes"]

    def test_failed_compilations_release_their_shard_scopes(self):
        service = CompilationService(shards=4)
        for broken in BROKEN:
            with pytest.raises(SignalError):
                service.compile(broken)
        stats = service.statistics()
        assert stats["scopes"] == 0
        assert all(s["scopes"] == 0 for s in stats["shard_stats"])
        assert stats["cache_entries"] == 0

    def test_base_exception_releases_the_shard_scope(self):
        class Cancelled(BaseException):
            pass

        service = CompilationService(shards=4)
        original = service._compile_program

        def dying(*args, **kwargs):
            original(*args, **kwargs)
            raise Cancelled()

        service._compile_program = dying
        with pytest.raises(Cancelled):
            service.compile(COUNTER_SOURCE)
        stats = service.statistics()
        assert stats["scopes"] == 0
        assert all(s["scopes"] == 0 for s in stats["shard_stats"])

    def test_eviction_releases_scopes_on_a_sharded_pool(self):
        service = CompilationService(max_entries=2, shards=4)
        for source in SOURCES:
            service.compile(source)
        stats = service.statistics()
        assert stats["cache_entries"] == 2
        assert stats["scopes"] == 2
        assert sum(s["scopes"] for s in stats["shard_stats"]) == 2

    def test_mixed_sharded_batch_keeps_only_successful_scopes(self):
        service = CompilationService(shards=4)
        sources = [COUNTER_SOURCE, BROKEN[0], WATCHDOG_SOURCE, BROKEN[1]]
        with pytest.raises(SignalError):
            service.compile_batch(sources, jobs=4)
        stats = service.statistics()
        assert stats["cache_entries"] == stats["scopes"] == 2


class TestShardRecycling:
    def test_per_shard_recycle_counters_sum_to_pool_recycles(self):
        """The headline counter is exactly the sum of the shard counters.

        Watermark 1 forces a recycle on every miss, so with four distinct
        programs the total must be 4 however they spread over the shards.
        """
        service = CompilationService(max_pool_nodes=1, shards=3)
        for source in SOURCES:
            service.compile(source)
        stats = service.statistics()
        assert stats["pool_recycles"] == len(SOURCES)
        assert stats["pool_recycles"] == sum(
            s["recycles"] for s in stats["shard_stats"]
        )

    def test_hot_shard_recycling_spares_other_shards(self):
        """One program blowing the watermark must not recycle every shard.

        The recycle replaces only the hot program's shard manager; programs
        routed to other shards keep their manager object (and hence their
        warm scopes and interned variables) across the event.
        """
        service = CompilationService(shards=4)
        results = {}
        for source in SOURCES:
            result = service.compile(source)
            results[result.program.fingerprint()] = result
        # Pick a victim, then arm the watermark so only a fresh compile on
        # the victim's shard trips it.
        victim_fp = next(iter(results))
        victim_shard = service.shard_index(victim_fp)
        managers_before = {
            fp: service.shard_manager(fp) for fp in results
        }
        service.clear_cache()  # force the next compiles to really run
        service.max_pool_nodes = 1
        victim_source = SOURCES[list(results).index(victim_fp)]
        service.compile(victim_source)
        stats = service.statistics()
        assert stats["shard_stats"][victim_shard]["recycles"] >= 1
        for fp, manager in managers_before.items():
            if service.shard_index(fp) != victim_shard:
                assert service.shard_manager(fp) is manager, (
                    "recycling a hot shard replaced a cold shard's manager"
                )

    def test_recycling_on_a_sharded_pool_preserves_correctness(self):
        service = CompilationService(max_pool_nodes=30, shards=2)
        for _ in range(2):  # second round: recompiles after recycling
            for source in SOURCES:
                sharded = service.compile(source)
                reference = compile_source(source)
                assert sharded.python_source() == reference.python_source()
                assert run_trace(sharded) == run_trace(reference)
            service.clear_cache()
        assert service.statistics()["pool_recycles"] >= 2
