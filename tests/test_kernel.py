"""Tests for desugaring to the SIGNAL kernel."""

import pytest

from repro.errors import NameResolutionError, TypeError_
from repro.lang.kernel import (
    KernelDefault,
    KernelDelay,
    KernelFunction,
    KernelSynchro,
    KernelWhen,
    Literal,
    normalize,
)
from repro.lang.parser import parse_process
from repro.programs import ALARM_SOURCE, COUNTER_SOURCE


def kernel_of(source):
    return normalize(parse_process(source))


def processes_of_kind(program, kind):
    return [p for p in program.processes if isinstance(p, kind)]


class TestBasicDesugaring:
    def test_simple_function_keeps_target(self):
        program = kernel_of(
            "process P = ( ? integer A, B; ! integer C; ) (| C := A + B |) end;"
        )
        assert program.processes == [KernelFunction("C", "+", ("A", "B"))]

    def test_copy_equation(self):
        program = kernel_of(
            "process P = ( ? integer A; ! integer B; ) (| B := A |) end;"
        )
        assert program.processes == [KernelFunction("B", "id", ("A",))]

    def test_constant_equation(self):
        program = kernel_of(
            "process P = ( ? boolean T; ! integer B; ) (| B := (1 when T) default 0 |) end;"
        )
        whens = processes_of_kind(program, KernelWhen)
        assert len(whens) == 1
        assert whens[0].source == Literal(1)

    def test_nested_expression_introduces_intermediates(self):
        program = kernel_of(
            "process P = ( ? integer A, B, C; ! integer D; ) (| D := (A + B) * C |) end;"
        )
        functions = processes_of_kind(program, KernelFunction)
        assert len(functions) == 2
        assert functions[-1].target == "D"
        assert functions[-1].operator == "*"
        # The intermediate is declared as a fresh local.
        intermediate = functions[0].target
        assert intermediate in program.locals

    def test_when_with_expression_condition(self):
        program = kernel_of(
            "process P = ( ? integer A; boolean C1, C2; ! integer D; )"
            " (| D := A when (C1 and C2) |) end;"
        )
        whens = processes_of_kind(program, KernelWhen)
        assert len(whens) == 1
        condition = whens[0].condition
        definitions = {p.target: p for p in processes_of_kind(program, KernelFunction)}
        assert definitions[condition].operator == "and"

    def test_unary_when_becomes_c_when_c(self):
        program = kernel_of(
            "process P = ( ? boolean C; ! boolean D; ) (| D := when C |) end;"
        )
        whens = processes_of_kind(program, KernelWhen)
        assert whens == [KernelWhen("D", "C", "C")]

    def test_event_operator(self):
        program = kernel_of(
            "process P = ( ? integer X; ! boolean E; ) (| E := event X |) end;"
        )
        assert KernelFunction("E", "event", ("X",)) in program.processes

    def test_delay_with_init(self):
        program = kernel_of(COUNTER_SOURCE)
        delays = processes_of_kind(program, KernelDelay)
        assert delays == [KernelDelay("ZN", "N", 0)]

    def test_deep_delay_becomes_chain(self):
        program = kernel_of(
            "process P = ( ? integer X; ! integer Y; ) (| Y := X $ 3 init 0 |) end;"
        )
        delays = processes_of_kind(program, KernelDelay)
        assert len(delays) == 3
        assert delays[-1].target == "Y"
        # The chain is connected: each stage delays the previous one.
        sources = [d.source for d in delays]
        targets = [d.target for d in delays]
        assert sources[0] == "X"
        assert sources[1] == targets[0]
        assert sources[2] == targets[1]

    def test_default_of_two_constants_rejected(self):
        with pytest.raises(TypeError_):
            kernel_of(
                "process P = ( ? boolean C; ! integer X; ) (| X := 1 default 2 |) end;"
            )

    def test_constant_condition_rejected(self):
        with pytest.raises(TypeError_):
            kernel_of(
                "process P = ( ? integer A; ! integer X; ) (| X := A when true |) end;"
            )

    def test_cell_expansion(self):
        program = kernel_of(
            "process P = ( ? integer X; boolean C; ! integer Y; )"
            " (| Y := X cell C init 0 |) end;"
        )
        # The expansion produces a delay on Y, a default defining Y and a synchro.
        delays = processes_of_kind(program, KernelDelay)
        defaults = processes_of_kind(program, KernelDefault)
        synchros = processes_of_kind(program, KernelSynchro)
        assert any(d.initial == 0 for d in delays)
        assert any(d.target == "Y" for d in defaults)
        assert any("Y" in s.signals for s in synchros)


class TestSynchroAndChecks:
    def test_synchro_over_signals(self):
        program = kernel_of(
            "process P = ( ? integer A, B; ! integer C; ) (| C := A + B | synchro {A, B} |) end;"
        )
        assert KernelSynchro(("A", "B")) in program.processes

    def test_synchro_over_expressions_introduces_signals(self):
        program = kernel_of(ALARM_SOURCE)
        synchros = processes_of_kind(program, KernelSynchro)
        assert len(synchros) == 2
        # All synchro operands are signal names.
        for synchro in synchros:
            for name in synchro.signals:
                assert name in program.signals

    def test_undeclared_reference_rejected(self):
        with pytest.raises(NameResolutionError):
            kernel_of("process P = ( ? integer A; ! integer B; ) (| B := A + C |) end;")

    def test_defining_an_input_rejected(self):
        with pytest.raises(NameResolutionError):
            kernel_of("process P = ( ? integer A; ! integer B; ) (| A := 1 when (A = 1) | B := A |) end;")

    def test_double_definition_rejected(self):
        with pytest.raises(NameResolutionError):
            kernel_of(
                "process P = ( ? integer A; ! integer B; ) (| B := A | B := A + 1 |) end;"
            )

    def test_missing_definition_rejected(self):
        with pytest.raises(NameResolutionError):
            kernel_of("process P = ( ? integer A; ! integer B, C; ) (| B := A |) end;")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(NameResolutionError):
            kernel_of(
                "process P = ( ? integer A; boolean A; ! integer B; ) (| B := A |) end;"
            )

    def test_fresh_names_do_not_clash_with_user_names(self):
        program = kernel_of(
            "process P = ( ? integer A, B, f_k1; ! integer D; ) (| D := (A + B) * f_k1 |) end;"
        )
        assert len(set(program.signals)) == len(program.signals)

    def test_alarm_kernel_shape(self):
        program = kernel_of(ALARM_SOURCE)
        assert program.inputs == ["BRAKE", "STOP_OK", "LIMIT_REACHED"]
        assert program.outputs == ["ALARM"]
        kinds = [type(p).__name__ for p in program.processes]
        assert "KernelDelay" in kinds
        assert "KernelDefault" in kinds
        assert kinds.count("KernelSynchro") == 2
