"""The kernel operator semantics of Figures 1-4, via the reference interpreter.

Each test reproduces the timing diagram of one figure of the paper:

* Figure 1: ``X := X1 + X2`` (synchronous functional expression);
* Figure 2: ``ZX := X $ 1 init v0`` (reference to past values);
* Figure 3: ``X := U when C`` (downsampling);
* Figure 4: ``X := U default V`` (deterministic merge).
"""

import pytest

from repro.errors import SimulationError
from repro.lang.kernel import normalize
from repro.lang.parser import parse_process
from repro.lang.types import infer_types
from repro.runtime.interpreter import KernelInterpreter
from repro.runtime.trace import ABSENT, Trace, timing_diagram


def interpreter_for(source):
    program = normalize(parse_process(source))
    return KernelInterpreter(program, infer_types(program))


class TestFigure1Addition:
    SOURCE = """
    process ADD =
      ( ? integer X1, X2; ! integer X; )
      (| X := X1 + X2 |)
    end;
    """

    def test_paper_trace(self):
        # Figure 1: X1 = 1 5 2 7 8 2 1 3 ; X2 = 6 7 11 10 1 ... ; X = pointwise sum
        interpreter = interpreter_for(self.SOURCE)
        x1 = [1, 5, 2, 7, 8]
        x2 = [6, 7, 11, 10, 1]
        outputs = [
            interpreter.step({"X1": a, "X2": b})["X"] for a, b in zip(x1, x2)
        ]
        assert outputs == [a + b for a, b in zip(x1, x2)]

    def test_inputs_must_be_synchronous(self):
        interpreter = interpreter_for(self.SOURCE)
        with pytest.raises(SimulationError):
            interpreter.step({"X1": 1})  # X2 absent: clock contradiction

    def test_all_absent_instant(self):
        interpreter = interpreter_for(self.SOURCE)
        assert interpreter.step({}) == {}


class TestFigure2Delay:
    SOURCE = """
    process DELAY =
      ( ? integer X; ! integer ZX; )
      (| ZX := X $ 1 init 9 |)
    end;
    """

    def test_paper_trace(self):
        # Figure 2: X = 1 5 2 7 8 2 1 3, v0 = 9 -> ZX = 9 1 5 2 7 8 2 1
        interpreter = interpreter_for(self.SOURCE)
        values = [1, 5, 2, 7, 8, 2, 1, 3]
        outputs = [interpreter.step({"X": v})["ZX"] for v in values]
        assert outputs == [9, 1, 5, 2, 7, 8, 2, 1]

    def test_delay_is_synchronous_with_source(self):
        interpreter = interpreter_for(self.SOURCE)
        assert interpreter.step({}) == {}
        result = interpreter.step({"X": 4})
        assert result["ZX"] == 9

    def test_absence_does_not_advance_state(self):
        interpreter = interpreter_for(self.SOURCE)
        interpreter.step({"X": 1})
        interpreter.step({})  # absent instant
        assert interpreter.step({"X": 2})["ZX"] == 1


class TestFigure3When:
    SOURCE = """
    process SAMPLE =
      ( ? integer U; boolean C; ! integer X; )
      (| X := U when C |)
    end;
    """

    def test_paper_trace(self):
        # Figure 3: U = 1 5 2 7 8 2 1 3 ; C = f t f t t . t f (absence marked .)
        interpreter = interpreter_for(self.SOURCE)
        u_values = [1, 5, 2, 7, 8, 2, 1, 3]
        c_values = [False, True, False, True, True, ABSENT, True, False]
        outputs = []
        for u, c in zip(u_values, c_values):
            instant = {"U": u}
            if c is not ABSENT:
                instant["C"] = c
            result = interpreter.step(instant)
            outputs.append(result.get("X", ABSENT))
        assert outputs == [ABSENT, 5, ABSENT, 7, 8, ABSENT, 1, ABSENT]

    def test_when_with_absent_source(self):
        interpreter = interpreter_for(self.SOURCE)
        result = interpreter.step({"C": True})
        assert "X" not in result

    def test_result_is_subsequence_of_source(self):
        interpreter = interpreter_for(self.SOURCE)
        trace = Trace()
        for u, c in [(1, True), (2, False), (3, True)]:
            trace.append(interpreter.step({"U": u, "C": c}))
        assert trace.values("X") == [1, 3]


class TestFigure4Default:
    SOURCE = """
    process MERGE =
      ( ? integer U, V; ! integer X; )
      (| X := U default V |)
    end;
    """

    def test_paper_trace(self):
        # Figure 4: U = 1 2 . 5 . 7 8 ; V = . 1 5 8 . . 2 -> X = 1 2 5 5 . 7 8
        interpreter = interpreter_for(self.SOURCE)
        u_values = [1, 2, ABSENT, 5, ABSENT, 7, 8]
        v_values = [ABSENT, 1, 5, 8, ABSENT, ABSENT, 2]
        outputs = []
        for u, v in zip(u_values, v_values):
            instant = {}
            if u is not ABSENT:
                instant["U"] = u
            if v is not ABSENT:
                instant["V"] = v
            outputs.append(interpreter.step(instant).get("X", ABSENT))
        assert outputs == [1, 2, 5, 5, ABSENT, 7, 8]

    def test_priority_goes_to_the_left_operand(self):
        interpreter = interpreter_for(self.SOURCE)
        assert interpreter.step({"U": 10, "V": 20})["X"] == 10

    def test_absent_when_both_absent(self):
        interpreter = interpreter_for(self.SOURCE)
        assert interpreter.step({}) == {}


class TestTimingDiagram:
    def test_diagram_rendering(self):
        trace = Trace([{"X": 1, "C": True}, {"X": 2}, {"C": False}])
        diagram = timing_diagram(trace, ["X", "C"])
        lines = diagram.splitlines()
        assert lines[0].startswith("X :")
        assert "." in lines[0]  # absence marker
        assert "t" in lines[1] and "f" in lines[1]

    def test_diagram_of_empty_trace(self):
        assert timing_diagram(Trace()) == "(empty trace)"
