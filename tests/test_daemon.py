"""The compilation daemon: protocol, caching tiers, restarts, resilience.

Engine-level tests drive :class:`CompilationDaemon.handle_request` directly
(no sockets); server-level tests run a real asyncio server on a background
thread (:class:`ThreadedDaemon`) and talk to it through
:class:`RemoteCompiler` or a raw socket.
"""

import io
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro import GenerationStyle, compile_source
from repro.service import (
    CompilationDaemon,
    CompilationService,
    CompileStore,
    RemoteCompiler,
    RemoteError,
    ThreadedDaemon,
)
from repro.programs import ALARM_SOURCE, COUNTER_SOURCE, WATCHDOG_SOURCE


class TestEngine:
    def test_compile_origins_progress_memory(self):
        daemon = CompilationDaemon()
        _, origin_one = daemon.compile_record(COUNTER_SOURCE)
        _, origin_two = daemon.compile_record(COUNTER_SOURCE)
        assert (origin_one, origin_two) == ("compiled", "memory")

    def test_store_tier_fills_and_promotes(self, tmp_path):
        store = CompileStore(tmp_path)
        first = CompilationDaemon(store=store)
        first.compile_record(COUNTER_SOURCE)
        assert len(store) == 1

        second = CompilationDaemon(store=store)
        _, origin = second.compile_record(COUNTER_SOURCE)
        assert origin == "store"
        _, origin = second.compile_record(COUNTER_SOURCE)
        assert origin == "memory"  # promoted on the store hit
        assert second.statistics()["daemon"]["compiles"] == 0

    def test_reformatted_source_hits_without_reparse(self):
        daemon = CompilationDaemon()
        daemon.compile_record(COUNTER_SOURCE)
        reformatted = "\n".join(
            line.rstrip() + "  " for line in COUNTER_SOURCE.splitlines()
        )
        _, origin = daemon.compile_record(reformatted)
        assert origin == "memory"

    def test_compile_response_artifacts_match_local_compiler(self):
        daemon = CompilationDaemon()
        response = daemon.handle_request(
            {
                "op": "compile",
                "source": COUNTER_SOURCE,
                "emit": ["tree", "clocks", "kernel", "python", "c", "stats"],
            }
        )
        assert response["ok"]
        local = compile_source(COUNTER_SOURCE)
        artifacts = response["artifacts"]
        assert artifacts["python"] == local.python_source()
        assert artifacts["c"] == local.c_source()
        assert artifacts["tree"] == local.tree_text()
        assert artifacts["clocks"] == str(local.clock_system)
        assert artifacts["kernel"] == str(local.program)
        assert artifacts["stats"] == local.statistics()

    def test_simulation_is_deterministic_per_seed(self):
        daemon = CompilationDaemon()
        request = {"op": "compile", "source": COUNTER_SOURCE, "simulate": 8, "seed": 3}
        first = daemon.handle_request(request)
        second = daemon.handle_request(request)
        assert first["simulation"]["diagram"] == second["simulation"]["diagram"]
        other_seed = daemon.handle_request(dict(request, seed=4))
        assert other_seed["simulation"]["diagram"] != first["simulation"]["diagram"]

    def test_flat_style_is_a_distinct_entry(self):
        daemon = CompilationDaemon()
        daemon.compile_record(COUNTER_SOURCE)
        _, origin = daemon.compile_record(COUNTER_SOURCE, style=GenerationStyle.FLAT)
        assert origin == "compiled"

    def test_response_is_json_serializable(self):
        daemon = CompilationDaemon()
        response = daemon.handle_request(
            {"op": "compile", "source": COUNTER_SOURCE, "emit": ["stats"], "simulate": 2}
        )
        json.dumps(response)  # must not raise


class TestEngineErrors:
    def test_parse_error_code(self):
        response = CompilationDaemon().handle_request(
            {"op": "compile", "source": "process X = nonsense"}
        )
        assert response == {
            "ok": False,
            "op": "compile",
            "error": response["error"],
        }
        assert response["error"]["code"] == "parse-error"
        assert response["error"]["message"]

    def test_causality_error_code(self):
        broken = (
            "process BAD = ( ? integer A; ! integer X, Y; )"
            " (| X := Y + A | Y := X + A |) end;"
        )
        response = CompilationDaemon().handle_request({"op": "compile", "source": broken})
        assert not response["ok"]
        assert response["error"]["code"] == "causality-error"

    @pytest.mark.parametrize(
        "request_object, code",
        [
            ({"op": "compile"}, "invalid-request"),  # no source
            ({"op": "compile", "source": 17}, "invalid-request"),
            ({"op": "compile", "source": "  "}, "invalid-request"),
            ({"op": "compile", "source": "x", "style": "spiral"}, "invalid-request"),
            ({"op": "compile", "source": "x", "emit": "python"}, "invalid-request"),
            ({"op": "compile", "source": "x", "emit": ["bogus"]}, "invalid-request"),
            ({"op": "compile", "source": "x", "simulate": True}, "invalid-request"),
            ({"op": "warm-up"}, "invalid-request"),
            ({}, "invalid-request"),
        ],
    )
    def test_invalid_requests_are_structured(self, request_object, code):
        response = CompilationDaemon().handle_request(request_object)
        assert not response["ok"]
        assert response["error"]["code"] == code

    def test_invalid_json_line(self):
        response = CompilationDaemon().handle_line(b"{not json\n")
        assert not response["ok"]
        assert response["error"]["code"] == "invalid-json"

    def test_non_object_json_line(self):
        response = CompilationDaemon().handle_line(b"[1, 2, 3]\n")
        assert not response["ok"]
        assert response["error"]["code"] == "invalid-request"

    def test_errors_are_counted_but_do_not_poison_the_engine(self):
        daemon = CompilationDaemon()
        daemon.handle_line(b"garbage\n")
        daemon.handle_request({"op": "compile", "source": "broken"})
        response = daemon.handle_request({"op": "compile", "source": COUNTER_SOURCE})
        assert response["ok"]
        assert daemon.statistics()["daemon"]["errors"] == 2


class TestServer:
    def test_ping_stats_clear_roundtrip(self):
        with ThreadedDaemon() as daemon:
            with RemoteCompiler(*daemon.address) as client:
                assert isinstance(client.ping(), int)
                client.compile(COUNTER_SOURCE)
                assert client.stats()["daemon"]["compiles"] == 1
                client.clear_cache()
                result = client.compile(COUNTER_SOURCE)
                assert result.origin == "compiled"

    def test_remote_modular_compile_round_trip(self):
        """``RemoteCompiler.compile(modular=True)`` drives the daemon's
        modular miss path; the response shape stays whole-program keyed."""
        with ThreadedDaemon() as daemon:
            with RemoteCompiler(*daemon.address) as client:
                result = client.compile(
                    COUNTER_SOURCE, emit=["python"], modular=True
                )
                assert result.origin == "compiled"
                assert result.artifacts["python"] == compile_source(
                    COUNTER_SOURCE
                ).python_source()
                stats = client.stats()["service"]
                assert stats["modular_requests"] == 1
                assert stats["links"] == 1

    def test_concurrent_clients_share_the_cache(self):
        """N clients x M repeats of one source: exactly one real compile."""
        clients, repeats = 4, 3
        with ThreadedDaemon() as daemon:
            errors = []

            def hammer():
                try:
                    with RemoteCompiler(*daemon.address) as client:
                        for _ in range(repeats):
                            client.compile(COUNTER_SOURCE)
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [threading.Thread(target=hammer) for _ in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []

            with RemoteCompiler(*daemon.address) as client:
                stats = client.stats()["daemon"]
            assert stats["compile_requests"] == clients * repeats
            assert stats["compiles"] == 1
            assert stats["memory_hits"] == clients * repeats - 1
            # Hit ratio: everything after the very first request was cached.
            hit_ratio = stats["memory_hits"] / stats["compile_requests"]
            assert hit_ratio == pytest.approx(1 - 1 / (clients * repeats))

    def test_kill_restart_rewarms_from_disk_store(self, tmp_path):
        """A restarted daemon answers its first repeat compile from the store."""
        sources = [COUNTER_SOURCE, WATCHDOG_SOURCE, ALARM_SOURCE]
        with ThreadedDaemon(store=str(tmp_path)) as daemon:
            with RemoteCompiler(*daemon.address) as client:
                for source in sources:
                    assert client.compile(source).origin == "compiled"
        # The daemon is dead; only the directory survives.
        assert len(CompileStore(tmp_path)) == len(sources)

        with ThreadedDaemon(store=str(tmp_path)) as reborn:
            with RemoteCompiler(*reborn.address) as client:
                for source in sources:
                    assert client.compile(source).origin == "store"
                stats = client.stats()
                assert stats["daemon"]["compiles"] == 0
                assert stats["daemon"]["store_hits"] == len(sources)
                assert stats["store"]["hits"] == len(sources)
                # ...and the rewarmed entries now live in memory.
                for source in sources:
                    assert client.compile(source).origin == "memory"

    def test_restarted_daemon_results_match_fresh_compiles(self, tmp_path):
        local = compile_source(ALARM_SOURCE)
        with ThreadedDaemon(store=str(tmp_path)) as daemon:
            with RemoteCompiler(*daemon.address) as client:
                client.compile(ALARM_SOURCE)
        with ThreadedDaemon(store=str(tmp_path)) as reborn:
            with RemoteCompiler(*reborn.address) as client:
                result = client.compile(ALARM_SOURCE, emit=["python", "stats"])
                assert result.origin == "store"
                assert result.artifacts["python"] == local.python_source()
                assert result.artifacts["stats"] == local.statistics()

    def test_malformed_requests_do_not_kill_the_server(self):
        with ThreadedDaemon() as daemon:
            host, port = daemon.address
            raw = socket.create_connection((host, port), timeout=10)
            stream = raw.makefile("rwb")
            try:
                for payload in (b"definitely not json\n", b"[]\n", b'{"op": "nope"}\n'):
                    stream.write(payload)
                    stream.flush()
                    response = json.loads(stream.readline())
                    assert response["ok"] is False
                    assert "code" in response["error"]
                # Same connection still serves good requests...
                stream.write(json.dumps({"op": "ping"}).encode() + b"\n")
                stream.flush()
                assert json.loads(stream.readline())["ok"]
            finally:
                raw.close()
            # ...and so do fresh connections.
            with RemoteCompiler(host, port) as client:
                assert client.compile(COUNTER_SOURCE).name == "COUNT"

    def test_compile_error_reaches_client_as_remote_error(self):
        with ThreadedDaemon() as daemon:
            with RemoteCompiler(*daemon.address) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.compile("process X = gibberish")
                assert excinfo.value.code == "parse-error"
                # The connection survives the failed compile.
                assert client.compile(COUNTER_SOURCE).name == "COUNT"

    def test_unix_socket_transport(self, tmp_path):
        path = str(tmp_path / "daemon.sock")
        with ThreadedDaemon(socket_path=path) as daemon:
            assert daemon.address == path
            with RemoteCompiler(socket_path=path) as client:
                assert client.compile(COUNTER_SOURCE).name == "COUNT"

    def test_second_daemon_cannot_hijack_a_live_socket(self, tmp_path):
        """Double-binding a unix socket fails loudly and harms nobody.

        (asyncio's start_unix_server would happily unlink a live daemon's
        socket; the daemon probes for a listener first.)
        """
        path = str(tmp_path / "daemon.sock")
        with ThreadedDaemon(socket_path=path) as daemon:
            with pytest.raises(RuntimeError, match="already listening"):
                ThreadedDaemon(socket_path=path).start(timeout=5)
            # The first daemon's socket file and service are untouched.
            with RemoteCompiler(socket_path=path) as client:
                assert client.compile(COUNTER_SOURCE).name == "COUNT"

    def test_stale_socket_is_rebound(self, tmp_path):
        """A socket file left by a crashed daemon does not block restarts."""
        path = str(tmp_path / "daemon.sock")
        socket.socket(socket.AF_UNIX, socket.SOCK_STREAM).bind(path)  # stale
        with ThreadedDaemon(socket_path=path) as daemon:
            with RemoteCompiler(socket_path=path) as client:
                assert client.ping() >= 1

    def test_shutdown_request_stops_the_server(self):
        daemon = ThreadedDaemon().start()
        try:
            host, port = daemon.address
            with RemoteCompiler(host, port) as client:
                client.shutdown()
            daemon._thread.join(10)
            assert daemon._thread is None or not daemon._thread.is_alive()
            with pytest.raises(OSError):
                socket.create_connection((host, port), timeout=2)
        finally:
            daemon.stop()

    def test_remote_simulation_matches_local(self):
        local = compile_source(COUNTER_SOURCE)
        from repro.runtime import ReactiveExecutor, random_oracle, timing_diagram

        trace = ReactiveExecutor(local.executable).run(
            6, random_oracle(local.types, seed=2)
        )
        with ThreadedDaemon() as daemon:
            with RemoteCompiler(*daemon.address) as client:
                result = client.compile(COUNTER_SOURCE, simulate=6, seed=2)
        assert result.simulation["diagram"] == timing_diagram(trace.observations())


class TestParallelDaemon:
    """The daemon with several request workers, threads and processes."""

    def test_thread_workers_over_a_sharded_pool(self):
        """jobs=3 request threads compiling distinct programs concurrently
        on a shards=4 service: every answer matches a local compile."""
        sources = [COUNTER_SOURCE, WATCHDOG_SOURCE, ALARM_SOURCE]
        with ThreadedDaemon(shards=4, jobs=3) as daemon:
            errors = []
            answers = {}

            def hammer(source):
                try:
                    with RemoteCompiler(*daemon.address) as client:
                        answers[source] = client.compile(source, emit=["python"])
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [threading.Thread(target=hammer, args=(s,)) for s in sources]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            for source in sources:
                local = compile_source(source)
                assert answers[source].artifacts["python"] == local.python_source()
            with RemoteCompiler(*daemon.address) as client:
                stats = client.stats()
                assert stats["daemon"]["jobs"] == 3
                assert stats["daemon"]["compiles"] == len(sources)
                assert stats["service"]["shards"] == 4

    def test_process_workers_compile_and_cache(self):
        """workers="processes": misses compile in worker processes, repeats
        hit the daemon's memory tier, artifacts match a local compile."""
        with ThreadedDaemon(workers="processes", jobs=2) as daemon:
            with RemoteCompiler(*daemon.address) as client:
                first = client.compile(COUNTER_SOURCE, emit=["python", "c"])
                second = client.compile(COUNTER_SOURCE)
                assert (first.origin, second.origin) == ("compiled", "memory")
                local = compile_source(COUNTER_SOURCE)
                assert first.artifacts["python"] == local.python_source()
                assert first.artifacts["c"] == local.c_source()
                stats = client.stats()["daemon"]
                assert stats["workers"] == "processes"
        # The daemon shut its worker-process pool down on exit.
        assert daemon.daemon.service._process_pool is None

    def test_process_worker_errors_reach_the_client(self):
        with ThreadedDaemon(workers="processes", jobs=2) as daemon:
            with RemoteCompiler(*daemon.address) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.compile(
                        "process BAD = ( ? integer A; ! integer X, Y; )"
                        " (| X := Y + A | Y := X + A |) end;"
                    )
                assert excinfo.value.code == "causality-error"
                # The daemon and its process pool survive the failure.
                assert client.compile(COUNTER_SOURCE).name == "COUNT"

    def test_process_workers_simulate_from_records(self):
        """Simulation runs on an executable rebuilt from the worker's record."""
        from repro.runtime import ReactiveExecutor, random_oracle, timing_diagram

        local = compile_source(COUNTER_SOURCE)
        trace = ReactiveExecutor(local.executable).run(
            5, random_oracle(local.types, seed=9)
        )
        with ThreadedDaemon(workers="processes", jobs=2) as daemon:
            with RemoteCompiler(*daemon.address) as client:
                result = client.compile(COUNTER_SOURCE, simulate=5, seed=9)
        assert result.simulation["diagram"] == timing_diagram(trace.observations())


class _SlowService(CompilationService):
    """A service whose compiles block until released (drain testing)."""

    def __init__(self, delay=0.3):
        super().__init__()
        self.delay = delay

    def compile_process(self, *args, **kwargs):
        time.sleep(self.delay)
        return super().compile_process(*args, **kwargs)


class TestGracefulDrain:
    def test_drain_finishes_inflight_compiles_before_exit(self):
        """request_shutdown(drain=True) mid-compile: the client still gets
        its full response, then the server exits."""
        daemon = ThreadedDaemon(daemon=CompilationDaemon(service=_SlowService()))
        daemon.start()
        try:
            host, port = daemon.address
            responses = []

            def compile_slowly():
                with RemoteCompiler(host, port) as client:
                    responses.append(client.compile(COUNTER_SOURCE, emit=["python"]))

            worker = threading.Thread(target=compile_slowly)
            worker.start()
            time.sleep(0.1)  # let the request reach the compile worker
            daemon.daemon.request_shutdown(drain=True)
            worker.join(10)
            assert not worker.is_alive()
            assert len(responses) == 1
            assert responses[0].artifacts["python"] == compile_source(
                COUNTER_SOURCE
            ).python_source()
        finally:
            daemon.stop()

    def test_shutdown_op_with_drain_answers_inflight_requests(self):
        """A client-requested drain shutdown behaves like SIGTERM."""
        daemon = ThreadedDaemon(daemon=CompilationDaemon(service=_SlowService()))
        daemon.start()
        try:
            host, port = daemon.address
            responses = []

            def compile_slowly():
                with RemoteCompiler(host, port) as client:
                    responses.append(client.compile(COUNTER_SOURCE))

            worker = threading.Thread(target=compile_slowly)
            worker.start()
            time.sleep(0.1)
            with RemoteCompiler(host, port) as control:
                control.shutdown(drain=True)
            worker.join(10)
            assert not worker.is_alive()
            assert len(responses) == 1 and responses[0].name == "COUNT"
        finally:
            daemon.stop()

    def test_drain_refuses_new_work_on_open_connections(self):
        """Once draining, an established connection cannot submit new work
        (its next request sees the connection close), while the in-flight
        compile still completes and answers."""
        daemon = ThreadedDaemon(daemon=CompilationDaemon(service=_SlowService(0.6)))
        daemon.start()
        try:
            host, port = daemon.address
            idle_client = RemoteCompiler(host, port)  # connected before drain
            responses = []

            def compile_slowly():
                with RemoteCompiler(host, port) as client:
                    responses.append(client.compile(COUNTER_SOURCE))

            worker = threading.Thread(target=compile_slowly)
            worker.start()
            time.sleep(0.15)  # the slow compile is now in flight
            daemon.daemon.request_shutdown(drain=True)
            time.sleep(0.05)
            with pytest.raises(RemoteError):
                idle_client.compile(WATCHDOG_SOURCE)  # refused, not compiled
            idle_client.close()
            worker.join(10)
            assert not worker.is_alive()
            assert len(responses) == 1 and responses[0].name == "COUNT"
        finally:
            daemon.stop()

    def test_sigterm_drains_a_real_serve_process(self, tmp_path, cli_server):
        """`python -m repro serve` + SIGTERM: clean exit, socket removed.

        The ``cli_server`` fixture owns the child's lifetime: even if an
        assertion fires before the SIGTERM, teardown reaps the process.
        """
        socket_path = str(tmp_path / "daemon.sock")
        process = cli_server("serve", "--socket", socket_path)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline and not os.path.exists(socket_path):
            time.sleep(0.05)
        assert os.path.exists(socket_path), "daemon never bound its socket"
        with RemoteCompiler(socket_path=socket_path) as client:
            assert client.compile(COUNTER_SOURCE).name == "COUNT"
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=20) == 0
        assert not os.path.exists(socket_path)


class TestRequestLog:
    def test_log_lines_cover_every_request(self):
        log = io.StringIO()
        daemon = CompilationDaemon(request_log=log)
        daemon.handle_request({"op": "compile", "source": COUNTER_SOURCE})
        daemon.handle_request({"op": "compile", "source": COUNTER_SOURCE})
        daemon.handle_request({"op": "ping"})
        daemon.handle_request({"op": "compile", "source": "broken"})
        daemon.handle_line(b"not json\n")
        entries = [json.loads(line) for line in log.getvalue().splitlines()]
        assert [e["op"] for e in entries] == [
            "compile", "compile", "ping", "compile", None,
        ]
        assert [e["ok"] for e in entries] == [True, True, True, False, False]
        assert entries[0]["origin"] == "compiled"
        assert entries[1]["origin"] == "memory"
        assert entries[3]["code"] == "parse-error"
        assert entries[4]["code"] == "invalid-json"
        assert all(e["elapsed_ms"] >= 0 for e in entries)

    def test_log_file_is_created_and_closed_by_the_server(self, tmp_path):
        log_path = tmp_path / "requests.log"
        with ThreadedDaemon(request_log=str(log_path)) as daemon:
            with RemoteCompiler(*daemon.address) as client:
                client.compile(COUNTER_SOURCE)
                client.ping()
        entries = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        assert [e["op"] for e in entries] == ["compile", "ping"]
        # The daemon closed its own file handle on shutdown.
        assert daemon.daemon._request_log is None

    def test_no_log_by_default(self):
        daemon = CompilationDaemon()
        daemon.handle_request({"op": "ping"})
        assert daemon._log_stream() is None


class TestStorePruning:
    def _fill(self, client, sources):
        for source in sources:
            client.compile(source)

    def test_prune_op_shrinks_the_store(self, tmp_path):
        with ThreadedDaemon(store=str(tmp_path)) as daemon:
            with RemoteCompiler(*daemon.address) as client:
                self._fill(client, [COUNTER_SOURCE, WATCHDOG_SOURCE, ALARM_SOURCE])
                before = client.stats()["store"]["entries"]
                assert before == 3
                report = client.prune(max_bytes=0)
                assert report["removed"] == 3
                assert report["remaining_entries"] == 0
                assert client.stats()["store"]["entries"] == 0

    def test_prune_without_store_is_invalid_request(self):
        response = CompilationDaemon().handle_request({"op": "prune", "max_bytes": 10})
        assert not response["ok"]
        assert response["error"]["code"] == "invalid-request"

    def test_prune_without_budget_or_policy_is_invalid_request(self, tmp_path):
        daemon = CompilationDaemon(store=CompileStore(tmp_path))
        response = daemon.handle_request({"op": "prune"})
        assert not response["ok"]
        assert response["error"]["code"] == "invalid-request"

    def test_prune_defaults_to_the_configured_policy(self, tmp_path):
        daemon = CompilationDaemon(store=CompileStore(tmp_path), store_max_bytes=0)
        daemon.compile_record(COUNTER_SOURCE)
        # The policy already pruned on spill; an explicit no-budget prune
        # then uses the same configured budget.
        response = daemon.handle_request({"op": "prune"})
        assert response["ok"]
        assert response["remaining_bytes"] == 0

    def test_store_max_bytes_policy_bounds_the_store(self, tmp_path):
        """Under a tight byte budget the store never retains more than the
        budget after a spill (give or take the entry being written)."""
        store = CompileStore(tmp_path)
        probe = CompilationDaemon(store=store)
        probe.compile_record(COUNTER_SOURCE)
        entry_bytes = store.statistics()["disk_bytes"]
        store.clear()

        budget = entry_bytes + entry_bytes // 2  # room for one entry, not two
        daemon = CompilationDaemon(store=store, store_max_bytes=budget)
        for source in [COUNTER_SOURCE, WATCHDOG_SOURCE, ALARM_SOURCE]:
            daemon.compile_record(source)
        assert store.statistics()["disk_bytes"] <= budget
        assert daemon.statistics()["daemon"]["store_pruned_entries"] >= 2

    def test_memory_tier_hits_keep_store_entries_prune_safe(self, tmp_path):
        """A record served from memory must stay recent on disk: prune()
        evicts by mtime, and hot records never reach store.get()."""
        from repro.lang.kernel import normalize
        from repro.lang.parser import parse_process
        from repro.service.store import store_key

        def key_of(source):
            return store_key(
                normalize(parse_process(source)).fingerprint(),
                GenerationStyle.HIERARCHICAL, False, True,
            )

        store = CompileStore(tmp_path)
        daemon = CompilationDaemon(store=store)
        daemon.compile_record(COUNTER_SOURCE)
        daemon.compile_record(WATCHDOG_SOURCE)
        # Age both entries deterministically, then hit COUNTER from the
        # memory tier: the hit must refresh its disk recency.
        for index, source in enumerate([COUNTER_SOURCE, WATCHDOG_SOURCE]):
            os.utime(store._entry_path(key_of(source)), (1000 + index, 1000 + index))
        _, origin = daemon.compile_record(COUNTER_SOURCE)
        assert origin == "memory"
        survivor_bytes = store._entry_path(key_of(COUNTER_SOURCE)).stat().st_size
        store.prune(survivor_bytes)
        assert store.get(key_of(COUNTER_SOURCE)) is not None
        assert store.get(key_of(WATCHDOG_SOURCE)) is None  # cold: evicted

    def test_pruned_entry_recompiles_cleanly(self, tmp_path):
        with ThreadedDaemon(store=str(tmp_path)) as daemon:
            with RemoteCompiler(*daemon.address) as client:
                assert client.compile(COUNTER_SOURCE).origin == "compiled"
                client.prune(max_bytes=0)
                client.clear_cache()  # drop the memory tier too
                result = client.compile(COUNTER_SOURCE, emit=["python"])
                assert result.origin == "compiled"
                assert result.artifacts["python"] == compile_source(
                    COUNTER_SOURCE
                ).python_source()


class TestStoreOps:
    """The store-get/store-put ops: the artifact tier over the wire."""

    def _record(self):
        daemon = CompilationDaemon()
        record, _ = daemon.compile_record(COUNTER_SOURCE)
        return record

    def test_store_get_miss_then_hit_with_origins(self, tmp_path):
        daemon = CompilationDaemon(store=str(tmp_path))
        record, _ = daemon.compile_record(COUNTER_SOURCE)
        fingerprint = record["fingerprint"]
        response = daemon.handle_request(
            {"op": "store-get", "fingerprint": fingerprint}
        )
        assert response["ok"] and response["found"]
        assert response["origin"] == "memory"
        assert response["record"]["fingerprint"] == fingerprint

        # A fresh daemon on the same store answers from disk and promotes.
        restarted = CompilationDaemon(store=str(tmp_path))
        response = restarted.handle_request(
            {"op": "store-get", "fingerprint": fingerprint}
        )
        assert response["found"] and response["origin"] == "store"
        response = restarted.handle_request(
            {"op": "store-get", "fingerprint": fingerprint}
        )
        assert response["found"] and response["origin"] == "memory"

    def test_store_get_miss_is_ok_not_error(self):
        daemon = CompilationDaemon()
        response = daemon.handle_request(
            {"op": "store-get", "fingerprint": "no-such-kernel"}
        )
        assert response["ok"] and response["found"] is False
        assert daemon.statistics()["daemon"]["errors"] == 0

    def test_store_get_validates_fields(self):
        daemon = CompilationDaemon()
        for request in (
            {"op": "store-get"},
            {"op": "store-get", "fingerprint": ""},
            {"op": "store-get", "fingerprint": "x", "style": "baroque"},
        ):
            response = daemon.handle_request(request)
            assert not response["ok"]
            assert response["error"]["code"] == "invalid-request"

    def test_store_put_feeds_both_tiers(self, tmp_path):
        record = self._record()
        daemon = CompilationDaemon(store=str(tmp_path))
        response = daemon.handle_request({"op": "store-put", "record": record})
        assert response["ok"] and response["stored"] is True
        # The injected record answers compiles without compiling.
        _, origin = daemon.compile_record(COUNTER_SOURCE)
        assert origin == "memory"
        assert daemon.statistics()["daemon"]["compiles"] == 0

    def test_linked_records_ride_the_store_ops(self, tmp_path):
        """A modular compile spills its ``kind: "linked"`` record; the
        store-get/store-put ops address it by link fingerprint, and an
        injected linked record answers a modular miss on another daemon
        without loading (or compiling) a single unit."""
        from repro.codegen.ir import GenerationStyle
        from repro.lang.kernel import normalize
        from repro.lang.parser import parse_process
        from repro.lang.units import split_units
        from repro.service.cache import link_fingerprint

        daemon = CompilationDaemon(store=str(tmp_path / "first"))
        daemon.compile_record(COUNTER_SOURCE, modular=True)
        program = normalize(parse_process(COUNTER_SOURCE))
        units = split_units(program)
        link_fp = link_fingerprint(
            program.name,
            [unit.fingerprint() for unit in units],
            [unit.from_canonical for unit in units],
            program.inputs,
            program.outputs,
            GenerationStyle.HIERARCHICAL.value,
            False,
            True,
        )
        response = daemon.handle_request(
            {"op": "store-get", "kind": "linked", "fingerprint": link_fp}
        )
        assert response["ok"] and response["found"]
        record = response["record"]
        assert record["kind"] == "linked"
        assert record["fingerprint"] == link_fp

        other = CompilationDaemon(store=str(tmp_path / "second"))
        put = other.handle_request({"op": "store-put", "record": record})
        assert put["ok"] and put["stored"] is True
        other.compile_record(COUNTER_SOURCE, modular=True)
        service_stats = other.statistics()["service"]
        assert service_stats["link_store_hits"] == 1
        assert service_stats["unit_store_hits"] == 0
        assert service_stats["unit_misses"] == 0

    def test_store_put_without_disk_store_feeds_memory_only(self):
        record = self._record()
        daemon = CompilationDaemon()
        response = daemon.handle_request({"op": "store-put", "record": record})
        assert response["ok"] and response["stored"] is False
        _, origin = daemon.compile_record(COUNTER_SOURCE)
        assert origin == "memory"

    def test_store_put_rejects_invalid_records(self):
        daemon = CompilationDaemon()
        record = self._record()
        for bad in (
            None,
            "not a record",
            {},
            {**record, "format": 999},
            {**record, "fingerprint": ""},
            {**record, "style": "baroque"},
        ):
            response = daemon.handle_request({"op": "store-put", "record": bad})
            assert not response["ok"]
            assert response["error"]["code"] == "invalid-request"

    def test_unknown_op_lists_the_store_ops(self):
        response = CompilationDaemon().handle_request({"op": "nope"})
        assert "store-get" in response["error"]["message"]
        assert "store-put" in response["error"]["message"]
